#include "analysis/consistency.h"

#include <algorithm>
#include <unordered_map>

namespace rd::analysis {

std::string_view to_string(ConsistencyKind kind) noexcept {
  switch (kind) {
    case ConsistencyKind::kDuplicateAddress:
      return "duplicate-address";
    case ConsistencyKind::kMaskMismatch:
      return "mask-mismatch";
    case ConsistencyKind::kOneSidedBgpSession:
      return "one-sided-bgp-session";
    case ConsistencyKind::kAsnMismatch:
      return "asn-mismatch";
  }
  return "?";
}

std::vector<ConsistencyFinding> check_consistency(
    const model::Network& network, std::uint32_t kind_mask) {
  std::vector<ConsistencyFinding> findings;
  const auto enabled = [kind_mask](ConsistencyKind kind) {
    return (kind_mask & consistency_kind_bit(kind)) != 0;
  };
  // Line of an interface's "interface" command in its owning router's config.
  const auto interface_line = [&](model::InterfaceId i) {
    const auto& itf = network.interfaces()[i];
    return network.routers()[itf.router].interfaces[itf.config_index].line;
  };

  // --- duplicate addresses ----------------------------------------------------
  if (enabled(ConsistencyKind::kDuplicateAddress)) {
    std::unordered_map<std::uint32_t, model::InterfaceId> first_owner;
    auto note_address = [&](ip::Ipv4Address addr, model::InterfaceId i) {
      const auto [it, inserted] = first_owner.try_emplace(addr.value(), i);
      if (inserted || it->second == i) return;
      const auto& a = network.interfaces()[it->second];
      const auto& b = network.interfaces()[i];
      findings.push_back({ConsistencyKind::kDuplicateAddress, a.router,
                          b.router,
                          addr.to_string() + " on " + a.name + " and " +
                              b.name,
                          interface_line(it->second)});
    };
    for (model::InterfaceId i = 0; i < network.interfaces().size(); ++i) {
      const auto& itf = network.interfaces()[i];
      if (itf.address) note_address(*itf.address, i);
      for (const auto secondary : itf.secondary_addresses) {
        note_address(secondary, i);
      }
    }
  }

  // --- mask mismatches: one link's subnet strictly contains another's ---------
  if (enabled(ConsistencyKind::kMaskMismatch)) {
    struct SubnetRef {
      ip::Prefix subnet;
      model::RouterId router;
      std::size_t line;
    };
    std::vector<SubnetRef> subnets;
    for (const auto& link : network.links()) {
      const auto first = link.interfaces.front();
      subnets.push_back({link.subnet, network.interfaces()[first].router,
                         interface_line(first)});
    }
    std::sort(subnets.begin(), subnets.end(),
              [](const SubnetRef& a, const SubnetRef& b) {
                if (a.subnet.network() != b.subnet.network()) {
                  return a.subnet.network() < b.subnet.network();
                }
                return a.subnet.length() < b.subnet.length();
              });
    for (std::size_t i = 0; i < subnets.size(); ++i) {
      for (std::size_t j = i + 1; j < subnets.size(); ++j) {
        if (!subnets[i].subnet.contains(subnets[j].subnet.network())) break;
        if (subnets[i].subnet.contains(subnets[j].subnet) &&
            subnets[i].subnet != subnets[j].subnet) {
          findings.push_back(
              {ConsistencyKind::kMaskMismatch, subnets[i].router,
               subnets[j].router,
               subnets[i].subnet.to_string() + " overlaps " +
                   subnets[j].subnet.to_string() +
                   " (interfaces on one wire with different masks?)",
               subnets[i].line});
        }
      }
    }
  }

  // --- BGP session symmetry ----------------------------------------------------
  if (enabled(ConsistencyKind::kOneSidedBgpSession) ||
      enabled(ConsistencyKind::kAsnMismatch)) {
    // Owner of every address, and the BGP AS numbers per router.
    std::unordered_map<std::uint32_t, model::RouterId> owner;
    for (const auto& itf : network.interfaces()) {
      if (itf.address) owner.emplace(itf.address->value(), itf.router);
    }
    std::unordered_map<model::RouterId, std::vector<std::uint32_t>>
        router_ases;
    for (const auto& process : network.processes()) {
      if (process.protocol == config::RoutingProtocol::kBgp &&
          process.process_id) {
        router_ases[process.router].push_back(*process.process_id);
      }
    }

    for (const auto& session : network.bgp_sessions()) {
      const auto& local = network.processes()[session.local_process];
      // The local "neighbor <ip> ..." statement the finding points at.
      const std::size_t neighbor_line =
          network.routers()[local.router]
              .router_stanzas[local.stanza_index]
              .neighbors[session.neighbor_index]
              .line;
      if (!session.external()) {
        if (!enabled(ConsistencyKind::kOneSidedBgpSession)) continue;
        // Resolved internally: is the mirror statement present?
        const auto& remote = network.processes()[session.remote_process];
        const auto& remote_stanza = network.routers()[remote.router]
                                        .router_stanzas[remote.stanza_index];
        bool mirrored = false;
        for (const auto& nbr : remote_stanza.neighbors) {
          const auto it = owner.find(nbr.address.value());
          if (it != owner.end() && it->second == local.router) {
            mirrored = true;
            break;
          }
        }
        if (!mirrored) {
          findings.push_back(
              {ConsistencyKind::kOneSidedBgpSession, local.router,
               remote.router,
               "session to " + session.remote_address.to_string() +
                   " has no mirror neighbor statement",
               neighbor_line});
        }
        continue;
      }
      if (!enabled(ConsistencyKind::kAsnMismatch)) continue;
      // External by resolution — but if the address is owned by a router in
      // the data set that runs BGP, the configured remote AS must be wrong.
      const auto it = owner.find(session.remote_address.value());
      if (it == owner.end()) continue;
      const auto ases = router_ases.find(it->second);
      if (ases == router_ases.end()) continue;
      findings.push_back(
          {ConsistencyKind::kAsnMismatch, local.router, it->second,
           "neighbor " + session.remote_address.to_string() +
               " expects AS " + std::to_string(session.remote_as) +
               " but the owning router runs a different AS",
           neighbor_line});
    }
  }
  return findings;
}

}  // namespace rd::analysis
