#pragma once

#include <cstdint>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// IBGP signaling structure per internal AS (paper §3.1/§6.1: "a simple
/// IBGP mesh would not be scalable, and a complex set of IBGP reflectors
/// would be required"; §8.1 asks for "incomplete routing protocol
/// adjacencies").
///
/// For each AS with IBGP sessions inside the data set, classify the
/// signaling topology — full mesh, route-reflector hierarchy, or an
/// incomplete hybrid — and flag propagation holes: routers that originate
/// or learn routes but have no IBGP path to the rest of the AS.
struct IbgpStructure {
  std::uint32_t as_number = 0;
  std::vector<model::RouterId> routers;  // routers with a BGP process in AS
  std::size_t sessions = 0;              // deduplicated IBGP sessions
  std::size_t reflectors = 0;  // routers with route-reflector-client nbrs
  std::size_t clients = 0;     // routers that are someone's client
  /// sessions / (n*(n-1)/2) over the AS's routers.
  double mesh_completeness = 0.0;

  bool full_mesh() const noexcept { return mesh_completeness >= 1.0; }
  bool uses_route_reflection() const noexcept { return reflectors > 0; }

  /// Connected components of the session graph. Private AS numbers are
  /// commonly reused for unrelated compartments (net5 reuses them per
  /// region), so components > 1 is informational, not an error: each
  /// component is its own routing instance in the paper's sense.
  std::size_t components = 0;

  /// Routers in this AS with no IBGP session at all. With AS-number reuse
  /// these are usually independent single-router instances.
  std::vector<model::RouterId> isolated_routers;

  /// Signaling holes *within* a session-connected component: ordered router
  /// pairs with a session path between them over which routes nevertheless
  /// cannot propagate (plain IBGP does not re-advertise; only reflectors
  /// do). These are genuine configuration defects.
  std::size_t disconnected_pairs = 0;
};

std::vector<IbgpStructure> analyze_ibgp(const model::Network& network,
                                        const graph::InstanceSet& instances);

}  // namespace rd::analysis
