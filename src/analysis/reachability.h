#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/propagation.h"
#include "graph/instances.h"
#include "ip/prefix_trie.h"
#include "model/network.h"
#include "model/policy.h"

namespace rd::analysis {

/// Instance-level route-propagation analysis (paper §6.2; a simplified form
/// of the Xie et al. static reachability analysis the paper builds on).
///
/// Rather than modeling per-router route selection, routes are propagated
/// over the routing-instance graph with every configured policy applied:
/// route-maps on redistribution, distribute-lists and route-maps on BGP
/// sessions. The external world is modeled as offering a default route plus
/// every prefix the network's own policies mention (a finite universe that
/// exercises every filter clause).
///
/// Two evaluators compute the same fixpoint (DESIGN.md §9):
///   - `Engine::kSemiNaive` (default): delta-driven propagation. Each
///     instance's routes live in an append-only log; every propagation edge
///     keeps a cursor into its source log and only examines routes appended
///     since it last ran, driven by a worklist of dirty instances. Policies
///     are compiled once per run (`model::PolicyCompiler`).
///   - `Engine::kNaive`: the original full-rescan loop over `std::set`,
///     interpreting named policies on every evaluation. Kept as the
///     differential oracle; asymptotically slower but line-for-line the
///     reference semantics.
/// The propagation rules are monotone (routes are only ever added), so the
/// fixpoint is confluent: both engines — and any edge-processing order, see
/// `Options::shuffle_seed` — produce identical route sets.
class ReachabilityAnalysis {
 public:
  enum class Engine : std::uint8_t {
    kSemiNaive,  // delta-driven worklist + compiled policies (default)
    kNaive,      // full-rescan reference evaluator (differential oracle)
  };

  struct Options {
    /// Extra prefixes the external world advertises, beyond the default
    /// route and policy-mentioned prefixes.
    std::vector<ip::Prefix> external_prefixes;
    std::size_t max_iterations = 64;  // fixpoint guard
    /// When set, only these external endpoints inject routes. Endpoint
    /// indices count the network's external BGP sessions first (in
    /// bgp_sessions() order, externals only), then the external IGP
    /// adjacencies. Used by the egress analysis to attribute external
    /// routes to entry points. Need not be sorted; the engine sorts a copy.
    std::optional<std::vector<std::size_t>> active_external_endpoints;
    Engine engine = Engine::kSemiNaive;
    /// When set, the semi-naïve engine shuffles its edge-processing order
    /// from this seed. Results are unaffected (the fixpoint is confluent);
    /// the differential stress test uses this to prove exactly that.
    std::optional<std::uint64_t> shuffle_seed;
  };

  static ReachabilityAnalysis run(const model::Network& network,
                                  const graph::InstanceSet& instances,
                                  const Options& options);
  static ReachabilityAnalysis run(const model::Network& network,
                                  const graph::InstanceSet& instances) {
    return run(network, instances, Options{});
  }

  /// Routes present in an instance's RIBs after the fixpoint, sorted
  /// ascending (the same order the former std::set iteration produced).
  const std::vector<model::Route>& instance_routes(
      std::uint32_t instance) const {
    return routes_[instance];
  }

  /// Exact membership test (binary search over the sorted routes).
  bool instance_holds(std::uint32_t instance, const model::Route& route) const;

  /// True when the instance holds a route covering `addr`.
  bool instance_has_route_to(std::uint32_t instance,
                             ip::Ipv4Address addr) const;

  /// True when the instance holds the default route or a route originated
  /// outside the network (so hosts there can reach the Internet at large).
  bool instance_reaches_internet(std::uint32_t instance) const;

  /// Prefixes the network announces to the external world (over external
  /// EBGP sessions), after outbound policies. Sorted ascending.
  const std::vector<model::Route>& announced_externally() const {
    return announced_;
  }

  /// Count of externally-learned routes present in an instance — the load
  /// predictor of paper §6.2's third observation.
  std::size_t external_route_count(std::uint32_t instance) const;

  /// Two-way host reachability between addresses attached to two instances:
  /// a's instance must hold a route covering b AND b's instance one covering
  /// a (the paper's AB2 vs AB4 test in Figure 12).
  bool two_way_reachable(std::uint32_t instance_a, ip::Ipv4Address addr_a,
                         std::uint32_t instance_b,
                         ip::Ipv4Address addr_b) const;

  std::size_t iterations_used() const noexcept { return iterations_; }

  /// False when the fixpoint loop was cut off by `Options::max_iterations`
  /// before quiescing; route sets are then a lower bound.
  bool converged() const noexcept { return converged_; }

  /// A parse-diagnostic-style warning line when the fixpoint did not
  /// converge; empty string otherwise.
  std::string convergence_warning() const;

 private:
  std::vector<std::vector<model::Route>> routes_;  // per instance, sorted
  std::vector<model::Route> announced_;            // sorted
  /// Prefixes injected from outside, sorted ascending (binary-searched by
  /// external_route_count on every route of every queried instance).
  std::vector<ip::Prefix> external_origin_;
  /// Per-instance covering index over routes with length > 0; a non-null
  /// longest_match means some real (non-default) route covers the address.
  /// Built lazily on an instance's first instance_has_route_to query (many
  /// callers never ask), so the first query for a given instance must not
  /// race another query of the same instance.
  mutable std::vector<ip::PrefixTrie<char>> route_tries_;
  mutable std::vector<char> trie_built_;
  std::vector<char> has_default_;  // instance holds a 0.0.0.0/0 route
  std::size_t iterations_ = 0;
  bool converged_ = true;
};

}  // namespace rd::analysis

// model::Route ordering now lives in analysis/propagation.h (included
// above), next to the engines and the interned domain that rely on it.
