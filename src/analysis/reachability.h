#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"
#include "model/policy.h"

namespace rd::analysis {

/// Instance-level route-propagation analysis (paper §6.2; a simplified form
/// of the Xie et al. static reachability analysis the paper builds on).
///
/// Rather than modeling per-router route selection, routes are propagated
/// over the routing-instance graph with every configured policy applied:
/// route-maps on redistribution, distribute-lists and route-maps on BGP
/// sessions. The external world is modeled as offering a default route plus
/// every prefix the network's own policies mention (a finite universe that
/// exercises every filter clause).
class ReachabilityAnalysis {
 public:
  struct Options {
    /// Extra prefixes the external world advertises, beyond the default
    /// route and policy-mentioned prefixes.
    std::vector<ip::Prefix> external_prefixes;
    std::size_t max_iterations = 64;  // fixpoint guard
    /// When set, only these external endpoints inject routes. Endpoint
    /// indices count the network's external BGP sessions first (in
    /// bgp_sessions() order, externals only), then the external IGP
    /// adjacencies. Used by the egress analysis to attribute external
    /// routes to entry points.
    std::optional<std::set<std::size_t>> active_external_endpoints;
  };

  static ReachabilityAnalysis run(const model::Network& network,
                                  const graph::InstanceSet& instances,
                                  const Options& options);
  static ReachabilityAnalysis run(const model::Network& network,
                                  const graph::InstanceSet& instances) {
    return run(network, instances, Options{});
  }

  /// Routes present in an instance's RIBs after the fixpoint.
  const std::set<model::Route>& instance_routes(std::uint32_t instance) const {
    return routes_[instance];
  }

  /// True when the instance holds a route covering `addr`.
  bool instance_has_route_to(std::uint32_t instance,
                             ip::Ipv4Address addr) const;

  /// True when the instance holds the default route or a route originated
  /// outside the network (so hosts there can reach the Internet at large).
  bool instance_reaches_internet(std::uint32_t instance) const;

  /// Prefixes the network announces to the external world (over external
  /// EBGP sessions), after outbound policies.
  const std::set<model::Route>& announced_externally() const {
    return announced_;
  }

  /// Count of externally-learned routes present in an instance — the load
  /// predictor of paper §6.2's third observation.
  std::size_t external_route_count(std::uint32_t instance) const;

  /// Two-way host reachability between addresses attached to two instances:
  /// a's instance must hold a route covering b AND b's instance one covering
  /// a (the paper's AB2 vs AB4 test in Figure 12).
  bool two_way_reachable(std::uint32_t instance_a, ip::Ipv4Address addr_a,
                         std::uint32_t instance_b,
                         ip::Ipv4Address addr_b) const;

  std::size_t iterations_used() const noexcept { return iterations_; }

 private:
  std::vector<std::set<model::Route>> routes_;
  std::set<model::Route> announced_;
  std::set<ip::Prefix> external_origin_;  // prefixes injected from outside
  std::size_t iterations_ = 0;
};

}  // namespace rd::analysis

namespace rd::model {
/// Ordering for storing routes in std::set.
inline bool operator<(const Route& a, const Route& b) noexcept {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  return a.tag < b.tag;
}
}  // namespace rd::model
