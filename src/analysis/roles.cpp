#include "analysis/roles.h"

#include <algorithm>
#include <set>
#include <utility>

namespace rd::analysis {

RoleCounts& RoleCounts::operator+=(const RoleCounts& other) {
  for (const auto& [protocol, counts] : other.igp_instances) {
    auto& mine = igp_instances[protocol];
    mine.first += counts.first;
    mine.second += counts.second;
  }
  ebgp_intra_sessions += other.ebgp_intra_sessions;
  ebgp_inter_sessions += other.ebgp_inter_sessions;
  ibgp_sessions += other.ibgp_sessions;
  uses_bgp = uses_bgp || other.uses_bgp;
  return *this;
}

RoleCounts classify_roles(const model::Network& network,
                          const graph::InstanceSet& instances) {
  RoleCounts counts;

  // Which instances contain a process with a potential external adjacency?
  std::set<std::uint32_t> externally_adjacent;
  for (const auto& ext : network.external_igp_adjacencies()) {
    externally_adjacent.insert(instances.instance_of[ext.process]);
  }

  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& instance = instances.instances[i];
    if (instance.protocol == config::RoutingProtocol::kBgp) {
      counts.uses_bgp = true;
      continue;
    }
    auto& [intra, inter] = counts.igp_instances[instance.protocol];
    if (externally_adjacent.contains(i)) {
      ++inter;
    } else {
      ++intra;
    }
  }

  // EBGP sessions. Sessions resolved on both ends are deduplicated so a
  // session configured on both routers counts once.
  std::set<std::pair<model::ProcessId, model::ProcessId>> seen;
  for (const auto& session : network.bgp_sessions()) {
    counts.uses_bgp = true;
    if (session.external()) {
      if (session.ebgp()) {
        ++counts.ebgp_inter_sessions;
      } else {
        // An IBGP session to an unknown router: most likely a missing
        // config; counted as inter-domain use since it leaves the data set.
        ++counts.ebgp_inter_sessions;
      }
      continue;
    }
    const auto key = std::minmax(session.local_process, session.remote_process);
    if (!seen.insert(key).second) continue;
    if (session.ebgp()) {
      ++counts.ebgp_intra_sessions;
    } else {
      ++counts.ibgp_sessions;
    }
  }
  return counts;
}

}  // namespace rd::analysis
