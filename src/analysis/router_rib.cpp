#include "analysis/router_rib.h"

#include <algorithm>

namespace rd::analysis {

std::uint32_t administrative_distance(RouteSource source) noexcept {
  switch (source) {
    case RouteSource::kConnected:
      return 0;
    case RouteSource::kStatic:
      return 1;
    case RouteSource::kEbgp:
      return 20;
    case RouteSource::kEigrp:
      return 90;
    case RouteSource::kOspf:
      return 110;
    case RouteSource::kRip:
      return 120;
    case RouteSource::kIbgp:
      return 200;
  }
  return 255;
}

std::string_view to_string(RouteSource source) noexcept {
  switch (source) {
    case RouteSource::kConnected:
      return "connected";
    case RouteSource::kStatic:
      return "static";
    case RouteSource::kEbgp:
      return "ebgp";
    case RouteSource::kEigrp:
      return "eigrp";
    case RouteSource::kOspf:
      return "ospf";
    case RouteSource::kRip:
      return "rip";
    case RouteSource::kIbgp:
      return "ibgp";
  }
  return "?";
}

namespace {

/// The selection class of a process's routes on a given router. BGP routes
/// count as EBGP when the process has any external or inter-AS session, as
/// IBGP otherwise — a simplification of per-route provenance that matches
/// how the analyses use the result.
RouteSource source_of(const model::Network& network, model::ProcessId p) {
  const auto& process = network.processes()[p];
  switch (process.protocol) {
    case config::RoutingProtocol::kOspf:
      return RouteSource::kOspf;
    case config::RoutingProtocol::kEigrp:
    case config::RoutingProtocol::kIgrp:
      return RouteSource::kEigrp;
    case config::RoutingProtocol::kRip:
    case config::RoutingProtocol::kIsis:
      return RouteSource::kRip;
    case config::RoutingProtocol::kBgp:
      break;
  }
  for (const auto& session : network.bgp_sessions()) {
    if (session.local_process == p &&
        (session.external() || session.ebgp())) {
      return RouteSource::kEbgp;
    }
  }
  return RouteSource::kIbgp;
}

}  // namespace

RouterRibAnalysis RouterRibAnalysis::run(
    const model::Network& network, const graph::InstanceSet& instances,
    const ReachabilityAnalysis& reachability) {
  RouterRibAnalysis out;
  out.ribs_.resize(network.router_count());
  out.process_load_.resize(network.processes().size(), 0);
  out.has_external_.resize(network.router_count(), false);

  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    out.process_load_[p] =
        reachability.instance_routes(instances.instance_of[p]).size();
  }

  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    // Candidate routes per prefix with the best (lowest) distance winning.
    std::map<ip::Prefix, SelectedRoute> best;
    auto offer = [&](const ip::Prefix& prefix, RouteSource source,
                     model::ProcessId p) {
      const auto it = best.find(prefix);
      if (it == best.end() || administrative_distance(source) <
                                  administrative_distance(it->second.source)) {
        best[prefix] = {prefix, source, p};
      }
    };

    // Local RIB: connected subnets and static routes (paper Figure 3).
    for (const model::InterfaceId i : network.router_interfaces(r)) {
      const auto& itf = network.interfaces()[i];
      if (itf.subnet && !itf.shutdown) {
        offer(*itf.subnet, RouteSource::kConnected, model::kInvalidId);
      }
    }
    for (const auto& route : network.routers()[r].static_routes) {
      offer(route.prefix(), RouteSource::kStatic, model::kInvalidId);
    }

    // Process RIBs: each process offers its instance's routes.
    for (const model::ProcessId p : network.router_processes(r)) {
      const RouteSource source = source_of(network, p);
      for (const auto& route :
           reachability.instance_routes(instances.instance_of[p])) {
        offer(route.prefix, source, p);
      }
    }

    out.ribs_[r].reserve(best.size());
    for (const auto& [prefix, route] : best) {
      out.ribs_[r].push_back(route);
      if (prefix.length() == 0) out.has_external_[r] = true;
    }
  }
  return out;
}

bool RouterRibAnalysis::router_can_reach(model::RouterId router,
                                         ip::Ipv4Address addr) const {
  for (const auto& route : ribs_[router]) {
    if (route.prefix.length() > 0 && route.prefix.contains(addr)) return true;
  }
  return false;
}

std::vector<model::RouterId> RouterRibAnalysis::routers_with_external_routes()
    const {
  std::vector<model::RouterId> out;
  for (model::RouterId r = 0; r < has_external_.size(); ++r) {
    if (has_external_[r]) out.push_back(r);
  }
  return out;
}

std::vector<std::size_t> RouterRibAnalysis::rib_sizes() const {
  std::vector<std::size_t> out;
  out.reserve(ribs_.size());
  for (const auto& rib : ribs_) out.push_back(rib.size());
  return out;
}

}  // namespace rd::analysis
