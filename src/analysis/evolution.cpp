#include "analysis/evolution.h"

#include <algorithm>
#include <map>
#include <set>

namespace rd::analysis {

namespace {

/// Multiset of coarse instance descriptors: "protocol[/AS] x routers".
std::multiset<std::string> instance_descriptors(
    const model::Network& network, const graph::InstanceSet& instances) {
  std::multiset<std::string> out;
  for (const auto& instance : instances.instances) {
    std::string descriptor(config::to_keyword(instance.protocol));
    if (instance.bgp_as) {
      descriptor += " AS " + std::to_string(*instance.bgp_as);
    }
    descriptor += " x" + std::to_string(instance.router_count());
    out.insert(std::move(descriptor));
  }
  (void)network;
  return out;
}

}  // namespace

DesignDiff diff_designs(const model::Network& before,
                        const model::Network& after) {
  DesignDiff diff;

  std::map<std::string, const config::RouterConfig*> before_by_name;
  for (const auto& cfg : before.routers()) {
    before_by_name.emplace(cfg.hostname, &cfg);
  }
  std::map<std::string, const config::RouterConfig*> after_by_name;
  for (const auto& cfg : after.routers()) {
    after_by_name.emplace(cfg.hostname, &cfg);
  }

  for (const auto& [name, cfg] : after_by_name) {
    const auto it = before_by_name.find(name);
    if (it == before_by_name.end()) {
      diff.added_routers.push_back(name);
      continue;
    }
    const auto& old = *it->second;
    if (old.interfaces != cfg->interfaces) {
      ++diff.routers_with_interface_changes;
    }
    if (old.router_stanzas != cfg->router_stanzas) {
      ++diff.routers_with_process_changes;
    }
    if (old.access_lists != cfg->access_lists ||
        old.route_maps != cfg->route_maps) {
      ++diff.routers_with_policy_changes;
    }
    if (old.static_routes != cfg->static_routes) {
      ++diff.routers_with_static_route_changes;
    }
  }
  for (const auto& [name, cfg] : before_by_name) {
    (void)cfg;
    if (!after_by_name.contains(name)) diff.removed_routers.push_back(name);
  }

  diff.links_before = before.links().size();
  diff.links_after = after.links().size();

  const auto instances_before = graph::compute_instances(before);
  const auto instances_after = graph::compute_instances(after);
  diff.instances_before = instances_before.instances.size();
  diff.instances_after = instances_after.instances.size();

  const auto descriptors_before =
      instance_descriptors(before, instances_before);
  const auto descriptors_after = instance_descriptors(after, instances_after);
  std::set_difference(
      descriptors_after.begin(), descriptors_after.end(),
      descriptors_before.begin(), descriptors_before.end(),
      std::back_inserter(diff.appeared_instances));
  std::set_difference(
      descriptors_before.begin(), descriptors_before.end(),
      descriptors_after.begin(), descriptors_after.end(),
      std::back_inserter(diff.disappeared_instances));
  return diff;
}

std::vector<DesignDiff> diff_design_chain(
    const std::vector<model::Network>& snapshots) {
  std::vector<DesignDiff> chain;
  if (snapshots.size() < 2) return chain;
  chain.reserve(snapshots.size() - 1);
  for (std::size_t i = 0; i + 1 < snapshots.size(); ++i) {
    chain.push_back(diff_designs(snapshots[i], snapshots[i + 1]));
  }
  return chain;
}

}  // namespace rd::analysis
