#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// OSPF area structure per routing instance.
///
/// The paper's configlet (Figure 2) already shows multi-area OSPF ("area 0",
/// "area 11"); the §8.1 vulnerability assessment asks for "internal links
/// and routers with incomplete routing protocol adjacencies". For OSPF the
/// canonical such check is area integrity: every non-backbone area must
/// attach to area 0 through an area border router (ABR), or its routers
/// cannot learn inter-area routes.
struct OspfAreaReport {
  struct InstanceAreas {
    std::uint32_t instance = 0;
    /// area id -> routers with at least one covered interface in the area.
    std::map<std::uint32_t, std::set<model::RouterId>> area_routers;
    /// Routers with covered interfaces in more than one area.
    std::vector<model::RouterId> abrs;
    /// Non-zero areas with no router also present in area 0 — partitioned
    /// from the backbone.
    std::vector<std::uint32_t> orphan_areas;

    bool has_backbone() const { return area_routers.contains(0); }
    bool multi_area() const { return area_routers.size() > 1; }
  };

  /// One entry per OSPF instance (other protocols are skipped).
  std::vector<InstanceAreas> instances;

  std::size_t total_abrs() const;
  std::size_t total_orphan_areas() const;
};

OspfAreaReport analyze_ospf_areas(const model::Network& network,
                                  const graph::InstanceSet& instances);

}  // namespace rd::analysis
