#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/instances.h"
#include "graph/pathway.h"
#include "model/network.h"

namespace rd::analysis {

/// Pathway-shape diversity (paper §7.1): in the canonical designs every
/// router's route pathway has one of a couple of shapes (Figure 7); in the
/// unclassifiable networks the paper found "many different structures"
/// (Figure 10 vs Figure 7). We make that observation quantitative: compute
/// each router's pathway *signature* — the multiset of (depth, protocol)
/// pairs on its pathway plus whether it reaches the external world — and
/// count the distinct signatures per network.
struct PathwayDiversity {
  /// signature string -> number of routers with that pathway shape.
  std::map<std::string, std::size_t> signature_counts;
  std::size_t routers = 0;

  std::size_t distinct_shapes() const noexcept {
    return signature_counts.size();
  }
  /// Fraction of routers covered by the two most common shapes — near 1.0
  /// for textbook designs, lower for net5-style hybrids.
  double top2_coverage() const noexcept;
};

/// Compute the signature of one pathway (exposed for tests).
std::string pathway_signature(const graph::InstanceSet& instances,
                              const graph::Pathway& pathway);

PathwayDiversity analyze_pathway_diversity(const model::Network& network,
                                           const graph::InstanceGraph& graph);

}  // namespace rd::analysis
