#include "analysis/egress.h"

#include <algorithm>

namespace rd::analysis {

EgressAnalysis EgressAnalysis::run(const model::Network& network,
                                   const graph::InstanceSet& instances,
                                   const ReachabilityAnalysis::Options& base,
                                   util::ThreadPool& pool) {
  EgressAnalysis out;
  out.per_instance_.resize(instances.instances.size());

  // Enumerate the endpoints in the same order ReachabilityAnalysis does:
  // external BGP sessions, then external IGP adjacencies.
  std::size_t index = 0;
  for (const auto& session : network.bgp_sessions()) {
    if (!session.external()) continue;
    const auto& process = network.processes()[session.local_process];
    out.points_.push_back(
        {index++, process.router, session.remote_address.to_string()});
  }
  for (const auto& ext : network.external_igp_adjacencies()) {
    const auto& process = network.processes()[ext.process];
    out.points_.push_back({index++, process.router,
                           network.interfaces()[ext.interface].name});
  }

  // One fixpoint per point (only that point injects routes), in parallel;
  // the merge below walks the per-point results in point order, so the
  // instance->points lists come out identical at any thread count.
  const auto reached = util::parallel_map(
      pool, out.points_, [&](const EgressPoint& point) {
        ReachabilityAnalysis::Options options = base;
        options.active_external_endpoints =
            std::vector<std::size_t>{point.index};
        const auto reach =
            ReachabilityAnalysis::run(network, instances, options);
        std::vector<std::uint32_t> with_routes;
        for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
          if (reach.external_route_count(i) > 0) with_routes.push_back(i);
        }
        return with_routes;
      });
  for (std::size_t p = 0; p < out.points_.size(); ++p) {
    for (const std::uint32_t i : reached[p]) {
      out.per_instance_[i].push_back(out.points_[p].index);
    }
  }
  return out;
}

EgressAnalysis EgressAnalysis::run(const model::Network& network,
                                   const graph::InstanceSet& instances,
                                   const ReachabilityAnalysis::Options& base) {
  util::ThreadPool pool;
  return run(network, instances, base, pool);
}

std::vector<std::size_t> EgressAnalysis::router_egress(
    const model::Network& network, const graph::InstanceSet& instances,
    model::RouterId router) const {
  std::vector<std::size_t> out;
  for (const model::ProcessId p : network.router_processes(router)) {
    const auto& candidates = per_instance_[instances.instance_of[p]];
    out.insert(out.end(), candidates.begin(), candidates.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rd::analysis
