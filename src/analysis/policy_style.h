#pragma once

#include <cstddef>

#include "model/network.h"

namespace rd::analysis {

/// Policy-style census (paper §6.1): the paper's net5 analysis surfaces "a
/// tension between structured address assignment that enables simplified
/// routing policies and arbitrary address assignment which requires more
/// complex routing designs and routing policies" — backbones "must use
/// AS-path attributes to decide which routes should be placed in their
/// RIBs", while net5's planned address space let every policy stay
/// address-based (plus route tags carried by the IGP).
struct PolicyStyle {
  std::size_t route_map_clauses = 0;
  /// Clauses matching on addresses (ACL or prefix-list matches).
  std::size_t address_based_clauses = 0;
  /// Clauses matching or setting IGP route tags (net5's §6.1 technique).
  std::size_t tag_based_clauses = 0;
  /// Clauses requiring BGP attributes (as-path matches, local-preference).
  std::size_t attribute_based_clauses = 0;
  /// Clauses with no match condition at all (blanket permit/deny).
  std::size_t unconditional_clauses = 0;
  /// Session-level address filters (distribute-lists and prefix-lists on
  /// neighbors or stanzas).
  std::size_t session_address_filters = 0;
  std::size_t as_path_list_entries = 0;

  /// The §6.1 question: does this design need BGP attributes to express
  /// its routing policy?
  bool needs_bgp_attributes() const noexcept {
    return attribute_based_clauses > 0 || as_path_list_entries > 0;
  }
  /// Or does structured addressing carry the whole policy?
  bool purely_address_and_tag_based() const noexcept {
    return !needs_bgp_attributes() &&
           (address_based_clauses + tag_based_clauses +
            session_address_filters) > 0;
  }
};

PolicyStyle analyze_policy_style(const model::Network& network);

}  // namespace rd::analysis
