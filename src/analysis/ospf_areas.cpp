#include "analysis/ospf_areas.h"

#include <algorithm>

namespace rd::analysis {

std::size_t OspfAreaReport::total_abrs() const {
  std::size_t total = 0;
  for (const auto& entry : instances) total += entry.abrs.size();
  return total;
}

std::size_t OspfAreaReport::total_orphan_areas() const {
  std::size_t total = 0;
  for (const auto& entry : instances) total += entry.orphan_areas.size();
  return total;
}

OspfAreaReport analyze_ospf_areas(const model::Network& network,
                                  const graph::InstanceSet& instances) {
  OspfAreaReport report;
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& instance = instances.instances[i];
    if (instance.protocol != config::RoutingProtocol::kOspf) continue;

    OspfAreaReport::InstanceAreas entry;
    entry.instance = i;
    // router -> set of areas it touches (covered interfaces only).
    std::map<model::RouterId, std::set<std::uint32_t>> router_areas;
    for (const model::ProcessId p : instance.processes) {
      const auto& process = network.processes()[p];
      const auto& stanza = network.routers()[process.router]
                               .router_stanzas[process.stanza_index];
      for (const model::InterfaceId itf_id : process.covered_interfaces) {
        const auto& itf = network.interfaces()[itf_id];
        if (!itf.address) continue;
        // The first matching network statement assigns the area (IOS
        // evaluates them most-specific-first; our generator emits disjoint
        // statements so first-match is equivalent).
        for (const auto& ns : stanza.networks) {
          if (ns.prefix().contains(*itf.address)) {
            const std::uint32_t area = ns.area.value_or(0);
            entry.area_routers[area].insert(process.router);
            router_areas[process.router].insert(area);
            break;
          }
        }
      }
    }
    for (const auto& [router, areas] : router_areas) {
      if (areas.size() > 1) entry.abrs.push_back(router);
    }
    // Orphan areas: non-zero areas none of whose routers also sit in area 0.
    const auto backbone = entry.area_routers.find(0);
    for (const auto& [area, routers] : entry.area_routers) {
      if (area == 0) continue;
      bool attached = false;
      if (backbone != entry.area_routers.end()) {
        for (const model::RouterId r : routers) {
          if (backbone->second.contains(r)) {
            attached = true;
            break;
          }
        }
      }
      if (!attached) entry.orphan_areas.push_back(area);
    }
    report.instances.push_back(std::move(entry));
  }
  return report;
}

}  // namespace rd::analysis
