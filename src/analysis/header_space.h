#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/packet_reachability.h"
#include "analysis/reachability.h"
#include "graph/instances.h"
#include "model/header_predicate.h"
#include "model/network.h"
#include "model/policy.h"

namespace rd::analysis {

/// An operator intent as a machine-checkable assertion over a header
/// region: "no packet in this region gets through" (expect_reachable =
/// false, the net15 restricted-subnet property of paper §6.2) or "every
/// packet in it does". Usually collected from `! rd-intent` config
/// comments (config::IntentDirective); `router`/`line` carry provenance
/// for findings.
struct Intent {
  bool expect_reachable = false;
  ip::Prefix source;
  ip::Prefix destination;
  std::string protocol = "ip";  // "ip" = any protocol
  std::optional<std::uint16_t> port;  // absent = any port, incl. portless
  model::RouterId router = model::kInvalidId;
  std::size_t line = 0;

  std::string describe() const;
};

/// A concrete packet proving an intent violated: reachable for a deny
/// intent, unreachable for an allow intent. Deterministically the least
/// such header, so reports are byte-identical run to run.
struct IntentWitness {
  ip::Ipv4Address source;
  ip::Ipv4Address destination;
  std::string protocol;
  std::optional<std::uint16_t> port;

  std::string describe() const;
};

struct IntentOutcome {
  Intent intent;
  bool holds = false;
  std::optional<IntentWitness> witness;  // present iff !holds
};

/// Symbolic header-space reachability: the exact packet-set counterpart of
/// `PacketReachability`'s one-probe-at-a-time evaluation (ROADMAP item 5).
///
/// The analysis composes, per (ingress interface, egress interface) pair,
/// a `model::HeaderPredicate` of every header that passes all four modeled
/// obstacles — forward route, return route, inbound filter at the source
/// attachment, outbound filter at the destination attachment — lowering
/// the packet filters through `model::SymbolicPacketFilter` (cached on the
/// run's PolicyCompiler) and the route tables through minimal prefix
/// covers of the reachability fixpoint's per-instance route sets.
///
/// Every public method is a deterministic function of the network; the
/// class memoizes internally and is therefore NOT thread-safe — concurrent
/// callers each build their own instance, exactly like PolicyCompiler.
class HeaderSpace {
 public:
  HeaderSpace(const model::Network& network,
              const graph::InstanceSet& instances,
              const ReachabilityAnalysis& routes);

  /// The exact set of source addresses that attach at interface i: the
  /// interface subnet minus every more-specific subnet and minus equal
  /// subnets of lower-numbered interfaces (the concrete prober's
  /// most-specific-wins, first-wins-on-ties resolution, run on all
  /// addresses at once). Disjoint prefixes, sorted; empty when the
  /// interface has no subnet or is fully shadowed.
  const std::vector<ip::Prefix>& attachment_region(model::InterfaceId i) const;

  /// The interface whose attachment region contains `addr` — an
  /// independent twin of the concrete prober's attachment_of().
  std::optional<model::InterfaceId> attachment_interface(
      ip::Ipv4Address addr) const;

  /// Exact predicate of headers that flow from sources attached at
  /// `ingress` to destinations attached at `egress`. Normalized; memoized
  /// per pair. Emits the per-pair obs counters
  /// (headerspace.pairs / headerspace.atoms).
  const model::HeaderPredicate& pair_predicate(model::InterfaceId ingress,
                                               model::InterfaceId egress);

  /// Symbolic membership for one concrete header: true exactly when the
  /// concrete prober returns kPossiblyReachable — the differential
  /// contract the fuzz suite enforces.
  bool passes(const FlowQuery& query);

  /// Check intents against the computed header space.
  std::vector<IntentOutcome> verify(const std::vector<Intent>& intents);

  const model::ProtocolDomain& protocol_domain() const noexcept {
    return compiler_.protocol_domain();
  }

 private:
  /// Minimal prefix cover of the instance's non-default routes (lazy).
  const std::vector<ip::Prefix>& route_space(std::uint32_t instance);
  /// Instance serving an interface's attachment, -1 when none — mirror of
  /// the concrete prober's resolution.
  std::int64_t instance_of_interface(model::InterfaceId i) const;
  /// Pair predicate with an unattached destination (no egress interface):
  /// the destination-side checks vanish, exactly as in the concrete
  /// prober. The caller is responsible for only testing destinations
  /// outside every attachment region against it.
  const model::HeaderPredicate& unattached_predicate(
      model::InterfaceId ingress);

  model::HeaderPredicate build_pair(model::InterfaceId ingress,
                                    std::optional<model::InterfaceId> egress);
  const model::HeaderPredicate* inbound_filter(model::InterfaceId i);
  const model::HeaderPredicate* outbound_filter(model::InterfaceId i);

  const model::Network& network_;
  const graph::InstanceSet& instances_;
  const ReachabilityAnalysis& routes_;
  model::PolicyCompiler compiler_;
  std::vector<std::vector<ip::Prefix>> regions_;
  std::vector<std::optional<std::vector<ip::Prefix>>> route_spaces_;
  std::map<std::pair<model::InterfaceId, model::InterfaceId>,
           model::HeaderPredicate>
      pair_cache_;
  std::map<model::InterfaceId, model::HeaderPredicate> unattached_cache_;
};

/// Intents declared in `! rd-intent` comments across the network's
/// configs, routers in id order, directives in source order.
std::vector<Intent> collect_intents(const model::Network& network);

/// Convenience entry point: build a HeaderSpace and check `intents`
/// (audit_network's intent section and rule RD052 both go through here).
std::vector<IntentOutcome> verify_intents(const model::Network& network,
                                          const graph::InstanceSet& instances,
                                          const ReachabilityAnalysis& routes,
                                          const std::vector<Intent>& intents);

}  // namespace rd::analysis
