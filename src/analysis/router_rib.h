#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/reachability.h"
#include "graph/instances.h"
#include "model/network.h"

namespace rd::analysis {

/// Route selection into the per-router RIB (paper §2.3, Figure 3).
///
/// Each routing process RIB holds the routes of its instance (from the
/// ReachabilityAnalysis fixpoint); the local RIB holds connected subnets and
/// static routes. The router RIB selects, per prefix, the source with the
/// lowest administrative distance — the standard IOS ranking:
///   connected 0, static 1, EBGP 20, EIGRP 90, OSPF 110, RIP 120, IBGP 200.
/// This answers the §3.1 questions "what destinations will be reachable
/// from a particular router" and "how many routes will a routing process
/// have to handle".
enum class RouteSource : std::uint8_t {
  kConnected,
  kStatic,
  kEbgp,
  kEigrp,
  kOspf,
  kRip,
  kIbgp,
};

std::uint32_t administrative_distance(RouteSource source) noexcept;
std::string_view to_string(RouteSource source) noexcept;

struct SelectedRoute {
  ip::Prefix prefix;
  RouteSource source = RouteSource::kConnected;
  /// The process the route was selected from; kInvalidId for local routes.
  model::ProcessId process = model::kInvalidId;
};

class RouterRibAnalysis {
 public:
  /// Compute every router's RIB from the instance-level fixpoint.
  static RouterRibAnalysis run(const model::Network& network,
                               const graph::InstanceSet& instances,
                               const ReachabilityAnalysis& reachability);

  /// The selected routes of one router, ordered by prefix.
  const std::vector<SelectedRoute>& rib(model::RouterId router) const {
    return ribs_[router];
  }

  /// Number of routes each process must carry (its instance's route count)
  /// — the §3.1 process-load question.
  std::size_t process_load(model::ProcessId process) const {
    return process_load_[process];
  }

  /// True when the router's RIB covers the address.
  bool router_can_reach(model::RouterId router, ip::Ipv4Address addr) const;

  /// Routers whose RIB holds a default route or an externally-originated
  /// prefix.
  std::vector<model::RouterId> routers_with_external_routes() const;

  /// Distribution of RIB sizes across routers (for load reporting).
  std::vector<std::size_t> rib_sizes() const;

 private:
  std::vector<std::vector<SelectedRoute>> ribs_;
  std::vector<std::size_t> process_load_;
  std::vector<bool> has_external_;
};

}  // namespace rd::analysis
