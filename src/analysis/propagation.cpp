#include "analysis/propagation.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "ip/prefix_trie.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace rd::analysis::prop {

using model::Route;

bool session_permits(const SessionPolicy& policy, bool inbound,
                     const Route& route) {
  if (policy.config == nullptr || policy.neighbor == nullptr) return true;
  const auto& dl = inbound ? policy.neighbor->distribute_list_in
                           : policy.neighbor->distribute_list_out;
  if (dl && !model::distribute_list_permits(*policy.config, *dl, route)) {
    return false;
  }
  const auto& pl_name = inbound ? policy.neighbor->prefix_list_in
                                : policy.neighbor->prefix_list_out;
  if (pl_name) {
    const auto* pl = policy.config->find_prefix_list(*pl_name);
    if (pl != nullptr && !model::prefix_list_permits_route(*pl, route)) {
      return false;
    }
  }
  const auto& rm_name = inbound ? policy.neighbor->route_map_in
                                : policy.neighbor->route_map_out;
  if (rm_name) {
    const auto* rm = policy.config->find_route_map(*rm_name);
    if (rm != nullptr &&
        !model::route_map_evaluate(*rm, *policy.config, route).permitted) {
      return false;
    }
  }
  return true;
}

bool stanza_permits(const config::RouterConfig& config,
                    const config::RouterStanza& stanza, bool inbound,
                    const Route& route) {
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound != inbound) continue;
    if (!model::distribute_list_permits(config, dl.acl, route)) return false;
  }
  return true;
}

Problem discover(const model::Network& network,
                 const graph::InstanceSet& instances,
                 const DiscoverOptions& options,
                 const std::vector<ip::Prefix>& external_origin) {
  Problem problem;
  problem.instance_count = instances.instances.size();
  problem.max_iterations = options.max_iterations;
  problem.instance_process_counts.reserve(problem.instance_count);
  for (const auto& instance : instances.instances) {
    problem.instance_process_counts.push_back(instance.processes.size());
  }
  problem.universe.reserve(external_origin.size());
  for (const auto& prefix : external_origin) {
    problem.universe.push_back({prefix, std::nullopt});
  }

  // --- Origination seeds.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    const std::uint32_t inst = instances.instance_of[p];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    if (config::is_conventional_igp(process.protocol)) {
      for (const model::InterfaceId i : process.covered_interfaces) {
        if (network.interfaces()[i].subnet) {
          problem.seeds.push_back(
              {inst, process.router,
               Route{*network.interfaces()[i].subnet, std::nullopt}});
        }
      }
    } else {
      for (const auto& ns : stanza.networks) {
        problem.seeds.push_back(
            {inst, process.router, Route{ns.prefix(), std::nullopt}});
      }
    }
  }

  // --- Local-RIB redistribution (connected / static): one-time injection.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kLocal) continue;
    const auto& target = network.processes()[redist.target_process];
    const std::uint32_t inst = instances.instance_of[redist.target_process];
    const auto& config = network.routers()[redist.router];
    const auto& command = config.router_stanzas[target.stanza_index]
                              .redistributes[redist.redistribute_index];

    std::vector<Route> local_routes;
    if (command.source == config::RedistributeSource::kConnected ||
        command.source == config::RedistributeSource::kProtocol) {
      // kProtocol reaching here means a dangling source; treat as connected
      // so the designer's intent (import something locally) is preserved.
      for (const model::InterfaceId i :
           network.router_interfaces(redist.router)) {
        if (network.interfaces()[i].subnet) {
          local_routes.push_back({*network.interfaces()[i].subnet, {}});
        }
      }
    }
    if (command.source == config::RedistributeSource::kStatic) {
      for (const auto& sr : config.static_routes) {
        local_routes.push_back({sr.prefix(), {}});
      }
    }
    for (const Route& route : local_routes) {
      if (command.route_map) {
        const auto* rm = config.find_route_map(*command.route_map);
        if (rm != nullptr) {
          const auto verdict = model::route_map_evaluate(*rm, config, route);
          if (verdict.permitted) {
            problem.seeds.push_back({inst, redist.router, verdict.route});
          }
          continue;
        }
      }
      problem.seeds.push_back({inst, redist.router, route});
    }
  }

  // --- Internal EBGP session flows.
  for (const auto& session : network.bgp_sessions()) {
    if (session.external() || !session.ebgp()) continue;
    // Flow into the configuring endpoint: remote instance -> local instance.
    const auto& local_process = network.processes()[session.local_process];
    const auto& local_config = network.routers()[local_process.router];
    const auto& local_stanza =
        local_config.router_stanzas[local_process.stanza_index];
    InternalFlow flow;
    flow.from_instance = instances.instance_of[session.remote_process];
    flow.to_instance = instances.instance_of[session.local_process];
    flow.receiver_in = {&local_config,
                        &local_stanza.neighbors[session.neighbor_index]};
    // The sender's outbound policy toward us, when the mirror session is
    // configured.
    const auto& remote_process = network.processes()[session.remote_process];
    const auto& remote_config = network.routers()[remote_process.router];
    const auto& remote_stanza =
        remote_config.router_stanzas[remote_process.stanza_index];
    flow.from_router = remote_process.router;
    flow.to_router = local_process.router;
    for (const auto& nbr : remote_stanza.neighbors) {
      // Any interface address of the local router identifies us.
      bool ours = false;
      for (const model::InterfaceId i :
           network.router_interfaces(local_process.router)) {
        if (network.interfaces()[i].address == nbr.address) {
          ours = true;
          break;
        }
      }
      if (ours) {
        flow.sender_out = {&remote_config, &nbr};
        break;
      }
    }
    problem.flows.push_back(flow);
  }

  // --- External session endpoints (for injection and announcement).
  std::vector<std::size_t> active;
  if (options.active_external_endpoints) {
    active = *options.active_external_endpoints;
    std::sort(active.begin(), active.end());
  }
  std::size_t endpoint_index = 0;
  auto endpoint_active = [&](std::size_t index) {
    return !options.active_external_endpoints ||
           std::binary_search(active.begin(), active.end(), index);
  };
  for (const auto& session : network.bgp_sessions()) {
    if (!session.external()) continue;
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[session.local_process];
    const auto& config = network.routers()[process.router];
    const auto& stanza = config.router_stanzas[process.stanza_index];
    problem.external_endpoints.push_back(
        {instances.instance_of[session.local_process],
         {&config, &stanza.neighbors[session.neighbor_index]},
         process.router});
  }
  for (const auto& ext : network.external_igp_adjacencies()) {
    const std::size_t index = endpoint_index++;
    if (!endpoint_active(index)) continue;
    const auto& process = network.processes()[ext.process];
    const auto& config = network.routers()[process.router];
    problem.external_igp_endpoints.push_back(
        {instances.instance_of[ext.process], &config,
         &config.router_stanzas[process.stanza_index], process.router});
  }

  // --- BGP aggregation points ("aggregate-address", §3.1 summarization):
  // the summary originates once any contained more-specific is present.
  for (model::ProcessId p = 0; p < network.processes().size(); ++p) {
    const auto& process = network.processes()[p];
    if (process.protocol != config::RoutingProtocol::kBgp) continue;
    const auto& stanza = network.routers()[process.router]
                             .router_stanzas[process.stanza_index];
    for (const auto& aggregate : stanza.aggregates) {
      problem.aggregate_points.push_back(
          {instances.instance_of[p], aggregate.prefix(), process.router});
    }
  }

  // --- Inter-instance redistribution edges.
  for (const auto& redist : network.redistribution_edges()) {
    if (redist.source_kind != model::RibKind::kProcess) continue;
    const std::uint32_t from = instances.instance_of[redist.source_process];
    const std::uint32_t to = instances.instance_of[redist.target_process];
    if (from == to) continue;
    const auto& config = network.routers()[redist.router];
    const auto& target = network.processes()[redist.target_process];
    problem.redist_edges.push_back(
        {from, to, &config, &config.router_stanzas[target.stanza_index],
         &redist.route_map, redist.router});
  }
  return problem;
}

Problem masked(const Problem& problem,
               const std::vector<model::RouterId>& failed) {
  auto down = [&](model::RouterId router) {
    return std::binary_search(failed.begin(), failed.end(), router);
  };
  Problem out;
  out.instance_count = problem.instance_count;
  out.max_iterations = problem.max_iterations;
  out.instance_process_counts = problem.instance_process_counts;
  out.universe = problem.universe;
  for (const auto& seed : problem.seeds) {
    if (!down(seed.router)) out.seeds.push_back(seed);
  }
  for (const auto& flow : problem.flows) {
    if (!down(flow.from_router) && !down(flow.to_router)) {
      out.flows.push_back(flow);
    }
  }
  for (const auto& endpoint : problem.external_endpoints) {
    if (!down(endpoint.router)) out.external_endpoints.push_back(endpoint);
  }
  for (const auto& endpoint : problem.external_igp_endpoints) {
    if (!down(endpoint.router)) {
      out.external_igp_endpoints.push_back(endpoint);
    }
  }
  for (const auto& point : problem.aggregate_points) {
    if (!down(point.router)) out.aggregate_points.push_back(point);
  }
  for (const auto& edge : problem.redist_edges) {
    if (!down(edge.router)) out.redist_edges.push_back(edge);
  }
  return out;
}

std::vector<ip::Prefix> external_universe(
    const model::Network& network, const std::vector<ip::Prefix>& extra) {
  // Default route + policy-mentioned prefixes + caller-supplied prefixes.
  // Internal subnets are excluded so external origin stays meaningful.
  // Candidates are collected into a vector and sorted once — at fleet scale
  // there are thousands, and the internal test runs against a covering trie
  // of interface subnets instead of Network's per-call linear scan.
  std::vector<ip::Prefix> origin;
  origin.push_back(ip::Prefix(ip::Ipv4Address(0u), 0));
  for (const auto& config : network.routers()) {
    for (const auto& acl : config.access_lists) {
      for (const auto& rule : acl.rules) {
        if (rule.action != config::FilterAction::kPermit) continue;
        if (!rule.any_source && !rule.extended) {
          origin.push_back(rule.source);
        }
      }
    }
    for (const auto& pl : config.prefix_lists) {
      for (const auto& entry : pl.entries) {
        if (entry.action == config::FilterAction::kPermit) {
          origin.push_back(entry.prefix);
        }
      }
    }
  }
  for (const auto& prefix : extra) {
    origin.push_back(prefix);
  }
  std::sort(origin.begin(), origin.end());
  origin.erase(std::unique(origin.begin(), origin.end()), origin.end());
  ip::PrefixTrie<char> internal;
  for (const auto& itf : network.interfaces()) {
    if (itf.subnet) internal.insert(*itf.subnet, 1);
    for (const auto& secondary : itf.secondary_subnets) {
      internal.insert(secondary, 1);
    }
  }
  std::erase_if(origin, [&](const ip::Prefix& prefix) {
    return prefix.length() > 0 &&
           internal.longest_match(prefix.network()) != nullptr;
  });
  return origin;
}

FixpointResult run_naive(const Problem& problem) {
  FixpointResult result;
  std::vector<std::set<Route>> sets(problem.instance_count);
  auto add_route = [&](std::uint32_t instance, const Route& route) {
    return sets[instance].insert(route).second;
  };
  for (const auto& seed : problem.seeds) {
    add_route(seed.instance, seed.route);
  }

  bool changed = true;
  while (changed && result.iterations < problem.max_iterations) {
    changed = false;
    ++result.iterations;

    // Aggregation (suppression of more-specifics is not modeled — the
    // analysis stays an upper bound on reachability).
    for (const auto& point : problem.aggregate_points) {
      bool contained = false;
      for (const auto& route : sets[point.instance]) {
        if (route.prefix != point.prefix &&
            point.prefix.contains(route.prefix)) {
          contained = true;
          break;
        }
      }
      if (contained &&
          add_route(point.instance, {point.prefix, std::nullopt})) {
        changed = true;
      }
    }

    // External world -> instances.
    for (const auto& endpoint : problem.external_endpoints) {
      for (const Route& route : problem.universe) {
        if (!session_permits(endpoint.policy, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }
    for (const auto& endpoint : problem.external_igp_endpoints) {
      for (const Route& route : problem.universe) {
        if (!stanza_permits(*endpoint.config, *endpoint.stanza,
                            /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(endpoint.instance, route)) changed = true;
      }
    }

    // Internal EBGP flows.
    for (const auto& flow : problem.flows) {
      // Copy: the source set may grow while we insert into the target.
      const std::set<Route> source = sets[flow.from_instance];
      for (const Route& route : source) {
        if (!session_permits(flow.sender_out, /*inbound=*/false, route)) {
          continue;
        }
        if (!session_permits(flow.receiver_in, /*inbound=*/true, route)) {
          continue;
        }
        if (add_route(flow.to_instance, route)) changed = true;
      }
    }

    // Redistribution between instances.
    for (const auto& edge : problem.redist_edges) {
      const std::set<Route> source = sets[edge.from_instance];
      for (const Route& route : source) {
        Route forwarded = route;
        if (*edge.route_map) {
          const auto* rm = edge.config->find_route_map(**edge.route_map);
          if (rm != nullptr) {
            const auto verdict =
                model::route_map_evaluate(*rm, *edge.config, route);
            if (!verdict.permitted) continue;
            forwarded = verdict.route;
          }
        }
        if (!stanza_permits(*edge.config, *edge.stanza, /*inbound=*/false,
                            forwarded)) {
          continue;
        }
        if (add_route(edge.to_instance, forwarded)) changed = true;
      }
    }
  }
  result.converged = !changed;

  // --- What the network announces to the world.
  std::set<Route> announced;
  for (const auto& endpoint : problem.external_endpoints) {
    for (const Route& route : sets[endpoint.instance]) {
      if (session_permits(endpoint.policy, /*inbound=*/false, route)) {
        announced.insert(route);
      }
    }
  }
  for (const auto& endpoint : problem.external_igp_endpoints) {
    for (const Route& route : sets[endpoint.instance]) {
      if (stanza_permits(*endpoint.config, *endpoint.stanza,
                         /*inbound=*/false, route)) {
        announced.insert(route);
      }
    }
  }
  result.announced.assign(announced.begin(), announced.end());
  result.routes.resize(problem.instance_count);
  for (std::size_t i = 0; i < problem.instance_count; ++i) {
    result.routes[i].assign(sets[i].begin(), sets[i].end());
  }
  return result;
}

CompiledSessionDir compile_session_dir(model::PolicyCompiler& compiler,
                                       const SessionPolicy& policy,
                                       bool inbound) {
  CompiledSessionDir out;
  if (policy.config == nullptr || policy.neighbor == nullptr) return out;
  const auto& dl = inbound ? policy.neighbor->distribute_list_in
                           : policy.neighbor->distribute_list_out;
  if (dl) out.distribute_list = compiler.acl(*policy.config, *dl);
  const auto& pl = inbound ? policy.neighbor->prefix_list_in
                           : policy.neighbor->prefix_list_out;
  if (pl) out.prefix_list = compiler.prefix_list(*policy.config, *pl);
  const auto& rm = inbound ? policy.neighbor->route_map_in
                           : policy.neighbor->route_map_out;
  if (rm) out.route_map = compiler.route_map(*policy.config, *rm);
  return out;
}

CompiledStanzaDir compile_stanza_dir(model::PolicyCompiler& compiler,
                                     const config::RouterConfig& config,
                                     const config::RouterStanza& stanza,
                                     bool inbound) {
  CompiledStanzaDir out;
  for (const auto& dl : stanza.distribute_lists) {
    if (dl.inbound != inbound) continue;
    if (const auto* acl = compiler.acl(config, dl.acl)) out.acls.push_back(acl);
  }
  return out;
}

FixpointResult run_semi_naive(const Problem& problem,
                              std::optional<std::uint64_t> shuffle_seed) {
  FixpointResult result;
  const std::size_t n = problem.instance_count;

  // --- Compile every edge's policy chain. The compiler dedups by AST node,
  // so edges sharing a policy share one compiled object — and one route-map
  // verdict memo.
  model::PolicyCompiler compiler;
  struct CompiledFlow {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    CompiledSessionDir sender_out;
    CompiledSessionDir receiver_in;
  };
  std::vector<CompiledFlow> flows;
  flows.reserve(problem.flows.size());
  for (const auto& flow : problem.flows) {
    flows.push_back({flow.from_instance, flow.to_instance,
                     compile_session_dir(compiler, flow.sender_out, false),
                     compile_session_dir(compiler, flow.receiver_in, true)});
  }
  // Redistribution chains are shared wholesale across edges (regions
  // instantiate the same template), and the universe dominates what flows
  // through them — so edges sharing a (route-map, ACL set) chain share one
  // flat verdict cache indexed by universe position. A cache hit replaces
  // a route-map memo lookup (which hashes the whole Route) with an array
  // read. Entries: 0 unevaluated, 1 denied, else 2 + forwarded position.
  struct RedistVerdictCache {
    std::vector<std::uint8_t> state;           // 0 unknown, 1 deny, 2 permit
    std::vector<std::uint32_t> forwarded_pos;  // domain position, state == 2
  };
  struct CompiledRedist {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    const model::CompiledRouteMap* route_map = nullptr;  // null: pass through
    CompiledStanzaDir outbound;
    RedistVerdictCache* cache = nullptr;  // null: identity chain
  };
  std::vector<CompiledRedist> redists;
  redists.reserve(problem.redist_edges.size());
  std::map<std::pair<const model::CompiledRouteMap*,
                     std::vector<const model::CompiledAclFilter*>>,
           std::unique_ptr<RedistVerdictCache>>
      redist_caches;
  for (const auto& edge : problem.redist_edges) {
    CompiledRedist compiled;
    compiled.from = edge.from_instance;
    compiled.to = edge.to_instance;
    if (*edge.route_map) {
      compiled.route_map = compiler.route_map(*edge.config, **edge.route_map);
    }
    compiled.outbound =
        compile_stanza_dir(compiler, *edge.config, *edge.stanza, false);
    if (compiled.route_map != nullptr || !compiled.outbound.acls.empty()) {
      auto& slot = redist_caches[{compiled.route_map,
                                  compiled.outbound.acls}];
      if (!slot) slot = std::make_unique<RedistVerdictCache>();
      compiled.cache = slot.get();
    }
    redists.push_back(std::move(compiled));
  }
  struct CompiledExternal {
    std::uint32_t instance = 0;
    CompiledSessionDir inbound;
    CompiledSessionDir outbound;
  };
  std::vector<CompiledExternal> externals;
  externals.reserve(problem.external_endpoints.size());
  for (const auto& endpoint : problem.external_endpoints) {
    externals.push_back({endpoint.instance,
                         compile_session_dir(compiler, endpoint.policy, true),
                         compile_session_dir(compiler, endpoint.policy, false)});
  }
  struct CompiledIgpExternal {
    std::uint32_t instance = 0;
    CompiledStanzaDir inbound;
    CompiledStanzaDir outbound;
  };
  std::vector<CompiledIgpExternal> igp_externals;
  igp_externals.reserve(problem.external_igp_endpoints.size());
  for (const auto& endpoint : problem.external_igp_endpoints) {
    igp_externals.push_back(
        {endpoint.instance,
         compile_stanza_dir(compiler, *endpoint.config, *endpoint.stanza, true),
         compile_stanza_dir(compiler, *endpoint.config, *endpoint.stanza,
                            false)});
  }

  // --- The route domain: one growing, deduplicated table of every route
  // the run will ever see — the external offer universe (kept in front, in
  // ascending order), the origination seeds, and whatever redistribution
  // rewrites or aggregation manufacture later. Interning gives each route a
  // stable position, so per-instance membership collapses to a bitmap and
  // set propagation to word operations; no per-route hash probe survives on
  // a hot path, and no per-instance route log exists at all — the bitmaps
  // ARE the state, materialized once at the end.
  std::vector<Route> domain = problem.universe;  // offers first, ascending
  DomainIndex domain_index(domain.size() + problem.seeds.size());
  for (std::size_t u = 0; u < domain.size(); ++u) {
    domain_index.insert(route_key(domain[u]), static_cast<std::uint32_t>(u));
  }
  const std::size_t offer_count = domain.size();
  auto intern = [&](const Route& route) {
    const std::uint32_t next = static_cast<std::uint32_t>(domain.size());
    const std::uint32_t pos = domain_index.insert(route_key(route), next);
    if (pos == next) domain.push_back(route);
    return pos;
  };
  const auto words_for = [](std::size_t positions) {
    return (positions + 63) / 64;
  };

  // Per-instance membership bitmaps over domain positions, lazily sized
  // (and re-grown as the domain grows) to the word the highest set bit
  // needs; words past an instance's current size read as zero.
  std::vector<std::vector<std::uint64_t>> member(n);
  std::vector<char> dirty(n, 0);
  auto add_pos = [&](std::uint32_t instance, std::uint32_t pos) {
    auto& bits = member[instance];
    const std::size_t w = pos >> 6;
    if (bits.size() <= w) bits.resize(words_for(domain.size()), 0);
    const std::uint64_t bit = 1ULL << (pos & 63);
    if (bits[w] & bit) return false;
    bits[w] |= bit;
    dirty[instance] = 1;
    return true;
  };

  // External injection happens exactly once: the offer universe and the
  // inbound policies are constant, so re-offering every iteration (as the
  // naïve loop does) can never add anything new after the first pass.
  // Endpoints sharing an instance and a compiled chain are interchangeable
  // here (identical offers, identical announcements below), so each
  // distinct (instance, chain) pair is evaluated once.
  std::set<std::tuple<std::uint32_t, const void*, const void*, const void*>>
      seen_session;
  auto session_seen = [&](std::uint32_t instance,
                          const CompiledSessionDir& dir) {
    return !seen_session
                .insert({instance, dir.distribute_list, dir.prefix_list,
                         dir.route_map})
                .second;
  };
  std::set<std::pair<std::uint32_t,
                     std::vector<const model::CompiledAclFilter*>>>
      seen_stanza;
  auto stanza_seen = [&](std::uint32_t instance,
                         const CompiledStanzaDir& dir) {
    return !seen_stanza.insert({instance, dir.acls}).second;
  };
  // The offers occupy positions [0, offer_count), so a filterless chain
  // admits them with a word-wise bitmap fill; a filtering chain evaluates
  // per offer, with the bit test standing in for a membership probe.
  const std::size_t offer_words = words_for(offer_count);
  auto inject_all = [&](std::uint32_t instance) {
    auto& bits = member[instance];
    if (bits.size() < offer_words) bits.resize(offer_words, 0);
    for (std::size_t w = 0; w < offer_words; ++w) {
      const std::size_t base = w * 64;
      const std::size_t in_word =
          std::min<std::size_t>(64, offer_count - base);
      const std::uint64_t valid =
          in_word == 64 ? ~0ULL : (1ULL << in_word) - 1;
      if (~bits[w] & valid) dirty[instance] = 1;
      bits[w] |= valid;
    }
  };
  auto inject_filtered = [&](std::uint32_t instance, const auto& chain) {
    auto& bits = member[instance];
    if (bits.size() < offer_words) bits.resize(offer_words, 0);
    for (std::size_t u = 0; u < offer_count; ++u) {
      const std::uint64_t bit = 1ULL << (u & 63);
      if (bits[u >> 6] & bit) continue;
      if (chain.permits(domain[u])) {
        bits[u >> 6] |= bit;
        dirty[instance] = 1;
      }
    }
  };
  for (const auto& endpoint : externals) {
    if (session_seen(endpoint.instance, endpoint.inbound)) continue;
    if (endpoint.inbound.trivially_permits()) {
      inject_all(endpoint.instance);
    } else {
      inject_filtered(endpoint.instance, endpoint.inbound);
    }
  }
  for (const auto& endpoint : igp_externals) {
    if (stanza_seen(endpoint.instance, endpoint.inbound)) continue;
    if (endpoint.inbound.trivially_permits()) {
      inject_all(endpoint.instance);
    } else {
      inject_filtered(endpoint.instance, endpoint.inbound);
    }
  }

  for (const auto& seed : problem.seeds) {
    add_pos(seed.instance, intern(seed.route));
  }

  // --- Edges grouped by source instance. An aggregation point is an edge
  // from an instance to itself. Each edge keeps an `offered` bitmap — the
  // source positions it has already pushed through its policy chain — so a
  // pass over an edge costs one AND-NOT per 64 held routes plus policy
  // work only for genuinely new positions: each (edge, route) pair is
  // still evaluated exactly once per run, the semi-naïve invariant.
  struct Edge {
    enum class Kind : std::uint8_t { kFlow, kRedist, kAggregate };
    Kind kind = Kind::kFlow;
    std::size_t index = 0;  // into flows / redists / aggregate_points
  };
  std::vector<std::vector<Edge>> edges_by_source(n);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    edges_by_source[flows[i].from].push_back({Edge::Kind::kFlow, i});
  }
  for (std::size_t i = 0; i < redists.size(); ++i) {
    edges_by_source[redists[i].from].push_back({Edge::Kind::kRedist, i});
  }
  for (std::size_t i = 0; i < problem.aggregate_points.size(); ++i) {
    edges_by_source[problem.aggregate_points[i].instance].push_back(
        {Edge::Kind::kAggregate, i});
  }
  if (shuffle_seed) {
    // Fisher–Yates per source list. The fixpoint is confluent, so this can
    // only change the order work is discovered in, never the result — the
    // differential stress test runs many seeds to prove it.
    util::Rng rng(*shuffle_seed);
    for (auto& edges : edges_by_source) {
      for (std::size_t i = edges.size(); i > 1; --i) {
        std::swap(edges[i - 1], edges[rng.below(i)]);
      }
    }
  }
  std::vector<std::vector<std::uint64_t>> flow_offered(flows.size());
  std::vector<std::vector<std::uint64_t>> redist_offered(redists.size());
  std::vector<std::vector<std::uint64_t>> agg_offered(
      problem.aggregate_points.size());
  std::vector<char> aggregate_done(problem.aggregate_points.size(), 0);

  // --- Worklist rounds. A round drains every dirty instance; an edge only
  // evaluates source positions its `offered` bitmap has not seen. Routes
  // discovered mid-round land in the next round's worklist.
  std::vector<std::uint32_t> current;
  auto held_total = [&] {
    std::size_t total = 0;
    for (const auto& bits : member) {
      for (const std::uint64_t w : bits) total += std::popcount(w);
    }
    return total;
  };
  while (true) {
    current.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      if (dirty[i]) {
        current.push_back(i);
        dirty[i] = 0;
      }
    }
    if (current.empty()) break;
    if (result.iterations >= problem.max_iterations) {
      result.converged = false;
      break;
    }
    ++result.iterations;

    // Per-round span with the semi-naïve delta sizes: how many instances
    // were dirty and how many routes this round added. The popcount sweep
    // is only taken when tracing is on.
    obs::Span round_span("reachability.round", "reachability");
    std::size_t before = 0;
    if (round_span.armed()) {
      round_span.arg("round", result.iterations);
      round_span.arg("dirty_instances", current.size());
      before = held_total();
    }

    for (const std::uint32_t instance : current) {
      for (const Edge& edge : edges_by_source[instance]) {
        // `member[instance]` may grow (reallocate) while an edge targeting
        // the same instance runs; everything below indexes through the
        // vector object, never through a raw pointer into its buffer.
        const auto& source = member[instance];
        if (source.empty()) continue;
        switch (edge.kind) {
          case Edge::Kind::kFlow: {
            const CompiledFlow& flow = flows[edge.index];
            auto& offered = flow_offered[edge.index];
            if (offered.size() < source.size()) {
              offered.resize(source.size(), 0);
            }
            auto& target = member[flow.to];
            for (std::size_t w = 0; w < source.size(); ++w) {
              std::uint64_t fresh = source[w] & ~offered[w];
              if (fresh == 0) continue;
              offered[w] |= fresh;
              if (w < target.size()) fresh &= ~target[w];
              while (fresh != 0) {
                const int b = std::countr_zero(fresh);
                fresh &= fresh - 1;
                const Route& route = domain[w * 64 + b];
                if (!flow.sender_out.permits(route)) continue;
                if (!flow.receiver_in.permits(route)) continue;
                if (target.size() <= w) {
                  target.resize(words_for(domain.size()), 0);
                }
                target[w] |= 1ULL << b;
                dirty[flow.to] = 1;
              }
            }
            break;
          }
          case Edge::Kind::kRedist: {
            const CompiledRedist& redist = redists[edge.index];
            auto& offered = redist_offered[edge.index];
            if (offered.size() < source.size()) {
              offered.resize(source.size(), 0);
            }
            RedistVerdictCache* cache = redist.cache;
            if (cache != nullptr &&
                cache->state.size() < source.size() * 64) {
              cache->state.resize(source.size() * 64, 0);
              cache->forwarded_pos.resize(source.size() * 64, 0);
            }
            for (std::size_t w = 0; w < source.size(); ++w) {
              std::uint64_t fresh = source[w] & ~offered[w];
              if (fresh == 0) continue;
              offered[w] |= fresh;
              while (fresh != 0) {
                const int b = std::countr_zero(fresh);
                fresh &= fresh - 1;
                const std::uint32_t pos =
                    static_cast<std::uint32_t>(w * 64 + b);
                if (cache == nullptr) {  // identity chain: route unchanged
                  add_pos(redist.to, pos);
                  continue;
                }
                if (cache->state[pos] == 0) {
                  Route forwarded = domain[pos];  // copy: intern may grow
                  bool permitted = true;
                  if (redist.route_map) {
                    const auto verdict =
                        redist.route_map->evaluate_nomemo(forwarded);
                    permitted = verdict.permitted;
                    if (permitted) forwarded = verdict.route;
                  }
                  permitted =
                      permitted && redist.outbound.permits(forwarded);
                  if (permitted) {
                    cache->state[pos] = 2;
                    cache->forwarded_pos[pos] = intern(forwarded);
                  } else {
                    cache->state[pos] = 1;
                  }
                }
                if (cache->state[pos] == 2) {
                  add_pos(redist.to, cache->forwarded_pos[pos]);
                }
              }
            }
            break;
          }
          case Edge::Kind::kAggregate: {
            if (aggregate_done[edge.index]) break;
            const AggregatePoint& point =
                problem.aggregate_points[edge.index];
            auto& offered = agg_offered[edge.index];
            if (offered.size() < source.size()) {
              offered.resize(source.size(), 0);
            }
            for (std::size_t w = 0;
                 w < source.size() && !aggregate_done[edge.index]; ++w) {
              std::uint64_t fresh = source[w] & ~offered[w];
              if (fresh == 0) continue;
              offered[w] |= fresh;
              while (fresh != 0) {
                const int b = std::countr_zero(fresh);
                fresh &= fresh - 1;
                const Route route = domain[w * 64 + b];  // copy: intern below
                if (route.prefix != point.prefix &&
                    point.prefix.contains(route.prefix)) {
                  add_pos(point.instance,
                          intern(Route{point.prefix, std::nullopt}));
                  aggregate_done[edge.index] = 1;
                  break;
                }
              }
            }
            break;
          }
        }
      }
    }
    if (round_span.armed()) {
      round_span.arg("routes_appended", held_total() - before);
    }
  }

  // --- Announce pass, through the compiled outbound chains: one
  // evaluation per distinct (instance, chain) pair. The announced set is
  // itself a bitmap — a filterless chain ORs the instance's whole holding
  // in; a filtering chain evaluates only positions nothing announced yet
  // (a route one chain denies stays clear and is re-offered to the next
  // chain, which may permit it).
  seen_session.clear();
  seen_stanza.clear();
  std::vector<std::uint64_t> announced;
  auto announce_instance = [&](std::uint32_t instance, const auto& chain) {
    const auto& source = member[instance];
    if (source.empty()) return;
    if (announced.size() < source.size()) announced.resize(source.size(), 0);
    if (chain.trivially_permits()) {
      for (std::size_t w = 0; w < source.size(); ++w) {
        announced[w] |= source[w];
      }
      return;
    }
    for (std::size_t w = 0; w < source.size(); ++w) {
      std::uint64_t fresh = source[w] & ~announced[w];
      while (fresh != 0) {
        const int b = std::countr_zero(fresh);
        fresh &= fresh - 1;
        if (chain.permits(domain[w * 64 + b])) announced[w] |= 1ULL << b;
      }
    }
  };
  for (const auto& endpoint : externals) {
    if (session_seen(endpoint.instance, endpoint.outbound)) continue;
    announce_instance(endpoint.instance, endpoint.outbound);
  }
  for (const auto& endpoint : igp_externals) {
    if (stanza_seen(endpoint.instance, endpoint.outbound)) continue;
    announce_instance(endpoint.instance, endpoint.outbound);
  }

  // --- Materialization. A sorted permutation of the domain is computed
  // once (the offer prefix is pre-sorted; only the interned tail needs
  // ordering), then every result vector is emitted directly in route
  // order: dense holdings scan the permutation and test bits, sparse ones
  // collect their positions' ranks and sort those. Nothing ever sorts
  // full Route records again.
  const auto pos_less = [&](std::uint32_t a, std::uint32_t b) noexcept {
    return route_key(domain[a]) < route_key(domain[b]);
  };
  std::vector<std::uint32_t> order(domain.size());
  for (std::uint32_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin() + static_cast<std::ptrdiff_t>(offer_count),
            order.end(), pos_less);
  std::inplace_merge(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(offer_count),
                     order.end(), pos_less);
  std::vector<std::uint32_t> rank(domain.size());
  for (std::uint32_t k = 0; k < order.size(); ++k) rank[order[k]] = k;
  std::vector<std::uint32_t> held;  // sparse-path scratch
  auto emit = [&](const std::vector<std::uint64_t>& bits,
                  std::vector<Route>& out) {
    std::size_t count = 0;
    for (const std::uint64_t w : bits) count += std::popcount(w);
    if (count == 0) return;
    out.reserve(count);
    if (count * 8 >= order.size()) {  // dense: walk the domain in order
      for (const std::uint32_t pos : order) {
        if ((pos >> 6) < bits.size() && (bits[pos >> 6] >> (pos & 63)) & 1) {
          out.push_back(domain[pos]);
        }
      }
      return;
    }
    held.clear();
    held.reserve(count);
    for (std::size_t w = 0; w < bits.size(); ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const int b = std::countr_zero(word);
        word &= word - 1;
        held.push_back(rank[w * 64 + b]);
      }
    }
    std::sort(held.begin(), held.end());
    for (const std::uint32_t k : held) out.push_back(domain[order[k]]);
  };
  result.routes.resize(n);
  for (std::size_t i = 0; i < n; ++i) emit(member[i], result.routes[i]);
  emit(announced, result.announced);
  return result;
}

}  // namespace rd::analysis::prop
