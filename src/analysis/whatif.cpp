#include "analysis/whatif.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analysis/vulnerability.h"
#include "obs/obs.h"

namespace rd::analysis {

model::Network without_routers(const model::Network& network,
                               const std::vector<model::RouterId>& failed) {
  const std::set<model::RouterId> gone(failed.begin(), failed.end());
  std::vector<config::RouterConfig> configs;
  configs.reserve(network.router_count() - gone.size());
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    if (!gone.contains(r)) configs.push_back(network.routers()[r]);
  }
  return model::Network::build(std::move(configs));
}

FailureImpact simulate_router_failure(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<model::RouterId>& failed) {
  FailureImpact impact;
  impact.failed = failed;
  impact.instances_before = baseline.instances.size();

  const std::set<model::RouterId> gone(failed.begin(), failed.end());

  // Survivor router id mapping: old id -> new id.
  std::vector<std::int64_t> new_router(network.router_count(), -1);
  std::int64_t next = 0;
  for (model::RouterId r = 0; r < network.router_count(); ++r) {
    if (!gone.contains(r)) new_router[r] = next++;
  }

  const auto after = without_routers(network, failed);
  const auto instances_after = graph::compute_instances(after);
  impact.instances_after = instances_after.instances.size();

  // Map each surviving baseline process to its new instance via the
  // (router, stanza) identity, and count how many new instances each
  // baseline instance's survivors landed in.
  std::map<std::pair<model::RouterId, std::uint32_t>, model::ProcessId>
      new_process;
  for (model::ProcessId p = 0; p < after.processes().size(); ++p) {
    const auto& process = after.processes()[p];
    new_process[{process.router, process.stanza_index}] = p;
  }
  for (std::uint32_t i = 0; i < baseline.instances.size(); ++i) {
    std::set<std::uint32_t> landed_in;
    for (const model::ProcessId p : baseline.instances[i].processes) {
      const auto& process = network.processes()[p];
      if (gone.contains(process.router)) continue;
      const auto it = new_process.find(
          {static_cast<model::RouterId>(new_router[process.router]),
           process.stanza_index});
      if (it != new_process.end()) {
        landed_in.insert(instances_after.instance_of[it->second]);
      }
    }
    if (landed_in.size() > 1) impact.fragmented_instances.push_back(i);
  }

  // Severed pairs: every route-exchange router of the pair failed.
  const auto graph = graph::InstanceGraph::build(network);
  for (const auto& entry : redistribution_redundancy(network, graph)) {
    const bool all_gone =
        std::all_of(entry.connecting_routers.begin(),
                    entry.connecting_routers.end(),
                    [&](model::RouterId r) { return gone.contains(r); });
    if (all_gone) ++impact.severed_instance_pairs;
  }
  return impact;
}

namespace {

/// Iterative articulation-point computation (Hopcroft-Tarjan low-link) on
/// one instance's router-level adjacency graph.
std::vector<model::RouterId> articulation_points(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::int32_t> depth(n, -1);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::int32_t> parent(n, -1);
  std::vector<bool> is_cut(n, false);

  struct Frame {
    std::uint32_t node;
    std::size_t next_child;
  };
  for (std::uint32_t root = 0; root < n; ++root) {
    if (depth[root] != -1) continue;
    std::vector<Frame> stack{{root, 0}};
    depth[root] = 0;
    low[root] = 0;
    std::size_t root_children = 0;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::uint32_t u = frame.node;
      if (frame.next_child < adjacency[u].size()) {
        const std::uint32_t v = adjacency[u][frame.next_child++];
        if (depth[v] == -1) {
          depth[v] = depth[u] + 1;
          low[v] = static_cast<std::uint32_t>(depth[v]);
          parent[v] = static_cast<std::int32_t>(u);
          if (u == root) ++root_children;
          stack.push_back({v, 0});
        } else if (static_cast<std::int32_t>(v) != parent[u]) {
          low[u] = std::min(low[u], static_cast<std::uint32_t>(depth[v]));
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const std::uint32_t p = stack.back().node;
          low[p] = std::min(low[p], low[u]);
          if (p != root && low[u] >= static_cast<std::uint32_t>(depth[p])) {
            is_cut[p] = true;
          }
        }
      }
    }
    if (root_children > 1) is_cut[root] = true;
  }

  std::vector<model::RouterId> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (is_cut[i]) out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<ArticulationRouter> instance_articulation_routers(
    const model::Network& network, const graph::InstanceSet& instances) {
  std::vector<ArticulationRouter> out;

  // Router-level edges inside each instance: IGP adjacencies and IBGP
  // sessions between processes of the instance.
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    const auto& instance = instances.instances[i];
    if (instance.routers.size() < 3) continue;  // nothing to articulate
    // Local indices.
    std::map<model::RouterId, std::uint32_t> local;
    for (const model::RouterId r : instance.routers) {
      local.emplace(r, static_cast<std::uint32_t>(local.size()));
    }
    std::vector<std::vector<std::uint32_t>> adjacency(local.size());
    auto add_edge = [&](model::RouterId a, model::RouterId b) {
      if (a == b) return;
      const auto ia = local.find(a);
      const auto ib = local.find(b);
      if (ia == local.end() || ib == local.end()) return;
      adjacency[ia->second].push_back(ib->second);
      adjacency[ib->second].push_back(ia->second);
    };
    for (const auto& adj : network.igp_adjacencies()) {
      if (instances.instance_of[adj.process_a] == i) {
        add_edge(network.processes()[adj.process_a].router,
                 network.processes()[adj.process_b].router);
      }
    }
    for (const auto& session : network.bgp_sessions()) {
      if (session.external() || session.ebgp()) continue;
      if (instances.instance_of[session.local_process] == i) {
        add_edge(network.processes()[session.local_process].router,
                 network.processes()[session.remote_process].router);
      }
    }
    for (const model::RouterId r : articulation_points(adjacency)) {
      out.push_back({instance.routers[r], i});
    }
  }
  return out;
}

std::vector<model::RouterId> sole_redistribution_routers(
    const model::Network& network, const graph::InstanceGraph& graph) {
  std::set<model::RouterId> routers;
  for (const auto& entry : redistribution_redundancy(network, graph)) {
    if (entry.single_point_of_failure()) {
      routers.insert(entry.connecting_routers.front());
    }
  }
  return {routers.begin(), routers.end()};
}

std::vector<FailureScenario> single_failure_scenarios(
    const model::Network& network, const graph::InstanceGraph& graph) {
  std::set<model::RouterId> candidates;
  for (const auto& art :
       instance_articulation_routers(network, graph.set)) {
    candidates.insert(art.router);
  }
  for (const model::RouterId r :
       sole_redistribution_routers(network, graph)) {
    candidates.insert(r);
  }
  std::vector<FailureScenario> scenarios;
  scenarios.reserve(candidates.size());
  for (const model::RouterId r : candidates) {
    scenarios.push_back({network.routers()[r].hostname, {r}});
  }
  return scenarios;
}

std::vector<ScenarioImpact> sweep_failure_scenarios(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<FailureScenario>& scenarios,
    const ReachabilityAnalysis::Options& reach_options,
    util::ThreadPool& pool) {
  // Each scenario is an independent fixpoint on its own degraded network
  // model; parallel_map puts result i in slot i, so the sweep's output is
  // identical at any thread count.
  obs::counter("sweep.scenarios").add(scenarios.size());
  return util::parallel_map(pool, scenarios, [&](const FailureScenario& s) {
    obs::Span span("sweep.scenario", "reachability");
    span.label(s.name);
    ScenarioImpact impact;
    impact.scenario = s;
    impact.structural = simulate_router_failure(network, baseline, s.failed);
    const auto degraded = without_routers(network, s.failed);
    const auto degraded_instances = graph::compute_instances(degraded);
    const auto reach =
        ReachabilityAnalysis::run(degraded, degraded_instances, reach_options);
    for (std::uint32_t i = 0; i < degraded_instances.instances.size(); ++i) {
      if (reach.instance_reaches_internet(i)) {
        ++impact.instances_reaching_internet;
      }
      impact.total_routes += reach.instance_routes(i).size();
    }
    impact.announced_externally = reach.announced_externally().size();
    impact.reachability_converged = reach.converged();
    return impact;
  });
}

std::vector<ScenarioImpact> sweep_failure_scenarios(
    const model::Network& network, const graph::InstanceSet& baseline,
    const std::vector<FailureScenario>& scenarios,
    const ReachabilityAnalysis::Options& reach_options, std::size_t threads) {
  util::ThreadPool pool(threads);
  return sweep_failure_scenarios(network, baseline, scenarios, reach_options,
                                 pool);
}

}  // namespace rd::analysis
