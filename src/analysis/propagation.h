#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "config/ast.h"
#include "graph/instances.h"
#include "ip/ipv4.h"
#include "model/network.h"
#include "model/policy.h"

namespace rd::model {
/// Ordering for routes (sorted route vectors, std::set in the oracle).
inline bool operator<(const Route& a, const Route& b) noexcept {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  return a.tag < b.tag;
}
}  // namespace rd::model

namespace rd::analysis::prop {

/// Shared route-propagation machinery: the resolved rule set ("Problem"),
/// the two fixpoint engines that evaluate it, the compiled policy chains,
/// and the interned route domain. `ReachabilityAnalysis` is the static
/// consumer; `rd::sim` replays the same Problem as a timed discrete-event
/// process, which is why every element carries the router that owns it —
/// failing a router masks exactly the elements it owns.

/// Outbound/inbound policy of one BGP session endpoint, resolved in the
/// endpoint router's config.
struct SessionPolicy {
  const config::RouterConfig* config = nullptr;
  const config::BgpNeighbor* neighbor = nullptr;
};

/// Interpreting evaluation (the kNaive oracle path): named filters are
/// re-resolved in the owning config on every call.
bool session_permits(const SessionPolicy& policy, bool inbound,
                     const model::Route& route);

/// Stanza-level distribute-lists (IGP): apply all matching direction.
bool stanza_permits(const config::RouterConfig& config,
                    const config::RouterStanza& stanza, bool inbound,
                    const model::Route& route);

/// A route present in an instance from the start: interface/network-stanza
/// origination or local-RIB redistribution. `router` is the originating
/// router — when it fails, this seed disappears.
struct Seed {
  std::uint32_t instance = 0;
  model::RouterId router = model::kInvalidId;
  model::Route route;
};

struct InternalFlow {
  std::uint32_t from_instance = 0;
  std::uint32_t to_instance = 0;
  SessionPolicy sender_out;  // policy at the sending end
  SessionPolicy receiver_in;
  model::RouterId from_router = model::kInvalidId;  // sending endpoint
  model::RouterId to_router = model::kInvalidId;    // receiving endpoint
};

struct ExternalEndpoint {
  std::uint32_t instance = 0;
  SessionPolicy policy;
  model::RouterId router = model::kInvalidId;
};

/// External IGP adjacencies also exchange routes with the world; stanza
/// distribute-lists are their only policy hook.
struct ExternalIgpEndpoint {
  std::uint32_t instance = 0;
  const config::RouterConfig* config = nullptr;
  const config::RouterStanza* stanza = nullptr;
  model::RouterId router = model::kInvalidId;
};

struct AggregatePoint {
  std::uint32_t instance = 0;
  ip::Prefix prefix;
  model::RouterId router = model::kInvalidId;
};

/// A kProcess redistribution edge with its policy context resolved.
struct RedistEdge {
  std::uint32_t from_instance = 0;
  std::uint32_t to_instance = 0;
  const config::RouterConfig* config = nullptr;
  const config::RouterStanza* stanza = nullptr;  // target stanza
  const std::optional<std::string>* route_map = nullptr;
  model::RouterId router = model::kInvalidId;  // the redistributing router
};

/// Both engines evaluate the same propagation rules; the Problem struct is
/// the rule set resolved once — seeds, edges, endpoints — so the engines
/// differ only in evaluation strategy. Policy pointers reference the
/// network's configs; a Problem must not outlive its Network.
struct Problem {
  std::size_t instance_count = 0;
  std::size_t max_iterations = 0;
  std::vector<std::size_t> instance_process_counts;
  std::vector<Seed> seeds;      // origination + local RIB
  std::vector<model::Route> universe;  // external offers, ascending by prefix
  std::vector<InternalFlow> flows;
  std::vector<ExternalEndpoint> external_endpoints;
  std::vector<ExternalIgpEndpoint> external_igp_endpoints;
  std::vector<AggregatePoint> aggregate_points;
  std::vector<RedistEdge> redist_edges;
};

struct DiscoverOptions {
  std::size_t max_iterations = 64;  // fixpoint guard
  /// When set, only these external endpoints inject routes (see
  /// ReachabilityAnalysis::Options::active_external_endpoints).
  std::optional<std::vector<std::size_t>> active_external_endpoints;
};

Problem discover(const model::Network& network,
                 const graph::InstanceSet& instances,
                 const DiscoverOptions& options,
                 const std::vector<ip::Prefix>& external_origin);

/// The Problem with every element owned by a failed router removed (flows
/// need both endpoints alive). `failed` must be sorted ascending. Universe
/// and instance count are unchanged: masking only removes derivations, so
/// the masked fixpoint is a subset of the baseline's route domain — the
/// property the simulator's fixed interned domain relies on.
Problem masked(const Problem& problem,
               const std::vector<model::RouterId>& failed);

/// External offer universe for a network: default route + every prefix the
/// network's own policies mention + caller extras, minus internal subnets.
/// Sorted ascending, deduplicated.
std::vector<ip::Prefix> external_universe(
    const model::Network& network, const std::vector<ip::Prefix>& extra);

struct FixpointResult {
  std::vector<std::vector<model::Route>> routes;  // per instance, sorted
  std::vector<model::Route> announced;            // sorted
  std::size_t iterations = 0;
  bool converged = true;
};

/// The original full-rescan evaluator, kept byte-for-byte in semantics as
/// the differential oracle: std::set storage, interpreting policy
/// evaluation, deep-copied source sets, a global `changed` flag.
FixpointResult run_naive(const Problem& problem);

/// The delta-driven evaluator: bitmap membership over the interned route
/// domain, per-edge offered cursors, and a dirty-instance worklist. Each
/// edge evaluates each source route exactly once over the run, through
/// policies compiled once up front.
FixpointResult run_semi_naive(const Problem& problem,
                              std::optional<std::uint64_t> shuffle_seed);

// --- Compiled policy chains --------------------------------------------------

/// One direction of a BGP session's policy chain, lowered to compiled
/// matchers. Null members mean "permit" — absent filters and dangling name
/// references alike, matching the interpreting path exactly.
struct CompiledSessionDir {
  const model::CompiledAclFilter* distribute_list = nullptr;
  const model::CompiledPrefixList* prefix_list = nullptr;
  const model::CompiledRouteMap* route_map = nullptr;

  bool permits(const model::Route& route) const {
    if (distribute_list && !distribute_list->permits_route(route)) {
      return false;
    }
    if (prefix_list && !prefix_list->permits_route(route)) return false;
    if (route_map && !route_map->evaluate(route).permitted) return false;
    return true;
  }

  /// No filters in this direction: permits() is constant-true, so bulk
  /// paths may skip per-route evaluation entirely.
  bool trivially_permits() const noexcept {
    return distribute_list == nullptr && prefix_list == nullptr &&
           route_map == nullptr;
  }
};

CompiledSessionDir compile_session_dir(model::PolicyCompiler& compiler,
                                       const SessionPolicy& policy,
                                       bool inbound);

/// Stanza distribute-lists of one direction; unresolvable ACL references
/// permit (as distribute_list_permits does) and are simply dropped.
struct CompiledStanzaDir {
  std::vector<const model::CompiledAclFilter*> acls;

  bool permits(const model::Route& route) const {
    for (const auto* acl : acls) {
      if (!acl->permits_route(route)) return false;
    }
    return true;
  }

  bool trivially_permits() const noexcept { return acls.empty(); }
};

CompiledStanzaDir compile_stanza_dir(model::PolicyCompiler& compiler,
                                     const config::RouterConfig& config,
                                     const config::RouterStanza& stanza,
                                     bool inbound);

// --- Interned route domain ---------------------------------------------------

/// A Route packed into two integers, the probe unit of the membership
/// index and the sort key of the final per-instance sorts. The packing is
/// order-isomorphic to Route's ordering — Prefix's default `<=>` compares
/// (length_, network_) in declaration order, hence `prefix_key = length·2³²
/// + network`, and optional<tag> ordering (nullopt first) maps to `tag_key
/// = 0 | 1 + tag` — so comparing keys gives exactly the Route order, in
/// two branchless integer compares instead of walking optional<>.
struct RouteKey {
  std::uint64_t prefix_key = 0;  // (length << 32) | network
  std::uint64_t tag_key = 0;     // 0 = untagged, else 1 + tag

  friend bool operator==(const RouteKey&, const RouteKey&) = default;
  friend bool operator<(const RouteKey& a, const RouteKey& b) noexcept {
    return a.prefix_key != b.prefix_key ? a.prefix_key < b.prefix_key
                                        : a.tag_key < b.tag_key;
  }
};

inline std::uint64_t prefix_key_of(const model::Route& route) noexcept {
  return (static_cast<std::uint64_t>(route.prefix.length()) << 32) |
         route.prefix.network().value();
}

inline RouteKey route_key(const model::Route& route) noexcept {
  return {prefix_key_of(route), route.tag ? 1ULL + *route.tag : 0ULL};
}

inline std::size_t key_hash(const RouteKey& key) noexcept {
  std::uint64_t h = key.prefix_key * 0x9e3779b97f4a7c15ULL + key.tag_key;
  h ^= h >> 32;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h);
}

/// Interning table over the run's route domain: key -> position, with
/// insert-or-get and growth. One instance shared by the whole run, so its
/// slots stay cache-resident; per-instance state is then just a bitmap
/// over positions. Positions are dense and assigned in first-seen order —
/// the caller keeps the position -> Route table.
class DomainIndex {
 public:
  explicit DomainIndex(std::size_t expected) {
    std::size_t want = 16;
    while (want * 3 < expected * 4) want *= 2;
    slots_.assign(want, Slot{{kEmpty, 0}, 0});
  }

  /// Position of `key`, or `next` after binding key -> next when absent.
  std::uint32_t insert(const RouteKey& key, std::uint32_t next) {
    if ((count_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = key_hash(key) & mask;
    while (slots_[i].key.prefix_key != kEmpty) {
      if (slots_[i].key == key) return slots_[i].pos;
      i = (i + 1) & mask;
    }
    slots_[i] = {key, next};
    ++count_;
    return next;
  }

 private:
  /// No real key reaches this: prefix_key ≤ (32 << 32) | 0xFFFFFFFF.
  static constexpr std::uint64_t kEmpty = ~0ULL;
  struct Slot {
    RouteKey key;
    std::uint32_t pos = 0;
  };

  void rehash(std::size_t want) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(want, Slot{{kEmpty, 0}, 0});
    const std::size_t mask = want - 1;
    for (const Slot& slot : old) {
      if (slot.key.prefix_key == kEmpty) continue;
      std::size_t i = key_hash(slot.key) & mask;
      while (slots_[i].key.prefix_key != kEmpty) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

}  // namespace rd::analysis::prop
