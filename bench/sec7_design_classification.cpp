// Section 7 (7.1/7.2): classification of the 31 networks against the
// canonical "textbook" designs, and the size statistics per class.
//
// Paper: 4 backbones (400-600 routers, mean 540); 7 textbook enterprises
// (19-101 routers); the remaining 20 defy classification (4-1750 routers,
// mean 300, median 36), including four networks larger than the largest
// backbone (760/890/1430/1750) and tier-2 ISPs full of staging instances.

#include <cstdio>
#include <map>

#include "analysis/archetype.h"
#include "analysis/pathway_diversity.h"
#include "bench_common.h"
#include "graph/pathway.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Section 7: design classification of the 31 networks",
                      "Maltz et al., SIGCOMM 2004, sections 7.1-7.2");

  std::map<analysis::DesignArchetype, std::vector<double>> sizes_by_class;
  std::map<analysis::DesignArchetype, std::vector<double>> shapes_by_class;
  util::Table per_network({"network", "routers", "classified as",
                           "generator archetype", "staging IGP inst.",
                           "pathway shapes"});
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto result =
        analysis::classify_design(entry.network, entry.instances);
    sizes_by_class[result.archetype].push_back(
        static_cast<double>(entry.network.router_count()));
    const auto ig = graph::InstanceGraph::build(entry.network);
    const auto diversity =
        analysis::analyze_pathway_diversity(entry.network, ig);
    shapes_by_class[result.archetype].push_back(
        static_cast<double>(diversity.distinct_shapes()));
    per_network.add_row(
        {entry.name,
         util::fmt_int(static_cast<long long>(entry.network.router_count())),
         std::string(analysis::to_string(result.archetype)), entry.archetype,
         util::fmt_int(static_cast<long long>(
             result.features.staging_igp_instances)),
         util::fmt_int(static_cast<long long>(diversity.distinct_shapes()))});
  }
  std::printf("%s\n", per_network.to_string().c_str());

  util::Table summary({"class", "count (measured)", "count (paper)",
                       "size range", "mean", "median"});
  const struct {
    analysis::DesignArchetype archetype;
    const char* paper_count;
    const char* paper_note;
  } rows[] = {
      {analysis::DesignArchetype::kBackbone, "4", "400-600, mean 540"},
      {analysis::DesignArchetype::kTextbookEnterprise, "7", "19-101"},
      {analysis::DesignArchetype::kUnclassifiable, "20",
       "4-1750, mean 300, median 36"},
  };
  for (const auto& row : rows) {
    const auto& sizes = sizes_by_class[row.archetype];
    const auto s = util::summarize(sizes);
    summary.add_row({std::string(analysis::to_string(row.archetype)),
                     util::fmt_int(static_cast<long long>(sizes.size())),
                     row.paper_count,
                     util::fmt_int(static_cast<long long>(s.min)) + "-" +
                         util::fmt_int(static_cast<long long>(s.max)),
                     util::fmt_double(s.mean, 0),
                     util::fmt_double(s.median, 0)});
  }
  std::printf("%s\n", summary.to_string().c_str());

  // Section 7.2: size is not a good indicator of type.
  double largest_backbone = 0;
  for (double s : sizes_by_class[analysis::DesignArchetype::kBackbone]) {
    largest_backbone = std::max(largest_backbone, s);
  }
  std::size_t bigger_than_backbones = 0;
  for (double s :
       sizes_by_class[analysis::DesignArchetype::kUnclassifiable]) {
    if (s > largest_backbone) ++bigger_than_backbones;
  }
  // §7.1's "many different structures": pathway-shape diversity per class.
  for (const auto& row : rows) {
    const auto s = util::summarize(shapes_by_class[row.archetype]);
    std::printf("distinct pathway shapes (%s): mean %.1f, max %.0f\n",
                std::string(analysis::to_string(row.archetype)).c_str(),
                s.mean, s.max);
  }
  std::printf("(paper section 7.1: the canonical designs have a couple of\n"
              "pathway patterns — Figure 7 — while the unclassifiable\n"
              "networks exhibit many; measured above)\n");

  std::printf("unclassifiable networks larger than the largest backbone: "
              "%zu (paper: four at 760/890/1430/1750)\n",
              bigger_than_backbones);
  std::printf("paper reference per-class notes: backbone %s; textbook "
              "enterprise %s; unclassifiable %s\n",
              rows[0].paper_note, rows[1].paper_note, rows[2].paper_note);
  return 0;
}
