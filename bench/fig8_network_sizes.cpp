// Figure 8: distribution of the size of the 31 analyzed networks compared to
// the size distribution of all (~2,400) networks known in the repository.
//
// The paper's histogram uses buckets <10, 20, 40, 80, 160, 320, 640, 1280,
// >1280 and shows the study overweighting networks with more than 20 routers
// relative to the (mostly tiny) repository population.

#include <cstdio>

#include "bench_common.h"
#include "synth/fleet.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header(
      "Figure 8: network size distribution, study vs repository",
      "Maltz et al., SIGCOMM 2004, Figure 8 / section 4.2");

  const auto fleet = synth::generate_fleet(bench::kFleetSeed);
  std::vector<double> study_sizes;
  for (const auto& net : fleet.networks) {
    study_sizes.push_back(static_cast<double>(net.configs.size()));
  }
  const auto repo_sizes = synth::repository_network_sizes(bench::kFleetSeed);

  const std::vector<double> bounds{10, 20, 40, 80, 160, 320, 640, 1280};
  const std::vector<std::string> labels{"<10",  "20",  "40",   "80",  "160",
                                        "320",  "640", "1280", ">1280"};
  const auto study = util::bucket_histogram(study_sizes, bounds, labels);
  const auto repo = util::bucket_histogram(repo_sizes, bounds, labels);

  util::Table table({"routers", "study fraction", "repository fraction"});
  for (std::size_t i = 0; i < study.size(); ++i) {
    table.add_row({study[i].label, util::fmt_double(study[i].fraction, 3),
                   util::fmt_double(repo[i].fraction, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("study networks: %zu (paper: 31), repository networks: %zu "
              "(paper: 2,400)\n",
              study_sizes.size(), repo_sizes.size());
  std::printf("\nPaper reference shape: >60%% of known networks below 10\n"
              "routers; the study sample overweights networks with more\n"
              "than 20 routers and includes the 640-1280+ tail.\n");

  double study_over20 = 0;
  double repo_over20 = 0;
  for (double s : study_sizes) study_over20 += (s > 20);
  for (double s : repo_sizes) repo_over20 += (s > 20);
  std::printf("Measured: study fraction >20 routers = %.2f, repository = "
              "%.2f (study overweights larger networks: %s)\n",
              study_over20 / static_cast<double>(study_sizes.size()),
              repo_over20 / static_cast<double>(repo_sizes.size()),
              study_over20 / static_cast<double>(study_sizes.size()) >
                      repo_over20 / static_cast<double>(repo_sizes.size())
                  ? "yes"
                  : "NO");
  return 0;
}
