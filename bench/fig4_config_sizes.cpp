// Figure 4: size distribution of the configuration files for net5.
//
// The paper plots, for the 881 routers of net5, the number of configuration
// command lines per router, sorted ascending (mean ~270 lines, a long tail
// toward ~1,900 on the hub routers, 237,870 command lines in total). This
// binary regenerates the same curve from the synthetic net5 and prints a
// sampled version of it plus the summary statistics the paper quotes.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "config/lexer.h"
#include "config/writer.h"
#include "synth/archetypes.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Figure 4: configuration file size distribution (net5)",
                      "Maltz et al., SIGCOMM 2004, Figure 4 and section 3");

  const auto net5 = synth::make_net5();
  std::vector<double> lines;
  lines.reserve(net5.configs.size());
  std::size_t total_commands = 0;
  for (const auto& cfg : net5.configs) {
    const auto count =
        config::count_command_lines(config::write_config(cfg));
    lines.push_back(static_cast<double>(count));
    total_commands += count;
  }
  std::sort(lines.begin(), lines.end());

  const auto summary = util::summarize(lines);
  std::printf("routers: %zu   total command lines: %zu\n", lines.size(),
              total_commands);
  std::printf("mean: %.0f   median: %.0f   min: %.0f   max: %.0f\n\n",
              summary.mean, summary.median, summary.min, summary.max);

  util::Table table({"router id (sorted)", "config lines"});
  for (std::size_t i = 0; i < lines.size(); i += lines.size() / 20) {
    table.add_row({util::fmt_int(static_cast<long long>(i)),
                   util::fmt_int(static_cast<long long>(lines[i]))});
  }
  table.add_row({util::fmt_int(static_cast<long long>(lines.size() - 1)),
                 util::fmt_int(static_cast<long long>(lines.back()))});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper reference: 881 routers, ~270 lines on average,\n"
              "237,870 command lines in total, right-skewed with the hub\n"
              "routers an order of magnitude above the median.\n");
  std::printf("Measured shape: right-skewed, max/median = %.1fx "
              "(paper ~7.6x).\n",
              lines.back() / summary.median);
  return 0;
}
