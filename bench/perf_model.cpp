// Model-core benchmarks (ROADMAP item 2: raw speed): the interner's write
// and read paths, the flattened structure-of-arrays lexer, and
// Network::build with the fleet-wide name table — plus the ~100k-router
// mega tier. The mega benchmarks are env-gated (RD_MEGA_ROUTERS=<count>)
// so `--check` and routine runs stay fast on small machines; EXPERIMENTS.md
// records the one-off mega numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "perf_main.h"

#include "analysis/reachability.h"
#include "config/ast.h"
#include "config/lexer.h"
#include "config/parser.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"
#include "util/interner.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

// The fleet tier shared by the small benchmarks: 8 regions x 40 spokes
// (the same workload perf_reachability's scale 2 uses).
const std::vector<std::string>& fleet_texts() {
  static const std::vector<std::string>* texts = [] {
    synth::ManagedEnterpriseParams p;
    p.seed = 7;
    p.regions = 8;
    p.spokes_per_region = 40;
    p.ebgp_spoke_rate = 0.15;
    const auto net = synth::make_managed_enterprise(p);
    auto* out = new std::vector<std::string>;
    out->reserve(net.configs.size());
    for (const auto& config : net.configs) {
      out->push_back(config::write_config(config));
    }
    return out;
  }();
  return *texts;
}

const std::vector<config::RouterConfig>& fleet_configs() {
  static const std::vector<config::RouterConfig>* configs = [] {
    auto* out = new std::vector<config::RouterConfig>;
    for (const auto& text : fleet_texts()) {
      out->push_back(config::parse_config(text).config);
    }
    return out;
  }();
  return *configs;
}

// Every name the model interns, in intern order, with fleet-realistic
// duplication (interface names repeat across every router).
const std::vector<std::string>& fleet_names() {
  static const std::vector<std::string>* names = [] {
    auto* out = new std::vector<std::string>;
    for (const auto& config : fleet_configs()) {
      out->push_back(config.hostname);
      for (const auto& itf : config.interfaces) out->push_back(itf.name);
      for (const auto& rm : config.route_maps) out->push_back(rm.name);
      for (const auto& acl : config.access_lists) out->push_back(acl.id);
    }
    return out;
  }();
  return *names;
}

// --- interner ---------------------------------------------------------------

void BM_InternNames(benchmark::State& state) {
  const auto& names = fleet_names();
  std::size_t distinct = 0;
  for (auto _ : state) {
    util::Interner interner(256);
    for (const auto& name : names) {
      benchmark::DoNotOptimize(interner.intern(name));
    }
    distinct = interner.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(names.size()));
  state.counters["names"] = static_cast<double>(names.size());
  state.counters["distinct"] = static_cast<double>(distinct);
}
BENCHMARK(BM_InternNames);

void BM_InternerFind(benchmark::State& state) {
  const auto& names = fleet_names();
  static const util::Interner* interner = [] {
    auto* in = new util::Interner(256);
    for (const auto& name : fleet_names()) in->intern(name);
    return in;
  }();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& name : names) sum += interner->find(name);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(names.size()));
  state.counters["string_bytes"] =
      static_cast<double>(interner->string_bytes());
}
BENCHMARK(BM_InternerFind);

// --- lexer ------------------------------------------------------------------

void BM_LexFleet(benchmark::State& state) {
  const auto& texts = fleet_texts();
  std::size_t tokens = 0;
  for (auto _ : state) {
    tokens = 0;
    for (const auto& text : texts) {
      const auto lexed = config::lex(text);
      tokens += lexed.token_storage.size();
      benchmark::DoNotOptimize(lexed.lines.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tokens));
  state.counters["configs"] = static_cast<double>(texts.size());
  state.counters["tokens"] = static_cast<double>(tokens);
}
BENCHMARK(BM_LexFleet);

// --- model build ------------------------------------------------------------

void BM_BuildModel(benchmark::State& state) {
  const auto& configs = fleet_configs();
  std::size_t routers = 0;
  std::size_t interned = 0;
  for (auto _ : state) {
    auto copy = configs;  // build() consumes its input
    const auto network = model::Network::build(std::move(copy));
    routers = network.router_count();
    interned = network.names().size();
    benchmark::DoNotOptimize(routers);
  }
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["interned_names"] = static_cast<double>(interned);
}
BENCHMARK(BM_BuildModel)->Unit(benchmark::kMillisecond);

// --- mega tier (~100k routers, env-gated) -----------------------------------

// Built once per process and shared; the synth + parse + build of a 100k
// network takes minutes on one core, so the gate is an env var rather than
// a benchmark arg: RD_MEGA_ROUTERS=100000 ./perf_model
// --benchmark_filter=Mega --benchmark_min_time=1x
struct MegaWorkload {
  model::Network network;
  graph::InstanceSet instances;
};

std::uint32_t mega_target() {
  const char* env = std::getenv("RD_MEGA_ROUTERS");
  if (env == nullptr || *env == '\0') return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<std::uint32_t>(value) : 0;
}

const std::vector<std::string>& mega_texts() {
  static const std::vector<std::string>* texts = [] {
    synth::MegaTierParams p;
    p.target_routers = mega_target();
    const auto net = synth::make_mega_tier(p);
    auto* out = new std::vector<std::string>;
    out->reserve(net.configs.size());
    for (const auto& config : net.configs) {
      out->push_back(config::write_config(config));
    }
    return out;
  }();
  return *texts;
}

const MegaWorkload& mega_workload() {
  static const MegaWorkload* w = [] {
    auto network = pipeline::build_network_serial(mega_texts());
    auto instances = graph::compute_instances(network);
    return new MegaWorkload{std::move(network), std::move(instances)};
  }();
  return *w;
}

bool mega_enabled(benchmark::State& state) {
  if (mega_target() != 0) return true;
  state.SetLabel("skipped: set RD_MEGA_ROUTERS=<count>");
  for (auto _ : state) {
  }
  return false;
}

// The full model-ingest path at mega scale: lex + parse + Network::build
// (name interning included) over pre-serialized config texts.
void BM_MegaBuild(benchmark::State& state) {
  if (!mega_enabled(state)) return;
  const auto& texts = mega_texts();
  std::size_t routers = 0;
  std::size_t interned = 0;
  for (auto _ : state) {
    const auto network = pipeline::build_network_serial(texts);
    routers = network.router_count();
    interned = network.names().size();
    benchmark::DoNotOptimize(routers);
  }
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["interned_names"] = static_cast<double>(interned);
}
BENCHMARK(BM_MegaBuild)->Unit(benchmark::kMillisecond);

// Reachability on one mega network. Held routes grow superlinearly with
// single-network size (every external route reaches every instance:
// 88 routers -> 18.4k routes, 341 -> 352.6k), so dial RD_MEGA_ROUTERS to
// what materialized route memory allows — the 100k-*fleet* numbers come
// from BM_MegaFleet below, which is the paper's actual many-networks
// setting and scales linearly.
void BM_MegaReachability(benchmark::State& state) {
  if (!mega_enabled(state)) return;
  const MegaWorkload& w = mega_workload();
  analysis::ReachabilityAnalysis::Options options;
  options.engine = analysis::ReachabilityAnalysis::Engine::kSemiNaive;
  std::size_t total_routes = 0;
  for (auto _ : state) {
    const auto reach =
        analysis::ReachabilityAnalysis::run(w.network, w.instances, options);
    total_routes = 0;
    for (std::uint32_t i = 0; i < w.instances.instances.size(); ++i) {
      total_routes += reach.instance_routes(i).size();
    }
    benchmark::DoNotOptimize(total_routes);
  }
  state.counters["routers"] = static_cast<double>(w.network.router_count());
  state.counters["routes"] = static_cast<double>(total_routes);
}
BENCHMARK(BM_MegaReachability)->Unit(benchmark::kMillisecond);

// The ~100k-router fleet: RD_MEGA_ROUTERS total routers split into
// fleet-tier managed networks (341 routers each, the perf_reachability
// scale-2 workload), run through the full parse + build + analyze
// pipeline. Arg = thread count.
void BM_MegaFleet(benchmark::State& state) {
  if (!mega_enabled(state)) return;
  static const std::vector<pipeline::FleetInput>* inputs = [] {
    auto* in = new std::vector<pipeline::FleetInput>;
    const std::uint32_t networks =
        std::max<std::uint32_t>(1, mega_target() / 341);
    for (std::uint32_t i = 0; i < networks; ++i) {
      synth::ManagedEnterpriseParams p;
      p.seed = 7 + i;  // distinct networks, deterministic fleet
      p.name = "mega-" + std::to_string(i);
      p.regions = 8;
      p.spokes_per_region = 40;
      p.ebgp_spoke_rate = 0.15;
      const auto net = synth::make_managed_enterprise(p);
      pipeline::FleetInput input;
      input.name = net.name;
      for (const auto& config : net.configs) {
        input.texts.push_back(config::write_config(config));
      }
      in->push_back(std::move(input));
    }
    return in;
  }();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::size_t routers = 0;
  for (auto _ : state) {
    const auto reports = pipeline::analyze_fleet_parallel(*inputs, pool);
    routers = 0;
    for (const auto& r : reports) routers += r.routers;
    benchmark::DoNotOptimize(routers);
  }
  state.counters["networks"] = static_cast<double>(inputs->size());
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_MegaFleet)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

RD_PERF_MAIN
