// Section 6.1: the policy-style trade-off. net5's structured address plan
// let the designer express every policy with address-based route-maps and
// IGP route tags, avoiding BGP attributes (and with them the IBGP mesh);
// backbone networks cannot lay out their peers' address space and must use
// AS-path attributes. This binary reproduces the comparison across the
// fleet.

#include <cstdio>
#include <set>
#include <string>

#include "analysis/policy_style.h"
#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Section 6.1: address-based vs attribute-based policy",
                      "Maltz et al., SIGCOMM 2004, section 6.1");

  util::Table table({"network", "rm clauses", "address-based", "tag-based",
                     "as-path/attr", "session filters", "needs BGP attrs"});
  bool backbones_need_attrs = true;
  bool net5_pure = false;
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto style = analysis::analyze_policy_style(entry.network);
    if (entry.archetype == "backbone") {
      backbones_need_attrs =
          backbones_need_attrs && style.needs_bgp_attributes();
    }
    if (entry.name == "net5") {
      net5_pure = style.purely_address_and_tag_based();
    }
    // Keep the table readable: the case studies + one of each archetype.
    static std::set<std::string> shown;
    if (entry.name == "net5" || entry.name == "net15" ||
        shown.insert(entry.archetype).second) {
      table.add_row(
          {entry.name,
           util::fmt_int(static_cast<long long>(style.route_map_clauses)),
           util::fmt_int(static_cast<long long>(
               style.address_based_clauses)),
           util::fmt_int(static_cast<long long>(style.tag_based_clauses)),
           util::fmt_int(static_cast<long long>(
               style.attribute_based_clauses + style.as_path_list_entries)),
           util::fmt_int(static_cast<long long>(
               style.session_address_filters)),
           style.needs_bgp_attributes() ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper section 6.1 claims:\n");
  std::printf("  - backbones must use AS-path attributes: %s\n",
              backbones_need_attrs ? "reproduced (all 4 use them)"
                                   : "NOT REPRODUCED");
  std::printf("  - net5's policies are purely address/tag-based (the\n"
              "    structured address plan carries the policy): %s\n",
              net5_pure ? "reproduced" : "NOT REPRODUCED");
  return 0;
}
