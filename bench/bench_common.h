#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"
#include "synth/emit.h"
#include "synth/fleet.h"

namespace rd::bench {

/// One fully analyzed network of the synthetic fleet.
struct AnalyzedNetwork {
  std::string name;
  std::string archetype;
  model::Network network;
  graph::InstanceSet instances;
};

/// Deterministic fleet seed shared by every experiment binary, so all tables
/// and figures describe the same 31 networks.
constexpr std::uint64_t kFleetSeed = 42;

/// Generate the 31-network fleet, serialize each network to configuration
/// text, re-parse, and build the model — the paper's pipeline, end to end.
inline std::vector<AnalyzedNetwork> analyzed_fleet() {
  const auto fleet = synth::generate_fleet(kFleetSeed);
  std::vector<AnalyzedNetwork> out;
  out.reserve(fleet.networks.size());
  for (const auto& net : fleet.networks) {
    AnalyzedNetwork entry{net.name, net.archetype,
                          model::Network::build(synth::reparse(net.configs)),
                          {}};
    entry.instances = graph::compute_instances(entry.network);
    out.push_back(std::move(entry));
  }
  return out;
}

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Input: synthetic 31-network fleet (seed %llu), analyzed from\n"
              "emitted configuration text (see DESIGN.md section 2).\n",
              static_cast<unsigned long long>(kFleetSeed));
  std::printf("==============================================================\n\n");
}

}  // namespace rd::bench
