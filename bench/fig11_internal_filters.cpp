// Figure 11: CDF over the networks (those that define any packet filters) of
// the percentage of packet-filter rules applied to internal links.
//
// The paper's headline: three networks define no filters (excluded, leaving
// 28), and in more than 30% of the networks at least 40% of the filter rules
// sit on internal interfaces — refuting the filter-only-at-the-edge wisdom.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "analysis/filters.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header(
      "Figure 11: CDF of % packet filter rules applied to internal links",
      "Maltz et al., SIGCOMM 2004, Figure 11 / section 5.3");

  std::vector<double> internal_percent;
  std::size_t filterless = 0;
  std::size_t largest_filter = 0;
  std::map<std::string, std::size_t> targets;
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto stats = analysis::gather_filter_stats(entry.network);
    if (!stats.has_filters()) {
      ++filterless;
      continue;
    }
    internal_percent.push_back(stats.internal_fraction() * 100.0);
    largest_filter = std::max(largest_filter, stats.largest_filter_rules);
    for (const auto& [target, count] :
         analysis::internal_filter_targets(entry.network)) {
      targets[target] += count;
    }
  }

  std::printf("networks with filters: %zu (paper: 28); without: %zu "
              "(paper: 3)\n\n",
              internal_percent.size(), filterless);

  std::vector<double> thresholds;
  for (int t = 0; t <= 100; t += 10) {
    thresholds.push_back(static_cast<double>(t));
  }
  const auto cdf = util::cdf_at(internal_percent, thresholds);
  util::Table table({"% rules on internal links (x)",
                     "fraction of networks <= x"});
  for (const auto& point : cdf) {
    table.add_row({util::fmt_double(point.value, 0),
                   util::fmt_double(point.fraction, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  double at_least_40 = 0;
  for (double p : internal_percent) at_least_40 += (p >= 40.0);
  at_least_40 /= static_cast<double>(internal_percent.size());
  std::printf("networks with >=40%% of rules on internal links: %s "
              "(paper: >30%%) -> %s\n",
              util::fmt_percent(at_least_40, 1).c_str(),
              at_least_40 > 0.30 ? "shape holds" : "SHAPE MISMATCH");
  std::printf("largest single filter: %zu clauses (paper flags a 47-clause "
              "multi-policy filter)\n",
              largest_filter);

  // The paper's qualitative look at what internal filters target: disabling
  // protocols (PIM), blocking UDP/TCP ports, selective application access.
  std::printf("\ninternal filter rules by target protocol "
              "(paper section 5.3's qualitative diversity):\n");
  for (const auto& [target, count] : targets) {
    std::printf("  %-6s %zu\n", target.c_str(), count);
  }
  return 0;
}
