// Performance benchmarks and ablations for the pipeline itself (not a paper
// figure). Covers the design choices called out in DESIGN.md section 5:
//   - instance closure via union-find vs explicit BFS flood fill;
//   - the paper's half-used address join vs exact CIDR aggregation;
//   - parse/serialize/anonymize throughput and model-build scaling.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "perf_main.h"

#include "analysis/egress.h"
#include "analysis/ibgp.h"
#include "analysis/reachability.h"
#include "analysis/whatif.h"
#include "anonymize/anonymizer.h"
#include "config/parser.h"
#include "config/writer.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "ip/aggregate.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

synth::SynthNetwork managed_of_size(std::uint32_t spokes_per_region) {
  synth::ManagedEnterpriseParams p;
  p.seed = 7;
  p.regions = 4;
  p.spokes_per_region = spokes_per_region;
  p.ebgp_spoke_rate = 0.15;
  return synth::make_managed_enterprise(p);
}

std::vector<std::string> config_texts(const synth::SynthNetwork& net) {
  std::vector<std::string> texts;
  texts.reserve(net.configs.size());
  for (const auto& cfg : net.configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

// --- parsing / serialization -------------------------------------------------

void BM_ParseConfig(benchmark::State& state) {
  const auto net = managed_of_size(20);
  const auto texts = config_texts(net);
  std::size_t bytes = 0;
  for (const auto& text : texts) bytes += text.size();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        config::parse_config(texts[i % texts.size()], "bench"));
    ++i;
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(bytes / texts.size()));
}
BENCHMARK(BM_ParseConfig);

void BM_WriteConfig(benchmark::State& state) {
  const auto net = managed_of_size(20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        config::write_config(net.configs[i % net.configs.size()]));
    ++i;
  }
}
BENCHMARK(BM_WriteConfig);

void BM_AnonymizeConfig(benchmark::State& state) {
  const auto net = managed_of_size(20);
  const auto texts = config_texts(net);
  anonymize::Anonymizer anonymizer(1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymizer.anonymize(texts[i % texts.size()]));
    ++i;
  }
}
BENCHMARK(BM_AnonymizeConfig);

// --- parallel pipeline (serial baseline vs thread counts) --------------------
//
// BM_SerialParseNetwork is the serial baseline for BM_ParallelParse: both
// parse the same ~170-router managed enterprise end to end and build the
// model. Speedup = serial time / parallel time at the reported thread count.

void BM_SerialParseNetwork(benchmark::State& state) {
  const auto net = managed_of_size(40);
  const auto texts = config_texts(net);
  std::size_t bytes = 0;
  for (const auto& text : texts) bytes += text.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::build_network_serial(texts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["routers"] = static_cast<double>(texts.size());
}
BENCHMARK(BM_SerialParseNetwork);

void BM_ParallelParse(benchmark::State& state) {
  const auto net = managed_of_size(40);
  const auto texts = config_texts(net);
  std::size_t bytes = 0;
  for (const auto& text : texts) bytes += text.size();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::build_network_parallel(texts, pool));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["routers"] = static_cast<double>(texts.size());
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_ParallelParse)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

namespace {

// A reduced fleet for the fleet-analysis benchmark: one network per
// archetype family, sized so one full analysis pass is milliseconds, not
// seconds (the real 31-network fleet includes 881- and 1750-router nets).
std::vector<pipeline::FleetInput> bench_fleet_inputs() {
  std::vector<pipeline::FleetInput> inputs;
  const auto add = [&inputs](const synth::SynthNetwork& net) {
    std::vector<std::string> texts;
    texts.reserve(net.configs.size());
    for (const auto& cfg : net.configs) {
      texts.push_back(config::write_config(cfg));
    }
    inputs.push_back({net.name, std::move(texts)});
  };
  synth::BackboneParams bb;
  bb.core_routers = 4;
  bb.access_routers = 16;
  bb.external_peers = 30;
  add(synth::make_backbone(bb));
  synth::TextbookEnterpriseParams te;
  te.routers = 24;
  add(synth::make_textbook_enterprise(te));
  synth::Tier2Params t2;
  t2.core_routers = 4;
  t2.edge_routers = 10;
  add(synth::make_tier2_isp(t2));
  synth::ManagedEnterpriseParams me;
  me.regions = 3;
  me.spokes_per_region = 10;
  add(synth::make_managed_enterprise(me));
  synth::NoBgpParams nb;
  add(synth::make_no_bgp_enterprise(nb));
  synth::MergedHybridParams mh;
  add(synth::make_merged_hybrid(mh));
  return inputs;
}

}  // namespace

void BM_SerialFleet(benchmark::State& state) {
  const auto inputs = bench_fleet_inputs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::analyze_fleet_serial(inputs));
  }
  state.counters["networks"] = static_cast<double>(inputs.size());
}
BENCHMARK(BM_SerialFleet);

void BM_ParallelFleet(benchmark::State& state) {
  const auto inputs = bench_fleet_inputs();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::analyze_fleet_parallel(inputs, pool));
  }
  state.counters["networks"] = static_cast<double>(inputs.size());
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_ParallelFleet)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- incremental snapshot re-analysis (content-addressed parse cache) --------
//
// The §8.2 longitudinal workload: snapshot k+1 of a 64-router network
// differs from snapshot k in only a few routers. The parse cache
// accelerates exactly one phase — turning config texts into parse
// results — so the benchmarks are scoped in three layers:
//
//   BM_IncrementalFleet[_Cold]   snapshot ingest (texts -> parse results);
//                                this is the phase the cache targets and
//                                the headline warm/cold ratio.
//   BM_IncrementalModel[_Cold]   ingest + model build. The model is
//                                rebuilt network-wide (a changed router
//                                can rewire any link), so the ratio decays
//                                toward the build cost.
//   BM_SnapshotSeries_*          the full two-snapshot series with every
//                                §8.1 analysis pass and the design diff;
//                                bounds what caching buys end to end.
//
// Every warm iteration re-derives the k changed texts with a fresh
// revision marker, so the changed routers are genuine cache misses each
// time — reusing one evolved snapshot would turn the misses into hits
// after the first iteration and overstate the speedup.

namespace {

// A managed enterprise pinned at exactly 64 routers (cores, region
// borders, and 4 regions of spokes; seed 8 lands the randomized region
// sizes on 64 total).
std::vector<std::string> sixty_four_router_texts() {
  synth::ManagedEnterpriseParams p;
  p.seed = 8;
  p.regions = 4;
  p.spokes_per_region = 15;
  auto texts = config_texts(synth::make_managed_enterprise(p));
  return texts;
}

// Snapshot k+1: `changed` routers each gain one static route tagged with
// `rev`, the small per-router churn §8.2 describes. Distinct revs yield
// distinct texts, i.e. genuine cache misses.
void evolve_texts(std::vector<std::string>& snap,
                  const std::vector<std::string>& base, std::size_t changed,
                  std::uint64_t rev) {
  const std::size_t n = base.size();
  for (std::size_t i = 0; i < changed && i < n; ++i) {
    snap[n - 1 - i] = base[n - 1 - i] + "ip route 10.213." +
                      std::to_string(rev / 250) + "." +
                      std::to_string(rev % 250) +
                      " 255.255.255.255 10.0.0.1\n";
  }
}

}  // namespace

void BM_IncrementalFleet_Cold(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto base = sixty_four_router_texts();
  auto snap = base;
  std::uint64_t rev = 0;
  for (auto _ : state) {
    state.PauseTiming();
    evolve_texts(snap, base, changed, rev++);
    state.ResumeTiming();
    std::vector<config::ParseResult> parses;
    parses.reserve(snap.size());
    for (const auto& text : snap) parses.push_back(config::parse_config(text));
    benchmark::DoNotOptimize(parses);
  }
  state.counters["routers"] = static_cast<double>(base.size());
  state.counters["changed"] = static_cast<double>(changed);
}
BENCHMARK(BM_IncrementalFleet_Cold)->Arg(0)->Arg(4);

void BM_IncrementalFleet(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto base = sixty_four_router_texts();
  pipeline::ParseCache cache;
  for (const auto& text : base) cache.parse(text);  // snapshot k is cached
  auto snap = base;
  std::uint64_t rev = 0;
  for (auto _ : state) {
    state.PauseTiming();
    evolve_texts(snap, base, changed, rev++);
    state.ResumeTiming();
    std::vector<std::shared_ptr<const config::ParseResult>> parses;
    parses.reserve(snap.size());
    for (const auto& text : snap) parses.push_back(cache.parse(text));
    benchmark::DoNotOptimize(parses);
  }
  state.counters["routers"] = static_cast<double>(base.size());
  state.counters["changed"] = static_cast<double>(changed);
}
BENCHMARK(BM_IncrementalFleet)->Arg(0)->Arg(4);

void BM_IncrementalModel_Cold(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto base = sixty_four_router_texts();
  auto snap = base;
  std::uint64_t rev = 0;
  for (auto _ : state) {
    state.PauseTiming();
    evolve_texts(snap, base, changed, rev++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pipeline::build_network_serial(snap));
  }
  state.counters["routers"] = static_cast<double>(base.size());
  state.counters["changed"] = static_cast<double>(changed);
}
BENCHMARK(BM_IncrementalModel_Cold)->Arg(0)->Arg(4);

void BM_IncrementalModel(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto base = sixty_four_router_texts();
  pipeline::ParseCache cache;
  util::ThreadPool pool(1);  // isolate the caching effect from parallelism
  benchmark::DoNotOptimize(pipeline::build_network_cached(base, cache, pool));
  auto snap = base;
  std::uint64_t rev = 0;
  for (auto _ : state) {
    state.PauseTiming();
    evolve_texts(snap, base, changed, rev++);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pipeline::build_network_cached(snap, cache, pool));
  }
  state.counters["routers"] = static_cast<double>(base.size());
  state.counters["changed"] = static_cast<double>(changed);
}
BENCHMARK(BM_IncrementalModel)->Arg(0)->Arg(4);

void BM_SnapshotSeries_Cold(benchmark::State& state) {
  const auto base = sixty_four_router_texts();
  auto evolved = base;
  evolve_texts(evolved, base, 4, 0);
  const std::vector<pipeline::SnapshotInput> series = {{"t0", base},
                                                       {"t1", evolved}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline::analyze_snapshot_series_serial(series));
  }
}
BENCHMARK(BM_SnapshotSeries_Cold);

void BM_SnapshotSeries_Warm(benchmark::State& state) {
  const auto base = sixty_four_router_texts();
  auto evolved = base;
  evolve_texts(evolved, base, 4, 0);
  const std::vector<pipeline::SnapshotInput> series = {{"t0", base},
                                                       {"t1", evolved}};
  pipeline::ParseCache cache;
  util::ThreadPool pool(1);
  benchmark::DoNotOptimize(
      pipeline::analyze_snapshot_series(series, cache, pool));  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::analyze_snapshot_series(series, cache, pool));
  }
}
BENCHMARK(BM_SnapshotSeries_Warm);

// --- model building ------------------------------------------------------------

void BM_BuildNetwork(benchmark::State& state) {
  const auto net = managed_of_size(static_cast<std::uint32_t>(state.range(0)));
  const auto configs = synth::reparse(net.configs);
  for (auto _ : state) {
    auto copy = configs;
    benchmark::DoNotOptimize(model::Network::build(std::move(copy)));
  }
  state.SetComplexityN(static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_BuildNetwork)->Arg(10)->Arg(40)->Arg(120)->Complexity();

// --- ablation: instance closure --------------------------------------------------

void BM_InstanceClosure_UnionFind(benchmark::State& state) {
  const auto net = managed_of_size(static_cast<std::uint32_t>(state.range(0)));
  const auto network = model::Network::build(synth::reparse(net.configs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::compute_instances(network));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(network.processes().size()));
}
BENCHMARK(BM_InstanceClosure_UnionFind)->Arg(20)->Arg(80)->Complexity();

void BM_InstanceClosure_Bfs(benchmark::State& state) {
  const auto net = managed_of_size(static_cast<std::uint32_t>(state.range(0)));
  const auto network = model::Network::build(synth::reparse(net.configs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::compute_instances_bfs(network));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(network.processes().size()));
}
BENCHMARK(BM_InstanceClosure_Bfs)->Arg(20)->Arg(80)->Complexity();

// --- ablation: address-structure join rule ----------------------------------------

void BM_AddressStructure_HalfUsedJoin(benchmark::State& state) {
  const auto net = managed_of_size(40);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto subnets = network.interface_subnets();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::extract_address_structure(subnets));
  }
  state.counters["subnets"] = static_cast<double>(subnets.size());
  state.counters["roots"] = static_cast<double>(
      graph::extract_address_structure(subnets).roots.size());
}
BENCHMARK(BM_AddressStructure_HalfUsedJoin);

void BM_AddressStructure_ExactAggregate(benchmark::State& state) {
  const auto net = managed_of_size(40);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto subnets = network.interface_subnets();
  for (auto _ : state) {
    auto copy = subnets;
    benchmark::DoNotOptimize(ip::aggregate_exact(std::move(copy)));
  }
  state.counters["subnets"] = static_cast<double>(subnets.size());
  state.counters["roots"] = static_cast<double>(
      ip::aggregate_exact(subnets).size());
}
BENCHMARK(BM_AddressStructure_ExactAggregate);

// --- reachability and pathway ------------------------------------------------------

void BM_ReachabilityNet15(benchmark::State& state) {
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);
  analysis::ReachabilityAnalysis::Options options;
  const auto plan = synth::net15_plan();
  options.external_prefixes = {plan.ab0, plan.external_left,
                               plan.external_right};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::ReachabilityAnalysis::run(network, instances, options));
  }
}
BENCHMARK(BM_ReachabilityNet15);

void BM_IbgpSignalingAnalysis(benchmark::State& state) {
  synth::BackboneParams p;
  p.access_routers = 80;
  p.external_peers = 60;
  const auto net = synth::make_backbone(p);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto instances = graph::compute_instances(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_ibgp(network, instances));
  }
}
BENCHMARK(BM_IbgpSignalingAnalysis);

void BM_ArticulationRouters(benchmark::State& state) {
  const auto net = managed_of_size(40);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto instances = graph::compute_instances(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::instance_articulation_routers(network, instances));
  }
}
BENCHMARK(BM_ArticulationRouters);

void BM_EgressAttribution(benchmark::State& state) {
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::EgressAnalysis::run(network, instances));
  }
}
BENCHMARK(BM_EgressAttribution);

void BM_PathwayAllRouters(benchmark::State& state) {
  const auto net = managed_of_size(20);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto ig = graph::InstanceGraph::build(network);
  for (auto _ : state) {
    for (model::RouterId r = 0; r < network.router_count(); ++r) {
      benchmark::DoNotOptimize(graph::compute_pathway(network, ig, r));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(network.router_count()));
}
BENCHMARK(BM_PathwayAllRouters);

}  // namespace

RD_PERF_MAIN
