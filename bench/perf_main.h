#pragma once

// Shared entry point for the perf_* benchmark binaries, adding a `--check`
// smoke mode: each registered benchmark runs for a single iteration, which
// is enough for ctest to prove the benchmark code still compiles and runs
// (see bench/CMakeLists.txt's perf_*_check tests) without paying
// measurement-grade repetition. `--check` maps onto
// `--benchmark_min_time=0`, which the bundled google-benchmark (1.7.x)
// treats as "stop after the first iteration".

// With RD_BENCH_JSON=1 in the environment, each binary also writes its full
// google-benchmark report to BENCH_<binary-name>.json in the working
// directory (unless the caller already passed --benchmark_out), so CI and
// EXPERIMENTS.md runs get machine-readable numbers without per-binary
// plumbing.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace rd::bench {

inline int perf_main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0";
  bool check = false;
  bool has_out = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--check") == 0) {
      check = true;
      it = args.erase(it);
    } else {
      if (std::strncmp(*it, "--benchmark_out=", 16) == 0) has_out = true;
      ++it;
    }
  }
  if (check) args.push_back(min_time.data());

  // Flag storage must outlive benchmark::Initialize, which keeps pointers.
  std::string out_flag;
  std::string out_format = "--benchmark_out_format=json";
  const char* want_json = std::getenv("RD_BENCH_JSON");
  if (!has_out && want_json != nullptr && std::strcmp(want_json, "1") == 0) {
    std::string name(argv[0]);
    if (const auto slash = name.find_last_of('/');
        slash != std::string::npos) {
      name.erase(0, slash + 1);
    }
    out_flag = "--benchmark_out=BENCH_" + name + ".json";
    args.push_back(out_flag.data());
    args.push_back(out_format.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rd::bench

#define RD_PERF_MAIN                                  \
  int main(int argc, char** argv) {                   \
    return ::rd::bench::perf_main(argc, argv);        \
  }
