#pragma once

// Shared entry point for the perf_* benchmark binaries, adding a `--check`
// smoke mode: each registered benchmark runs for a single iteration, which
// is enough for ctest to prove the benchmark code still compiles and runs
// (see bench/CMakeLists.txt's perf_*_check tests) without paying
// measurement-grade repetition. `--check` maps onto
// `--benchmark_min_time=0`, which the bundled google-benchmark (1.7.x)
// treats as "stop after the first iteration".

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace rd::bench {

inline int perf_main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0";
  bool check = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--check") == 0) {
      check = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (check) args.push_back(min_time.data());
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rd::bench

#define RD_PERF_MAIN                                  \
  int main(int argc, char** argv) {                   \
    return ::rd::bench::perf_main(argc, argv);        \
  }
