// Table 1: number of protocol instances performing intra- or inter-domain
// routing across the 31 networks, plus the section 5.2 headline percentages
// (11% of IGP instances serve as EGP; 10% of EBGP sessions are used for
// intra-network routing; three networks do not use BGP at all).

#include <cstdio>
#include <map>

#include "analysis/roles.h"
#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Table 1: intra- vs inter-domain protocol roles",
                      "Maltz et al., SIGCOMM 2004, Table 1 / section 5.2");

  analysis::RoleCounts total;
  std::size_t networks_without_bgp = 0;
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto counts = analysis::classify_roles(entry.network,
                                                 entry.instances);
    if (!counts.uses_bgp) ++networks_without_bgp;
    total += counts;
  }

  // Paper's Table 1 row order: OSPF, EIGRP (incl. IGRP), RIP, EBGP.
  const struct {
    config::RoutingProtocol protocol;
    const char* label;
    long long paper_intra;
    long long paper_inter;
  } rows[] = {
      {config::RoutingProtocol::kOspf, "OSPF", 9624, 1161},
      {config::RoutingProtocol::kEigrp, "EIGRP", 12741, 1342},
      {config::RoutingProtocol::kRip, "RIP", 156, 161},
  };

  util::Table table({"protocol", "intra (measured)", "inter (measured)",
                     "intra (paper)", "inter (paper)"});
  std::size_t igp_intra = 0;
  std::size_t igp_inter = 0;
  for (const auto& row : rows) {
    auto counts = total.igp_instances[row.protocol];
    if (row.protocol == config::RoutingProtocol::kEigrp) {
      // The paper folds the two IGRP instances into the EIGRP row.
      const auto igrp = total.igp_instances[config::RoutingProtocol::kIgrp];
      counts.first += igrp.first;
      counts.second += igrp.second;
    }
    igp_intra += counts.first;
    igp_inter += counts.second;
    table.add_row({row.label,
                   util::fmt_int(static_cast<long long>(counts.first)),
                   util::fmt_int(static_cast<long long>(counts.second)),
                   util::fmt_int(row.paper_intra),
                   util::fmt_int(row.paper_inter)});
  }
  table.add_row({"EBGP sessions",
                 util::fmt_int(static_cast<long long>(
                     total.ebgp_intra_sessions)),
                 util::fmt_int(static_cast<long long>(
                     total.ebgp_inter_sessions)),
                 util::fmt_int(1490), util::fmt_int(13830)});
  std::printf("%s\n", table.to_string().c_str());

  const double igp_as_egp =
      static_cast<double>(igp_inter) /
      static_cast<double>(igp_intra + igp_inter);
  const double ebgp_intra_share =
      static_cast<double>(total.ebgp_intra_sessions) /
      static_cast<double>(total.ebgp_intra_sessions +
                          total.ebgp_inter_sessions);
  std::printf("IGP instances serving the inter-domain role: %s "
              "(paper: 11%%)\n",
              util::fmt_percent(igp_as_egp, 1).c_str());
  std::printf("EBGP sessions used for intra-network routing: %s "
              "(paper: 10%%)\n",
              util::fmt_percent(ebgp_intra_share, 1).c_str());
  std::printf("networks without BGP: %zu (paper: 3)\n", networks_without_bgp);
  std::printf("IBGP sessions (not part of Table 1): %zu\n",
              total.ibgp_sessions);
  std::printf("\nShape check: OSPF and EIGRP dominate and are ~90%% intra;\n"
              "RIP is roughly balanced; EBGP is ~90%% inter. Absolute\n"
              "instance counts scale with fleet size (see EXPERIMENTS.md).\n");
  return 0;
}
