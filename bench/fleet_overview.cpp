// Data-set overview (paper §4.2): one row per analyzed network — size,
// interfaces, links, routing instances, BGP usage, filters, and the design
// classification. This is the study-population table every analysis binary
// draws from.

#include <cstdio>

#include "analysis/archetype.h"
#include "analysis/filters.h"
#include "analysis/roles.h"
#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Fleet overview: the 31 analyzed networks",
                      "Maltz et al., SIGCOMM 2004, section 4.2 (data set)");

  util::Table table({"network", "routers", "interfaces", "links",
                     "instances", "IGP inst.", "EBGP ext.", "filter rules",
                     "% internal", "classified as"});
  std::size_t total_routers = 0;
  std::size_t total_interfaces = 0;
  std::size_t total_instances = 0;
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto roles = analysis::classify_roles(entry.network,
                                                entry.instances);
    const auto filters = analysis::gather_filter_stats(entry.network);
    const auto cls = analysis::classify_design(entry.network,
                                               entry.instances);
    std::size_t igp_instances = 0;
    for (const auto& [proto, counts] : roles.igp_instances) {
      igp_instances += counts.first + counts.second;
    }
    total_routers += entry.network.router_count();
    total_interfaces += entry.network.interfaces().size();
    total_instances += entry.instances.instances.size();
    table.add_row(
        {entry.name,
         util::fmt_int(static_cast<long long>(entry.network.router_count())),
         util::fmt_int(static_cast<long long>(
             entry.network.interfaces().size())),
         util::fmt_int(static_cast<long long>(entry.network.links().size())),
         util::fmt_int(static_cast<long long>(
             entry.instances.instances.size())),
         util::fmt_int(static_cast<long long>(igp_instances)),
         util::fmt_int(static_cast<long long>(roles.ebgp_inter_sessions)),
         util::fmt_int(static_cast<long long>(filters.total_applied_rules)),
         filters.has_filters()
             ? util::fmt_percent(filters.internal_fraction(), 0)
             : "-",
         std::string(analysis::to_string(cls.archetype))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("totals: %zu routers (paper: 8,035), %zu interfaces "
              "(paper: 96,487), %zu routing instances\n",
              total_routers, total_interfaces, total_instances);
  return 0;
}
