// Reachability-engine benchmarks: the naïve full-rescan fixpoint vs the
// semi-naïve delta-propagation engine (DESIGN.md §9) at three scales, plus
// the parallel what-if sweep built on top of the faster core. The
// differential test suite (reachability_differential_test) proves the two
// engines produce identical outputs; these benchmarks measure the gap —
// EXPERIMENTS.md records the headline numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "perf_main.h"

#include "analysis/reachability.h"
#include "analysis/whatif.h"
#include "graph/instances.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;
using Engine = analysis::ReachabilityAnalysis::Engine;

struct Workload {
  std::string name;
  model::Network network;
  graph::InstanceSet instances;
  analysis::ReachabilityAnalysis::Options options;
};

Workload make_workload(std::string name, const synth::SynthNetwork& net,
                       std::vector<ip::Prefix> external = {}) {
  auto network = model::Network::build(synth::reparse(net.configs));
  auto instances = graph::compute_instances(network);
  Workload w{std::move(name), std::move(network), std::move(instances), {}};
  w.options.external_prefixes = std::move(external);
  return w;
}

// scale 0: the 15-router net15 case study; scale 1: a ~90-router managed
// enterprise; scale 2: a fleet-scale managed enterprise (8 regions x 40
// spokes). Built once and shared across benchmarks.
const Workload& workload(std::int64_t scale) {
  static const std::vector<Workload>* all = [] {
    auto* w = new std::vector<Workload>;
    {
      const auto plan = synth::net15_plan();
      w->push_back(make_workload(
          "net15", synth::make_net15(),
          {plan.ab0, plan.external_left, plan.external_right}));
    }
    {
      synth::ManagedEnterpriseParams p;
      p.seed = 7;
      p.regions = 4;
      p.spokes_per_region = 20;
      p.ebgp_spoke_rate = 0.15;
      w->push_back(make_workload("managed", synth::make_managed_enterprise(p)));
    }
    {
      synth::ManagedEnterpriseParams p;
      p.seed = 7;
      p.regions = 8;
      p.spokes_per_region = 40;
      p.ebgp_spoke_rate = 0.15;
      w->push_back(make_workload("fleet", synth::make_managed_enterprise(p)));
    }
    return w;
  }();
  return (*all)[static_cast<std::size_t>(scale)];
}

void run_fixpoint(benchmark::State& state, Engine engine) {
  const Workload& w = workload(state.range(0));
  auto options = w.options;
  options.engine = engine;
  std::size_t total_routes = 0;
  for (auto _ : state) {
    const auto reach =
        analysis::ReachabilityAnalysis::run(w.network, w.instances, options);
    total_routes = 0;
    for (std::uint32_t i = 0; i < w.instances.instances.size(); ++i) {
      total_routes += reach.instance_routes(i).size();
    }
    benchmark::DoNotOptimize(total_routes);
  }
  // routes/sec: fixpoint output routes per wall-second, the engines' common
  // denominator across scales.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total_routes));
  state.SetLabel(w.name);
  state.counters["routers"] = static_cast<double>(w.network.router_count());
  state.counters["routes"] = static_cast<double>(total_routes);
}

void BM_Fixpoint_Naive(benchmark::State& state) {
  run_fixpoint(state, Engine::kNaive);
}
BENCHMARK(BM_Fixpoint_Naive)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_Fixpoint_SemiNaive(benchmark::State& state) {
  run_fixpoint(state, Engine::kSemiNaive);
}
BENCHMARK(BM_Fixpoint_SemiNaive)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// The §8.1 what-if sweep: one degraded-network fixpoint per single-failure
// scenario, fanned out on the thread pool (results identical at any thread
// count — the differential suite checks). Arg = thread count.
void BM_WhatIfSweep(benchmark::State& state) {
  const Workload& w = workload(1);
  const auto graph = graph::InstanceGraph::build(w.network);
  auto scenarios = analysis::single_failure_scenarios(w.network, graph);
  if (scenarios.empty()) {
    scenarios.push_back({w.network.routers()[0].hostname, {0}});
  }
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::sweep_failure_scenarios(
        w.network, w.instances, scenarios, w.options, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(scenarios.size()));
  state.counters["scenarios"] = static_cast<double>(scenarios.size());
  state.counters["threads"] = static_cast<double>(pool.size());
  state.SetLabel(w.name);
}
BENCHMARK(BM_WhatIfSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

RD_PERF_MAIN
