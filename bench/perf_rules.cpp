// Design-rule engine benchmarks: whole-registry runs (serial and on a
// pool) plus one timer per registered rule, so a regression in a single
// rule's cost is visible in isolation. The per-rule wall times the engine
// itself records (`RuleEngine::Result::timings`) are what `rdlint
// --timings` prints; BM_RuleEngine/rule/* cross-checks them under the
// benchmark harness's statistics.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "perf_main.h"

#include "analysis/dataflow.h"
#include "analysis/rules.h"
#include "config/parser.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

model::Network managed_network(std::uint32_t spokes_per_region) {
  synth::ManagedEnterpriseParams p;
  p.seed = 7;
  p.regions = 4;
  p.spokes_per_region = spokes_per_region;
  p.ebgp_spoke_rate = 0.15;
  std::vector<config::ParseResult> parses;
  for (const auto& cfg : synth::make_managed_enterprise(p).configs) {
    parses.push_back(config::parse_config(config::write_config(cfg)));
  }
  return model::Network::build_parsed(std::move(parses));
}

void BM_RuleEngine_Serial(benchmark::State& state) {
  const auto network =
      managed_network(static_cast<std::uint32_t>(state.range(0)));
  const auto graph = graph::InstanceGraph::build(network);
  const auto engine = analysis::RuleEngine::with_default_rules();
  std::size_t findings = 0;
  for (auto _ : state) {
    auto result = engine.run(network, graph);
    findings = result.findings.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["findings"] = static_cast<double>(findings);
}
BENCHMARK(BM_RuleEngine_Serial)->Arg(8)->Arg(24);

void BM_RuleEngine_Pool(benchmark::State& state) {
  const auto network = managed_network(16);
  const auto graph = graph::InstanceGraph::build(network);
  const auto engine = analysis::RuleEngine::with_default_rules();
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = engine.run(network, graph, pool);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RuleEngine_Pool)->Arg(1)->Arg(2)->Arg(4);

// One benchmark per registered rule, named by rule id, so `--benchmark_
// filter=BM_RuleEngine/rule/RD04` isolates the cross-router rules. The
// instance graph is prebuilt; each iteration pays only the rule body.
void BM_RuleEngine_Rule(benchmark::State& state, const std::string& rule_id) {
  static const auto network = managed_network(16);
  static const auto graph = graph::InstanceGraph::build(network);
  static const auto engine = analysis::RuleEngine::with_default_rules();
  const analysis::RuleEngine::Rule* rule = nullptr;
  for (const auto& candidate : engine.rules()) {
    if (candidate.info.id == rule_id) rule = &candidate;
  }
  if (rule == nullptr) {
    state.SkipWithError("unknown rule id");
    return;
  }
  const analysis::RuleContext ctx{network, graph, engine.options()};
  std::size_t findings = 0;
  for (auto _ : state) {
    auto out = rule->fn(ctx);
    findings = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["findings"] = static_cast<double>(findings);
}

const int kRegistered = [] {
  const auto engine = analysis::RuleEngine::with_default_rules();
  for (const auto& rule : engine.rules()) {
    benchmark::RegisterBenchmark(
        ("BM_RuleEngine/rule/" + rule.info.id).c_str(), BM_RuleEngine_Rule,
        rule.info.id);
  }
  return 0;
}();

// The redistribution-safety band (RD060-RD064) in isolation at fleet tier.
// The per-rule loop above already times each body on the 16-spoke network;
// this one scales the network instead, because the dataflow rules are the
// only ones whose cost grows with the number of *instances* rather than
// routers, and the managed archetype's instance count grows with spokes.
void BM_RedistributionBand(benchmark::State& state) {
  const auto network =
      managed_network(static_cast<std::uint32_t>(state.range(0)));
  const auto graph = graph::InstanceGraph::build(network);
  const auto engine = analysis::RuleEngine::with_default_rules();
  std::vector<const analysis::RuleEngine::Rule*> band;
  for (const auto& rule : engine.rules()) {
    if (rule.info.id >= "RD060" && rule.info.id <= "RD064") {
      band.push_back(&rule);
    }
  }
  const analysis::RuleContext ctx{network, graph, engine.options()};
  std::size_t findings = 0;
  for (auto _ : state) {
    findings = 0;
    for (const auto* rule : band) {
      auto out = rule->fn(ctx);
      findings += out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.counters["findings"] = static_cast<double>(findings);
  state.counters["rules"] = static_cast<double>(band.size());
}
BENCHMARK(BM_RedistributionBand)->Arg(8)->Arg(24);

// The fixpoint engine alone: edge discovery, seeding, and iteration to
// convergence. This is the fixed cost RD060 and RD062 each pay before
// their rule logic runs.
void BM_InstanceDataflow(benchmark::State& state) {
  const auto network =
      managed_network(static_cast<std::uint32_t>(state.range(0)));
  const auto graph = graph::InstanceGraph::build(network);
  std::size_t facts = 0;
  for (auto _ : state) {
    analysis::InstanceDataflow flow(network, graph);
    facts = flow.fact_count();
    benchmark::DoNotOptimize(flow);
  }
  state.counters["facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_InstanceDataflow)->Arg(8)->Arg(24);

}  // namespace

RD_PERF_MAIN
