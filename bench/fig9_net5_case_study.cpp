// Figures 9 & 10 / sections 5.1 and 6.1: the net5 case study.
//
// The paper's facts about net5: 881 routers; 14 BGP ASs all internal to the
// network; 24 routing instances ranging from 445 routers down to a single
// router; EBGP to 16 external ASs; EIGRP used as an inter-domain protocol
// between the BGP compartments; 6 redundant routers redistributing between
// the 445-router EIGRP instance and its BGP instance; and a route pathway
// for a mid-network router that crosses at least 3 layers of protocols.

#include <algorithm>
#include <cstdio>
#include <set>

#include "analysis/egress.h"
#include "analysis/vulnerability.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/table.h"

int main() {
  using namespace rd;
  std::printf(
      "==============================================================\n"
      "Figures 9-10: the net5 case study\n"
      "Reproduces: Maltz et al., SIGCOMM 2004, Figures 9, 10; sections "
      "5.1, 6.1\n"
      "==============================================================\n\n");

  const auto net5 = synth::make_net5();
  const auto network = model::Network::build(synth::reparse(net5.configs));
  const auto ig = graph::InstanceGraph::build(network);
  const auto& instances = ig.set;

  std::set<std::uint32_t> internal_ases;
  std::size_t external_sessions = 0;
  for (const auto& inst : instances.instances) {
    if (inst.bgp_as) internal_ases.insert(*inst.bgp_as);
  }
  std::set<std::uint32_t> external_peer_ases;
  for (const auto& session : network.bgp_sessions()) {
    if (session.external()) {
      ++external_sessions;
      external_peer_ases.insert(session.remote_as);
    }
  }

  util::Table facts({"fact", "measured", "paper"});
  facts.add_row({"routers",
                 util::fmt_int(static_cast<long long>(network.router_count())),
                 "881"});
  facts.add_row({"routing instances",
                 util::fmt_int(static_cast<long long>(
                     instances.instances.size())),
                 "24"});
  std::size_t largest = 0;
  std::size_t smallest = ~0ull;
  for (const auto& inst : instances.instances) {
    if (config::is_conventional_igp(inst.protocol)) {
      largest = std::max(largest, inst.router_count());
      smallest = std::min(smallest, inst.router_count());
    }
  }
  facts.add_row({"largest instance (routers)",
                 util::fmt_int(static_cast<long long>(largest)), "445"});
  facts.add_row({"smallest instance (routers)",
                 util::fmt_int(static_cast<long long>(smallest)), "1"});
  facts.add_row({"internal BGP ASs",
                 util::fmt_int(static_cast<long long>(internal_ases.size())),
                 "14"});
  facts.add_row({"external peer ASs",
                 util::fmt_int(static_cast<long long>(
                     external_peer_ases.size())),
                 "16"});
  std::printf("%s\n", facts.to_string().c_str());

  // Figure 9: the instance structure around the three large EIGRP
  // compartments.
  std::printf("routing instances by size (Figure 9's key):\n");
  std::vector<std::uint32_t> order(instances.instances.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return instances.instances[a].router_count() >
           instances.instances[b].router_count();
  });
  for (const auto i : order) {
    std::printf("  %s\n", graph::instance_label(instances, i).c_str());
  }

  // Section 5.1: "how many routers need to fail before instance 1 is
  // partitioned from instance 2?" — redundancy of the redistribution points.
  const auto redundancy =
      analysis::redistribution_redundancy(network, ig);
  std::size_t best_redundancy = 0;
  for (const auto& entry : redundancy) {
    best_redundancy =
        std::max(best_redundancy, entry.connecting_routers.size());
  }
  std::printf("\nlargest redistribution redundancy group: %zu routers "
              "(paper: 6 routers back each other up between the 445-router "
              "EIGRP instance and its BGP instance)\n",
              best_redundancy);

  // Figure 10: the pathway of a router deep inside the 445-router instance.
  std::uint32_t largest_instance = order.front();
  const auto& members = instances.instances[largest_instance].routers;
  const auto deep_router = members[members.size() / 2];
  const auto pathway = graph::compute_pathway(network, ig, deep_router);
  std::printf("route pathway of router '%s' (mid-compartment, Figure 10):\n"
              "  layers of protocols/redistribution to the external world: "
              ">= %u (paper: at least 3)\n"
              "  reaches external world: %s\n",
              network.routers()[deep_router].hostname.c_str(),
              pathway.max_depth + 1,
              pathway.reaches_external ? "yes" : "no");

  // Section 5.1's egress question: which of the 16 external peering points
  // can the deep router's compartment actually use?
  {
    const auto egress = analysis::EgressAnalysis::run(network, instances);
    const auto usable =
        egress.router_egress(network, instances, deep_router);
    std::printf("\negress points usable by '%s': %zu of %zu external "
                "peering points (the section 5.1 question: which egress "
                "will packets use?)\n",
                network.routers()[deep_router].hostname.c_str(),
                usable.size(), egress.points().size());
  }

  std::printf("\nEIGRP serves as the inter-instance glue (section 6.1): "
              "tagged redistribution avoids any network-wide IBGP mesh.\n");
  std::size_t ibgp = 0;
  for (const auto& session : network.bgp_sessions()) {
    if (!session.external() && !session.ebgp()) ++ibgp;
  }
  std::printf("IBGP sessions in net5: %zu (no full mesh; external sessions: "
              "%zu)\n",
              ibgp, external_sessions);
  return 0;
}
