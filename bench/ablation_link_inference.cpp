// Ablation (DESIGN.md §5): link inference by exact subnet match (the
// paper's §2.1 rule) vs a permissive variant that matches any interfaces
// whose configured subnets overlap. On complete data sets both find the
// same links; when configuration files are missing (the paper's §3.4
// missing-router scenario) the permissive variant starts fusing unrelated
// interfaces into false links, while the exact rule degrades gracefully —
// unmatched interfaces are simply declared external-facing.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace rd;

struct LinkCounts {
  std::size_t exact_links = 0;
  std::size_t permissive_links = 0;
  std::size_t fused_links = 0;  // permissive links merging >1 exact subnet
};

LinkCounts count_links(const model::Network& network) {
  LinkCounts counts;
  // Exact: the model's own inference.
  counts.exact_links = network.links().size();

  // Permissive: union interfaces whose subnets overlap (different masks on
  // one wire happen with misconfigured masks; a permissive matcher would
  // also fuse a /24 with every /30 carved from the same range).
  std::vector<ip::Prefix> subnets;
  for (const auto& itf : network.interfaces()) {
    if (itf.subnet && itf.subnet->length() < 32 && !itf.shutdown) {
      subnets.push_back(*itf.subnet);
    }
  }
  std::sort(subnets.begin(), subnets.end(),
            [](const ip::Prefix& a, const ip::Prefix& b) {
              if (a.network() != b.network()) return a.network() < b.network();
              return a.length() < b.length();
            });
  subnets.erase(std::unique(subnets.begin(), subnets.end()), subnets.end());
  // Sorted by network address: overlapping prefixes form runs where each
  // subnet is contained in some earlier, shorter one.
  std::size_t groups = 0;
  ip::Prefix current;
  bool have_current = false;
  std::size_t members = 0;
  for (const auto& subnet : subnets) {
    if (have_current && current.contains(subnet)) {
      ++members;
      continue;
    }
    if (have_current && members > 1) ++counts.fused_links;
    current = subnet;
    have_current = true;
    members = 1;
    ++groups;
  }
  if (have_current && members > 1) ++counts.fused_links;
  counts.permissive_links = groups;
  return counts;
}

}  // namespace

int main() {
  std::printf(
      "==============================================================\n"
      "Ablation: link inference rule vs missing configuration files\n"
      "(DESIGN.md section 5; paper sections 2.1 and 3.4)\n"
      "==============================================================\n\n");

  synth::ManagedEnterpriseParams params;
  params.seed = 11;
  params.regions = 4;
  params.spokes_per_region = 30;
  auto net = synth::make_managed_enterprise(params);

  // Inject a classic operator error on 3% of point-to-point interfaces:
  // a /30 configured with a /24 mask. The exact rule orphans those
  // interfaces (they no longer match their peer); the permissive rule
  // fuses the widened subnet with every /30 carved from the same range.
  {
    util::Rng mangle(5);
    for (auto& cfg : net.configs) {
      for (auto& itf : cfg.interfaces) {
        if (itf.address && itf.address->mask.length() == 30 &&
            mangle.chance(0.03)) {
          itf.address->mask = ip::Netmask::from_length(24);
        }
      }
    }
  }

  util::Table table({"configs dropped", "exact links", "permissive groups",
                     "fused groups", "external-facing ifaces (exact)"});
  util::Rng rng(99);
  for (const double drop : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    std::vector<config::RouterConfig> configs;
    util::Rng pick = rng.fork("drop" + std::to_string(drop));
    for (const auto& cfg : net.configs) {
      if (!pick.chance(drop)) configs.push_back(cfg);
    }
    const auto network = model::Network::build(synth::reparse(configs));
    const auto counts = count_links(network);
    std::size_t external = 0;
    for (const auto& itf : network.interfaces()) {
      external += itf.external_facing;
    }
    table.add_row(
        {util::fmt_percent(drop, 0),
         util::fmt_int(static_cast<long long>(counts.exact_links)),
         util::fmt_int(static_cast<long long>(counts.permissive_links)),
         util::fmt_int(static_cast<long long>(counts.fused_links)),
         util::fmt_int(static_cast<long long>(external))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: with missing configs the exact rule loses links but never\n"
      "invents them (the orphaned interfaces turn external-facing and feed\n"
      "the paper's missing-router heuristic); the permissive rule fuses\n"
      "distinct subnets into false multi-subnet links wherever masks vary.\n");
  return 0;
}
