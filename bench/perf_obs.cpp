// Observability overhead benchmarks (DESIGN.md §10): the disabled paths
// must be near-free (one relaxed atomic load), and the enabled paths must
// stay cheap enough that --trace on a real audit is usable. The headline
// number is the pipeline pair: BM_PipelineTracingOff vs
// BM_PipelineTracingOn bound the cost of the instrumentation that ships in
// the hot layers (the acceptance bar is <2% with tracing disabled, which
// BM_PipelineTracingOff vs the perf_pipeline baseline holds).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "perf_main.h"

#include "config/writer.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"

namespace {

using namespace rd;

std::vector<std::string> managed_texts() {
  synth::ManagedEnterpriseParams p;
  p.seed = 7;
  p.regions = 3;
  p.spokes_per_region = 12;
  std::vector<std::string> texts;
  for (const auto& cfg : synth::make_managed_enterprise(p).configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

void disarm() {
  obs::Registry::instance().set_tracing(false);
  obs::Registry::instance().set_counting(false);
  obs::Registry::instance().reset();
}

// --- span -------------------------------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  disarm();
  for (auto _ : state) {
    obs::Span span("bench.span", "bench");
    benchmark::DoNotOptimize(span.armed());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  disarm();
  obs::Registry::instance().set_tracing(true);
  for (auto _ : state) {
    obs::Span span("bench.span", "bench");
    benchmark::DoNotOptimize(span.armed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  disarm();
}
BENCHMARK(BM_SpanEnabled);

// --- counter ----------------------------------------------------------------

void BM_CounterDisabled(benchmark::State& state) {
  disarm();
  auto& counter = obs::counter("bench.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  disarm();
  obs::Registry::instance().set_counting(true);
  auto& counter = obs::counter("bench.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(&counter);
  }
  disarm();
}
BENCHMARK(BM_CounterEnabled);

// --- whole pipeline ---------------------------------------------------------

void BM_PipelineTracingOff(benchmark::State& state) {
  disarm();
  const auto texts = managed_texts();
  for (auto _ : state) {
    const auto reports = pipeline::analyze_fleet_serial({{"bench", texts}});
    benchmark::DoNotOptimize(reports.front().json.size());
  }
}
BENCHMARK(BM_PipelineTracingOff)->Unit(benchmark::kMillisecond);

void BM_PipelineTracingOn(benchmark::State& state) {
  disarm();
  obs::Registry::instance().set_tracing(true);
  obs::Registry::instance().set_counting(true);
  const auto texts = managed_texts();
  for (auto _ : state) {
    // Reset per iteration so the event buffer doesn't grow without bound
    // across measurement repetitions.
    obs::Registry::instance().reset();
    const auto reports = pipeline::analyze_fleet_serial({{"bench", texts}});
    benchmark::DoNotOptimize(reports.front().json.size());
  }
  state.counters["events"] = static_cast<double>(
      obs::Registry::instance().event_count());
  disarm();
}
BENCHMARK(BM_PipelineTracingOn)->Unit(benchmark::kMillisecond);

// --- export -----------------------------------------------------------------

void BM_TraceExport(benchmark::State& state) {
  disarm();
  obs::Registry::instance().set_tracing(true);
  for (int i = 0; i < 10000; ++i) {
    obs::Span span("bench.export", "bench");
    span.arg("i", static_cast<std::uint64_t>(i));
  }
  obs::Registry::instance().set_tracing(false);
  for (auto _ : state) {
    const auto json = obs::Registry::instance().trace_json();
    benchmark::DoNotOptimize(json.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * obs::Registry::instance().trace_json().size()));
  disarm();
}
BENCHMARK(BM_TraceExport)->Unit(benchmark::kMillisecond);

}  // namespace

RD_PERF_MAIN
