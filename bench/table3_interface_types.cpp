// Table 3: types and frequencies of the interfaces found across the 31
// networks (96,487 interfaces on 8,035 devices in the paper, Serial by far
// the most common), plus the 528-unnumbered-interfaces aside of section 2.1
// and the section 7.3 observations (POS concentrated in three backbones,
// the fourth backbone on HSSI/ATM).

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/census.h"
#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Table 3: interface composition of the 31 networks",
                      "Maltz et al., SIGCOMM 2004, Table 3 / section 7.3");

  std::map<std::string, std::size_t> merged;
  std::size_t unnumbered = 0;
  std::size_t total_interfaces = 0;
  std::size_t pos_in_backbones = 0;
  std::size_t pos_total = 0;
  // §7.3's predictor: "the interfaces used in a network are a relatively
  // good predictor of the type of the network" — long-haul technology
  // (POS/Hssi) heavy networks should be the backbones.
  std::size_t predictor_hits = 0;
  std::size_t predictor_total = 0;
  for (const auto& entry : bench::analyzed_fleet()) {
    const auto census = analysis::interface_census(entry.network);
    std::size_t pos_here = 0;
    std::size_t hssi_here = 0;
    for (const auto& [type, count] : census) {
      merged[type] += count;
      total_interfaces += count;
      if (type == "POS") {
        pos_total += count;
        pos_here = count;
        if (entry.archetype == "backbone") pos_in_backbones += count;
      }
      if (type == "Hssi") hssi_here = count;
    }
    unnumbered += analysis::unnumbered_interface_count(entry.network);
    const bool predicted_backbone = pos_here + hssi_here > 100;
    const bool is_backbone = entry.archetype == "backbone";
    ++predictor_total;
    if (predicted_backbone == is_backbone) ++predictor_hits;
  }

  // Paper's Table 3 counts for side-by-side comparison.
  const std::map<std::string, long long> paper{
      {"Null", 2},        {"Multilink", 4},      {"Fddi", 6},
      {"CBR", 14},        {"Channel", 51},       {"Virtual", 83},
      {"Async", 90},      {"Port", 151},         {"Tunnel", 202},
      {"BRI", 1077},      {"Dialer", 1296},      {"TokenRing", 1344},
      {"GigabitEthernet", 2171},                 {"Hssi", 2375},
      {"Ethernet", 3685}, {"POS", 3937},         {"ATM", 6242},
      {"FastEthernet", 20420},                   {"Serial", 53337},
  };

  // Sort ascending by measured count, like the paper's table.
  std::vector<std::pair<std::string, std::size_t>> rows(merged.begin(),
                                                        merged.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  util::Table table({"type", "count (measured)", "count (paper)"});
  for (const auto& [type, count] : rows) {
    const auto it = paper.find(type);
    table.add_row({type, util::fmt_int(static_cast<long long>(count)),
                   it == paper.end() ? "-" : util::fmt_int(it->second)});
  }
  table.add_row({"total", util::fmt_int(static_cast<long long>(
                              total_interfaces)),
                 util::fmt_int(96487)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("unnumbered interfaces: %zu (paper: 528 of 96,487)\n",
              unnumbered);
  std::printf("POS interfaces inside backbone networks: %zu of %zu "
              "(paper: POS heavily used in three of four backbones)\n",
              pos_in_backbones, pos_total);
  std::printf("interface-mix predictor (long-haul POS/Hssi > 100 -> "
              "backbone): %zu of %zu networks classified correctly "
              "(paper section 7.3: interfaces are 'a relatively good "
              "predictor' of network type)\n",
              predictor_hits, predictor_total);
  std::printf("\nShape check: Serial most common, FastEthernet second,\n"
              "ATM/POS next, long tail of rare types.\n");
  return 0;
}
