// Figures 5, 6, 7: the section 2/3 worked example — a small enterprise
// (R1-R3) attached to a transit backbone (R4-R6) that also peers with an
// external router (R7). This binary builds the example from configuration
// text and prints the routing process graph, the routing instance graph, and
// the route pathway graphs for R1 (enterprise pattern) and R5 (backbone
// pattern), including DOT renderings of each figure.

#include <cstdio>
#include <string>
#include <vector>

#include "config/parser.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "graph/process_graph.h"
#include "model/network.h"

namespace {

std::vector<rd::config::RouterConfig> example_configs() {
  // Mirrors tests/graph_test.cpp's figure1_network; kept textual here so the
  // bench exercises the parser too.
  const std::vector<std::string> texts{
      "hostname R1\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.1 "
      "255.255.255.252\n"
      "router ospf 128\n network 10.1.0.0 0.0.255.255 area 0\n",

      "hostname R2\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.2 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.1.0.5 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.9.0.1 "
      "255.255.255.252\n"
      "router ospf 128\n"
      " network 10.1.0.0 0.0.255.255 area 0\n"
      " redistribute bgp 64780 metric 1 subnets route-map INJECT\n"
      "router bgp 64780\n"
      " neighbor 10.9.0.2 remote-as 12762\n"
      " redistribute ospf 128 route-map EXPORT\n"
      "route-map INJECT permit 10\nroute-map EXPORT permit 10\n",

      "hostname R3\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.6 "
      "255.255.255.252\n"
      "router ospf 128\n network 10.1.0.0 0.0.255.255 area 0\n",

      "hostname R4\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.1 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.2.0.9 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.2 remote-as 12762\n"
      " neighbor 10.2.0.10 remote-as 12762\n",

      "hostname R5\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.2 "
      "255.255.255.252\n"
      "interface Serial0/2 point-to-point\n ip address 10.2.0.5 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.99.0.1 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.1 remote-as 12762\n"
      " neighbor 10.2.0.6 remote-as 12762\n"
      " neighbor 10.99.0.2 remote-as 7018\n",

      "hostname R6\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.6 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.2.0.10 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.9.0.2 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.5 remote-as 12762\n"
      " neighbor 10.2.0.9 remote-as 12762\n"
      " neighbor 10.9.0.1 remote-as 64780\n",
  };
  std::vector<rd::config::RouterConfig> configs;
  for (const auto& text : texts) {
    configs.push_back(rd::config::parse_config(text, "example").config);
  }
  return configs;
}

std::uint32_t router_named(const rd::model::Network& net,
                           std::string_view name) {
  for (std::uint32_t r = 0; r < net.router_count(); ++r) {
    if (net.routers()[r].hostname == name) return r;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace rd;
  std::printf(
      "==============================================================\n"
      "Figures 5-7: the worked example (enterprise R1-R3 + backbone R4-R6)\n"
      "Reproduces: Maltz et al., SIGCOMM 2004, Figures 1, 5, 6, 7\n"
      "==============================================================\n\n");

  const auto network = model::Network::build(example_configs());
  const auto pg = graph::ProcessGraph::build(network);
  const auto ig = graph::InstanceGraph::build(network);

  std::printf("routing process graph: %zu RIB vertices, %zu edges "
              "(paper Figure 5)\n",
              pg.vertices().size(), pg.edges().size());
  std::printf("routing instances (paper Figure 6):\n");
  for (std::uint32_t i = 0; i < ig.set.instances.size(); ++i) {
    std::printf("  %s\n", graph::instance_label(ig.set, i).c_str());
  }
  std::printf("instance-graph edges: %zu (redistribution on R2, the "
              "EBGP session R2-R6, and the external peering at R5)\n\n",
              ig.edges.size());

  const auto pathway_r1 =
      graph::compute_pathway(network, ig, router_named(network, "R1"));
  std::printf("route pathway for R1 (paper Figure 7a, enterprise pattern):\n"
              "  instances on path: %zu, layers to the external world: %u, "
              "reaches external: %s\n",
              pathway_r1.nodes.size(), pathway_r1.max_depth + 1,
              pathway_r1.reaches_external ? "yes" : "no");
  const auto pathway_r5 =
      graph::compute_pathway(network, ig, router_named(network, "R5"));
  std::printf("route pathway for R5 (paper Figure 7b, backbone pattern):\n"
              "  instances on path: %zu, external routes arrive directly "
              "into the router's own BGP instance: %s\n\n",
              pathway_r5.nodes.size(),
              pathway_r5.reaches_external ? "yes" : "no");

  std::printf("--- DOT: routing process graph (Figure 5) ---\n%s\n",
              graph::to_dot(network, pg).c_str());
  std::printf("--- DOT: routing instance graph (Figure 6) ---\n%s\n",
              graph::to_dot(network, ig).c_str());
  std::printf("--- DOT: route pathway of R1 (Figure 7a) ---\n%s\n",
              graph::to_dot(network, ig, pathway_r1).c_str());
  std::printf("--- DOT: route pathway of R5 (Figure 7b) ---\n%s\n",
              graph::to_dot(network, ig, pathway_r5).c_str());
  return 0;
}
