// The rdd value proposition, measured: a one-shot CLI invocation pays
// parse + model build + instance graph before the first byte of analysis,
// while a resident daemon pays it once and amortizes to zero. These
// benchmarks pin the cold/warm ratio EXPERIMENTS.md reports (the
// acceptance bar is >= 10x on the audit path) and the store-assisted
// restart cost in between (decode beats reparse, but is not free).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "perf_main.h"

#include "config/writer.h"
#include "pipeline/disk_store.h"
#include "pipeline/parse_cache.h"
#include "pipeline/series.h"
#include "serve/protocol.h"
#include "serve/queries.h"
#include "serve/service.h"
#include "synth/archetypes.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

struct BenchFleet {
  std::vector<std::string> texts;
  std::vector<std::string> names;
};

const BenchFleet& bench_fleet() {
  static const BenchFleet* fleet = [] {
    synth::ManagedEnterpriseParams p;
    p.seed = 11;
    p.regions = 3;
    p.spokes_per_region = 12;
    p.ebgp_spoke_rate = 0.2;
    auto* f = new BenchFleet;
    std::size_t i = 0;
    for (const auto& cfg : synth::make_managed_enterprise(p).configs) {
      f->texts.push_back(config::write_config(cfg));
      f->names.push_back("config" + std::to_string(i++) + ".txt");
    }
    return f;
  }();
  return *fleet;
}

// Cold path: everything a one-shot `audit_network DIR` does after argv
// parsing — parse every config, build the model and instance graph, run
// the audit. This is the per-invocation price the daemon eliminates.
void BM_ColdOneShotAudit(benchmark::State& state) {
  const auto& fleet = bench_fleet();
  util::ThreadPool pool(1);
  for (auto _ : state) {
    pipeline::ParseCache cache;  // empty every iteration: a fresh process
    auto network =
        pipeline::build_network_cached(fleet.texts, fleet.names, cache, pool);
    const auto graph = graph::InstanceGraph::build(network);
    benchmark::DoNotOptimize(serve::audit_report(network, graph, pool));
  }
  state.counters["routers"] = static_cast<double>(fleet.texts.size());
}
BENCHMARK(BM_ColdOneShotAudit);

// Store-assisted cold start: the parse phase decodes from the persistent
// store instead of reparsing — what a daemon restart (or a second daemon
// sharing the store) pays per config.
void BM_StoreAssistedAudit(benchmark::State& state) {
  const auto& fleet = bench_fleet();
  const auto dir = std::filesystem::temp_directory_path() / "rd_perf_store";
  std::filesystem::remove_all(dir);
  util::ThreadPool pool(1);
  {
    pipeline::DiskStore store(dir);
    pipeline::ParseCache warmer;
    warmer.attach_store(&store);
    for (const auto& text : fleet.texts) warmer.parse(text);
  }
  for (auto _ : state) {
    pipeline::DiskStore store(dir);
    pipeline::ParseCache cache;
    cache.attach_store(&store);
    auto network =
        pipeline::build_network_cached(fleet.texts, fleet.names, cache, pool);
    const auto graph = graph::InstanceGraph::build(network);
    benchmark::DoNotOptimize(serve::audit_report(network, graph, pool));
  }
  state.counters["routers"] = static_cast<double>(fleet.texts.size());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreAssistedAudit);

// Warm path: what one rdctl request costs a running daemon — Service
// dispatch over the resident model. The cold/warm quotient is the
// headline number.
void BM_WarmResidentQuery(benchmark::State& state) {
  const auto& fleet = bench_fleet();
  const auto dir =
      std::filesystem::temp_directory_path() / "rd_perf_serve_fleet";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < fleet.texts.size(); ++i) {
    std::FILE* f =
        std::fopen((dir / fleet.names[i]).string().c_str(), "w");
    std::fwrite(fleet.texts[i].data(), 1, fleet.texts[i].size(), f);
    std::fclose(f);
  }
  serve::Service::Options options;
  options.threads = 1;
  serve::Service service(options);
  service.add_fleet("bench", dir.string());

  const char* op = state.range(0) == 0 ? "audit" : "rdlint";
  serve::Request request;
  request.op = op;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle(request));
  }
  state.SetLabel(op);
  state.counters["routers"] = static_cast<double>(fleet.texts.size());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WarmResidentQuery)->Arg(0)->Arg(1);

// Protocol overhead in isolation: encode + frame + decode of a typical
// response, i.e. the wire tax rdctl adds on top of Service::handle.
void BM_FrameEncodeDecode(benchmark::State& state) {
  serve::Response response;
  response.output = std::string(static_cast<std::size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    const auto payload = serve::encode_response(response);
    benchmark::DoNotOptimize(serve::decode_response(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(1024)->Arg(65536);

}  // namespace

RD_PERF_MAIN
