// Symbolic header-space benchmarks (DESIGN.md §11): predicate-algebra
// throughput on real ACL shapes, full ingress/egress pair-predicate
// construction, and intent verification. The differential suite
// (symbolic_differential_test) proves the predicates agree with the
// concrete probe engine; these benchmarks track the cost of exactness.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "perf_main.h"

#include "analysis/header_space.h"
#include "analysis/reachability.h"
#include "config/parser.h"
#include "graph/instances.h"
#include "model/header_predicate.h"
#include "model/network.h"
#include "model/policy.h"
#include "synth/archetypes.h"
#include "synth/emit.h"

namespace {

using namespace rd;

struct Workload {
  model::Network network;
  graph::InstanceSet instances;
  analysis::ReachabilityAnalysis routes;
};

// A ~90-router managed enterprise, with edge filters and route policy —
// the same shape perf_reachability uses at scale 1. Built once.
const Workload& workload() {
  static const Workload* w = [] {
    synth::ManagedEnterpriseParams p;
    p.seed = 7;
    p.regions = 4;
    p.spokes_per_region = 20;
    p.ebgp_spoke_rate = 0.15;
    auto network = model::Network::build(
        synth::reparse(synth::make_managed_enterprise(p).configs));
    auto instances = graph::compute_instances(network);
    auto routes = analysis::ReachabilityAnalysis::run(network, instances);
    return new Workload{std::move(network), std::move(instances),
                        std::move(routes)};
  }();
  return *w;
}

// ACL lowering + self-equivalence: the subtract/emptiness path on every
// access list in the workload, the inner loop of RD050 and of equivalence
// queries.
void BM_AclSelfEquivalence(benchmark::State& state) {
  const auto& w = workload();
  std::size_t acls = 0;
  for (auto _ : state) {
    acls = 0;
    for (const auto& cfg : w.network.routers()) {
      for (const auto& acl : cfg.access_lists) {
        model::ProtocolDomain domain;
        const model::SymbolicPacketFilter filter(acl, domain);
        model::ProtocolDomain domain_b;
        const model::SymbolicPacketFilter again(acl, domain_b);
        benchmark::DoNotOptimize(
            filter.permitted().equivalent(again.permitted()));
        ++acls;
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(acls));
  state.counters["acls"] = static_cast<double>(acls);
}
BENCHMARK(BM_AclSelfEquivalence)->Unit(benchmark::kMillisecond);

// Pair-predicate construction: a fresh HeaderSpace computing the exact
// packet set for the first N ingress interfaces against one egress.
void BM_PairPredicates(benchmark::State& state) {
  const auto& w = workload();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t atoms = 0;
  for (auto _ : state) {
    analysis::HeaderSpace space(w.network, w.instances, w.routes);
    atoms = 0;
    const auto count = std::min(n, w.network.interfaces().size());
    for (std::size_t i = 0; i + 1 < count; ++i) {
      atoms += space
                   .pair_predicate(static_cast<model::InterfaceId>(i),
                                   static_cast<model::InterfaceId>(i + 1))
                   .atom_count();
    }
    benchmark::DoNotOptimize(atoms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_PairPredicates)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// Intent verification end-to-end on a small filtered fixture: parse,
// model, fixpoint, verify — the RD052 hot path.
void BM_IntentVerification(benchmark::State& state) {
  const std::string text =
      "hostname edge\n"
      "! rd-intent deny 10.1.0.0/24 10.3.0.0/24\n"
      "! rd-intent allow 10.1.0.0/24 10.2.0.0/24 udp 53\n"
      "interface FastEthernet0/0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface FastEthernet0/1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "interface FastEthernet0/2\n"
      " ip address 10.3.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 deny ip any 10.3.0.0 0.0.0.255\n"
      "access-list 101 deny tcp any any eq 1433\n"
      "access-list 101 permit ip any any\n";
  auto network =
      model::Network::build({config::parse_config(text, "edge.cfg").config});
  const auto instances = graph::compute_instances(network);
  const auto routes = analysis::ReachabilityAnalysis::run(network, instances);
  const auto intents = analysis::collect_intents(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::verify_intents(network, instances, routes, intents));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(intents.size()));
}
BENCHMARK(BM_IntentVerification)->Unit(benchmark::kMicrosecond);

}  // namespace

RD_PERF_MAIN
