// Table 2 + Figure 12: the net15 case study. Policies A1-A5 mention address
// blocks AB0-AB4; the reachability analysis derives the paper's three
// observations: (1) no Internet-at-large reachability (no default route
// admitted); (2) the two sites cannot reach each other at all (the policy
// intersections are empty); (3) the host blocks AB2/AB4 are announced
// outward, and the ingress filters bound the OSPF route load.

#include <cstdio>

#include "analysis/reachability.h"
#include "bench_common.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/table.h"

int main() {
  using namespace rd;
  bench::print_header("Table 2 / Figure 12: the net15 reachability design",
                      "Maltz et al., SIGCOMM 2004, Table 2, Figure 12, "
                      "section 6.2");

  const auto net15 = synth::make_net15();
  const auto plan = synth::net15_plan();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);

  std::printf("net15: %zu routers, %zu routing instances (paper: 79 routers, "
              "6 instances)\n\n",
              network.router_count(), instances.instances.size());

  // Table 2: address blocks mentioned by the redistribution policies.
  util::Table policies({"policy", "contents", "role"});
  policies.add_row({"A1", "AB0, AB1", "inbound, left site"});
  policies.add_row({"A2", "AB2", "outbound, left site"});
  policies.add_row({"A3", "AB0, AB3", "inbound, right site"});
  policies.add_row({"A4", "AB4", "outbound, right site"});
  policies.add_row({"A5", "AB0", "inbound guard, right site"});
  std::printf("%s\n", policies.to_string().c_str());

  util::Table blocks({"block", "prefix", "meaning"});
  blocks.add_row({"AB0", plan.ab0.to_string(), "shared external services"});
  blocks.add_row({"AB1", plan.ab1.to_string(), "left infrastructure"});
  blocks.add_row({"AB2", plan.ab2.to_string(), "left hosts"});
  blocks.add_row({"AB3", plan.ab3.to_string(), "right infrastructure"});
  blocks.add_row({"AB4", plan.ab4.to_string(), "right hosts"});
  std::printf("%s\n", blocks.to_string().c_str());

  analysis::ReachabilityAnalysis::Options options;
  options.external_prefixes = {plan.ab0, plan.external_left,
                               plan.external_right};
  const auto reach =
      analysis::ReachabilityAnalysis::run(network, instances, options);

  // Locate the two OSPF site instances by their covered host blocks.
  auto ospf_instance_covering = [&](const ip::Prefix& block) {
    for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
      if (instances.instances[i].protocol != config::RoutingProtocol::kOspf) {
        continue;
      }
      for (const auto p : instances.instances[i].processes) {
        for (const auto itf : network.processes()[p].covered_interfaces) {
          const auto& subnet = network.interfaces()[itf].subnet;
          if (subnet && block.contains(*subnet)) return i;
        }
      }
    }
    return ~0u;
  };
  const auto left = ospf_instance_covering(plan.ab2);
  const auto right = ospf_instance_covering(plan.ab4);
  const auto ab2_host = ip::Ipv4Address(plan.ab2.network().value() + 257);
  const auto ab4_host = ip::Ipv4Address(plan.ab4.network().value() + 257);
  const auto ab0_host = ip::Ipv4Address(plan.ab0.network().value() + 1);

  auto verdict = [](bool measured, bool paper) {
    return std::string(measured ? "yes" : "no") +
           (measured == paper ? "  (matches paper)" : "  (MISMATCH)");
  };

  util::Table results({"question", "answer"});
  results.add_row({"left site reaches Internet at large",
                   verdict(reach.instance_reaches_internet(left), false)});
  results.add_row({"right site reaches Internet at large",
                   verdict(reach.instance_reaches_internet(right), false)});
  results.add_row({"left site reaches shared services AB0",
                   verdict(reach.instance_has_route_to(left, ab0_host),
                           true)});
  results.add_row({"right site reaches shared services AB0",
                   verdict(reach.instance_has_route_to(right, ab0_host),
                           true)});
  results.add_row({"AB2 hosts can reach AB4 hosts",
                   verdict(reach.instance_has_route_to(left, ab4_host),
                           false)});
  results.add_row({"AB4 hosts can reach AB2 hosts",
                   verdict(reach.instance_has_route_to(right, ab2_host),
                           false)});
  bool ab2_out = false;
  bool ab4_out = false;
  for (const auto& route : reach.announced_externally()) {
    if (plan.ab2.contains(route.prefix)) ab2_out = true;
    if (plan.ab4.contains(route.prefix)) ab4_out = true;
  }
  results.add_row({"AB2 announced to the public ASs", verdict(ab2_out, true)});
  results.add_row({"AB4 announced to the public ASs", verdict(ab4_out, true)});
  std::printf("%s\n", results.to_string().c_str());

  std::printf("external routes admitted into the left OSPF instance: %zu\n",
              reach.external_route_count(left));
  std::printf("external routes admitted into the right OSPF instance: %zu\n",
              reach.external_route_count(right));
  std::printf("(paper section 6.2: the ingress filters A1/A3/A5 bound the\n"
              "maximum OSPF load; in total two /16s and a handful of more\n"
              "specific blocks are admitted, and no default route)\n");
  return 0;
}
