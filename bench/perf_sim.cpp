// Convergence-simulator performance tiers (DESIGN.md §15): one scenario on
// the demo enterprise (the latency a single rdctl `simulate` pays), the
// event-queue hot path in isolation, and the scenario sweep's scaling with
// thread count. EXPERIMENTS.md's fleet distributions come from
// `simulate_convergence --fleet`; these benchmarks keep the per-scenario
// cost visible so a protocol-engine regression shows up as a number, not
// as a CI timeout.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "perf_main.h"

#include "graph/instances.h"
#include "model/network.h"
#include "sim/event_queue.h"
#include "sim/sweep.h"
#include "synth/archetypes.h"
#include "util/thread_pool.h"

namespace {

using namespace rd;

struct DemoNet {
  model::Network network;
  graph::InstanceGraph graph;
};

const DemoNet& demo_net() {
  static const DemoNet* net = [] {
    synth::TextbookEnterpriseParams params;
    params.routers = 24;
    params.border_routers = 2;
    params.igp_instances = 2;
    auto network =
        model::Network::build(synth::make_textbook_enterprise(params).configs);
    auto graph = graph::InstanceGraph::build(network);
    return new DemoNet{std::move(network), std::move(graph)};
  }();
  return *net;
}

// One full flap scenario, cross-check included: what each entry in a sweep
// costs end to end (seeded event loop + two static fixpoints to diff
// against).
void BM_SimScenario(benchmark::State& state) {
  const auto& net = demo_net();
  const auto scenarios = sim::flap_scenarios(net.network, net.graph, 1);
  util::ThreadPool pool(1);
  sim::SweepOptions options;
  options.max_scenarios = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_scenarios(
        net.network, net.graph.set, scenarios, options, pool));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios.size());
}
BENCHMARK(BM_SimScenario);

// The whole sweep at 1 vs 4 threads — scenario-level parallelism is the
// only concurrency the simulator has, so this quotient is its scaling
// story.
void BM_SimSweep(benchmark::State& state) {
  const auto& net = demo_net();
  const auto scenarios = sim::flap_scenarios(net.network, net.graph, 0);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  sim::SweepOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::sweep_scenarios(
        net.network, net.graph.set, scenarios, options, pool));
  }
  state.counters["scenarios"] = static_cast<double>(scenarios.size());
}
BENCHMARK(BM_SimSweep)->Arg(1)->Arg(4);

// The event queue alone: push/pop of a payload-free event mix with heavy
// same-timestamp ties — the structure every simulated millisecond funnels
// through.
void BM_SimEventQueue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      sim::Event event;
      event.at_ms = (i * 7) % 64;  // many ties: seq ordering does real work
      event.instance = static_cast<std::uint32_t>(i);
      queue.push(event);
    }
    std::uint64_t sum = 0;
    while (!queue.empty()) sum += queue.pop().at_ms;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimEventQueue)->Arg(1024)->Arg(65536);

}  // namespace

RD_PERF_MAIN
