// Differential tests for the reachability engines: the semi-naïve
// delta-propagation engine must produce results identical to the naïve
// full-rescan oracle (`Engine::kNaive`) on every synthetic archetype, with
// any endpoint subset, at any thread count, and under randomized edge
// orderings. The propagation rules are monotone, so the fixpoint is
// confluent — identical outputs are a theorem the suite checks empirically.
//
// Stress volume is dialable: RD_FUZZ_SEEDS controls how many shuffle seeds
// the confluence test tries (default 8).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/egress.h"
#include "analysis/reachability.h"
#include "analysis/whatif.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace rd::analysis {
namespace {

using Engine = ReachabilityAnalysis::Engine;
using Options = ReachabilityAnalysis::Options;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(util::trim(raw), parsed) || parsed == 0) {
    return fallback;
  }
  return parsed;
}

struct Case {
  std::string name;
  model::Network network;
  graph::InstanceSet instances;
  Options options;  // external prefixes etc.; engine overridden per run
};

Case make_case(std::string name, const synth::SynthNetwork& net,
               std::vector<ip::Prefix> external = {}) {
  auto network = model::Network::build(synth::reparse(net.configs));
  auto instances = graph::compute_instances(network);
  Case c{std::move(name), std::move(network), std::move(instances), {}};
  c.options.external_prefixes = std::move(external);
  return c;
}

// One network per archetype family, sized for test-time budgets (the same
// spread the fleet benchmarks use).
std::vector<Case> differential_cases() {
  std::vector<Case> cases;
  cases.push_back(make_case("net5", synth::make_net5()));
  {
    const auto plan = synth::net15_plan();
    cases.push_back(make_case(
        "net15", synth::make_net15(),
        {plan.ab0, plan.external_left, plan.external_right}));
  }
  {
    synth::BackboneParams p;
    p.core_routers = 4;
    p.access_routers = 16;
    p.external_peers = 30;
    cases.push_back(make_case("backbone", synth::make_backbone(p)));
  }
  {
    synth::TextbookEnterpriseParams p;
    p.routers = 24;
    cases.push_back(
        make_case("textbook", synth::make_textbook_enterprise(p)));
  }
  {
    synth::Tier2Params p;
    p.core_routers = 4;
    p.edge_routers = 10;
    cases.push_back(make_case("tier2", synth::make_tier2_isp(p)));
  }
  {
    synth::ManagedEnterpriseParams p;
    p.regions = 3;
    p.spokes_per_region = 10;
    cases.push_back(make_case("managed", synth::make_managed_enterprise(p)));
  }
  {
    synth::NoBgpParams p;
    cases.push_back(make_case("no_bgp", synth::make_no_bgp_enterprise(p)));
  }
  {
    synth::MergedHybridParams p;
    cases.push_back(make_case("merged", synth::make_merged_hybrid(p)));
  }
  return cases;
}

void expect_identical(const Case& c, const ReachabilityAnalysis& oracle,
                      const ReachabilityAnalysis& candidate,
                      const std::string& label) {
  EXPECT_EQ(oracle.converged(), candidate.converged()) << c.name << " " << label;
  EXPECT_EQ(oracle.announced_externally(), candidate.announced_externally())
      << c.name << " " << label << ": announced sets differ";
  for (std::uint32_t i = 0; i < c.instances.instances.size(); ++i) {
    EXPECT_EQ(oracle.instance_routes(i), candidate.instance_routes(i))
        << c.name << " " << label << ": instance " << i << " routes differ ("
        << oracle.instance_routes(i).size() << " vs "
        << candidate.instance_routes(i).size() << ")";
    EXPECT_EQ(oracle.instance_reaches_internet(i),
              candidate.instance_reaches_internet(i))
        << c.name << " " << label << ": instance " << i;
    EXPECT_EQ(oracle.external_route_count(i),
              candidate.external_route_count(i))
        << c.name << " " << label << ": instance " << i;
  }
}

TEST(ReachabilityDifferential, EnginesAgreeAcrossFleet) {
  for (const auto& c : differential_cases()) {
    Options naive = c.options;
    naive.engine = Engine::kNaive;
    Options semi = c.options;
    semi.engine = Engine::kSemiNaive;
    const auto oracle =
        ReachabilityAnalysis::run(c.network, c.instances, naive);
    const auto fast = ReachabilityAnalysis::run(c.network, c.instances, semi);
    ASSERT_TRUE(oracle.converged()) << c.name;
    expect_identical(c, oracle, fast, "semi-naive");
    // The derived covering queries must agree too (they run on the trie in
    // one engine's output representation, linear scans in neither).
    bool any_route = false;
    for (std::uint32_t i = 0; i < c.instances.instances.size(); ++i) {
      for (const auto& route : oracle.instance_routes(i)) {
        if (route.prefix.length() == 0) continue;
        any_route = true;
        EXPECT_TRUE(fast.instance_has_route_to(i, route.prefix.network()))
            << c.name << " instance " << i;
        EXPECT_TRUE(fast.instance_holds(i, route)) << c.name;
      }
    }
    EXPECT_TRUE(any_route) << c.name << ": case propagates nothing";
  }
}

TEST(ReachabilityDifferential, EnginesAgreeWithEndpointSubsets) {
  const auto cases = differential_cases();
  const auto& net15 = cases[1];
  for (const std::vector<std::size_t>& subset :
       {std::vector<std::size_t>{}, std::vector<std::size_t>{0},
        std::vector<std::size_t>{1}, std::vector<std::size_t>{1, 0}}) {
    Options naive = net15.options;
    naive.active_external_endpoints = subset;  // unsorted accepted
    naive.engine = Engine::kNaive;
    Options semi = naive;
    semi.engine = Engine::kSemiNaive;
    const auto oracle =
        ReachabilityAnalysis::run(net15.network, net15.instances, naive);
    const auto fast =
        ReachabilityAnalysis::run(net15.network, net15.instances, semi);
    expect_identical(net15, oracle, fast,
                     "endpoints=" + std::to_string(subset.size()));
  }
}

// Randomized edge orderings: the fixpoint is confluent, so any shuffle of
// the semi-naïve engine's edge lists must reproduce the oracle exactly.
TEST(ReachabilityDifferential, ShuffledEdgeOrderingsAreConfluent) {
  const std::uint64_t seeds = env_u64("RD_FUZZ_SEEDS", 8);
  const auto cases = differential_cases();
  for (const auto* c : {&cases[1], &cases[5]}) {  // net15 + managed
    Options naive = c->options;
    naive.engine = Engine::kNaive;
    const auto oracle =
        ReachabilityAnalysis::run(c->network, c->instances, naive);
    for (std::uint64_t s = 0; s < seeds; ++s) {
      Options semi = c->options;
      semi.engine = Engine::kSemiNaive;
      semi.shuffle_seed = s * 0x9e3779b97f4a7c15ULL + 1;
      const auto shuffled =
          ReachabilityAnalysis::run(c->network, c->instances, semi);
      expect_identical(*c, oracle, shuffled,
                       "shuffle seed " + std::to_string(s));
    }
  }
}

void expect_same_sweep(const std::vector<ScenarioImpact>& a,
                       const std::vector<ScenarioImpact>& b,
                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scenario.name, b[i].scenario.name) << label;
    EXPECT_EQ(a[i].scenario.failed, b[i].scenario.failed) << label;
    EXPECT_EQ(a[i].structural.instances_after, b[i].structural.instances_after)
        << label;
    EXPECT_EQ(a[i].structural.fragmented_instances,
              b[i].structural.fragmented_instances)
        << label;
    EXPECT_EQ(a[i].structural.severed_instance_pairs,
              b[i].structural.severed_instance_pairs)
        << label;
    EXPECT_EQ(a[i].instances_reaching_internet, b[i].instances_reaching_internet)
        << label;
    EXPECT_EQ(a[i].total_routes, b[i].total_routes) << label;
    EXPECT_EQ(a[i].announced_externally, b[i].announced_externally) << label;
    EXPECT_EQ(a[i].reachability_converged, b[i].reachability_converged)
        << label;
  }
}

TEST(ReachabilityDifferential, WhatIfSweepIdenticalAcrossThreadsAndEngines) {
  synth::ManagedEnterpriseParams p;
  p.regions = 3;
  p.spokes_per_region = 8;
  const auto net = synth::make_managed_enterprise(p);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto graph = graph::InstanceGraph::build(network);

  auto scenarios = single_failure_scenarios(network, graph);
  if (scenarios.empty()) {  // belt and braces: always sweep something
    scenarios.push_back({network.routers()[0].hostname, {0}});
  }
  ASSERT_FALSE(scenarios.empty());

  Options semi;
  semi.engine = Engine::kSemiNaive;
  const auto serial =
      sweep_failure_scenarios(network, graph.set, scenarios, semi, 1);
  for (const std::size_t threads : {2UL, 8UL}) {
    const auto parallel =
        sweep_failure_scenarios(network, graph.set, scenarios, semi, threads);
    expect_same_sweep(serial, parallel,
                      "threads=" + std::to_string(threads));
  }
  // And the naïve engine, swept in parallel, matches the semi-naïve sweep.
  Options naive;
  naive.engine = Engine::kNaive;
  const auto oracle =
      sweep_failure_scenarios(network, graph.set, scenarios, naive, 8);
  expect_same_sweep(serial, oracle, "naive oracle sweep");
}

TEST(ReachabilityDifferential, EgressAttributionIdenticalAcrossThreads) {
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);
  Options base;
  const auto plan = synth::net15_plan();
  base.external_prefixes = {plan.ab0, plan.external_left,
                            plan.external_right};

  util::ThreadPool serial_pool(1);
  const auto serial =
      EgressAnalysis::run(network, instances, base, serial_pool);
  ASSERT_FALSE(serial.points().empty());
  for (const std::size_t threads : {2UL, 8UL}) {
    util::ThreadPool pool(threads);
    const auto parallel = EgressAnalysis::run(network, instances, base, pool);
    ASSERT_EQ(serial.points().size(), parallel.points().size());
    for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
      EXPECT_EQ(serial.instance_egress(i), parallel.instance_egress(i))
          << "instance " << i << " threads " << threads;
    }
  }
}

TEST(ReachabilityDifferential, NonConvergenceIsSurfacedByBothEngines) {
  const auto plan = synth::net15_plan();
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);
  for (const Engine engine : {Engine::kNaive, Engine::kSemiNaive}) {
    Options truncated;
    truncated.external_prefixes = {plan.ab0, plan.external_left,
                                   plan.external_right};
    truncated.engine = engine;
    truncated.max_iterations = 1;
    const auto cut =
        ReachabilityAnalysis::run(network, instances, truncated);
    EXPECT_FALSE(cut.converged());
    EXPECT_FALSE(cut.convergence_warning().empty());

    Options full = truncated;
    full.max_iterations = 64;
    const auto done = ReachabilityAnalysis::run(network, instances, full);
    EXPECT_TRUE(done.converged());
    EXPECT_TRUE(done.convergence_warning().empty());
  }
}

TEST(ReachabilityDifferential, PipelineReportCarriesConvergence) {
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto report = pipeline::analyze_network("net15", network);
  EXPECT_NE(report.json.find("\"converged\":true"), std::string::npos)
      << report.json;
}

}  // namespace
}  // namespace rd::analysis
