#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dot.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "graph/process_graph.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::graph {
namespace {

using rd::test::network_of;

/// The paper's §2 example (Figures 1/5/6/7): a three-router enterprise
/// (R1-R3, OSPF 128, border R2 running BGP AS 64780 and redistributing BGP
/// into OSPF) attached to a three-router transit backbone (R4-R6, OSPF 0 +
/// IBGP mesh in AS 12762), which also peers with an external router R7.
model::Network figure1_network() {
  const std::string r1 =
      "hostname R1\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.1 "
      "255.255.255.252\n"
      "router ospf 128\n network 10.1.0.0 0.0.255.255 area 0\n";
  const std::string r2 =
      "hostname R2\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.2 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.1.0.5 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.9.0.1 "
      "255.255.255.252\n"
      "router ospf 128\n"
      " network 10.1.0.0 0.0.255.255 area 0\n"
      " redistribute bgp 64780 metric 1 subnets route-map INJECT\n"
      "router bgp 64780\n"
      " neighbor 10.9.0.2 remote-as 12762\n"
      " redistribute ospf 128 route-map EXPORT\n"
      "route-map INJECT permit 10\n"
      "route-map EXPORT permit 10\n";
  const std::string r3 =
      "hostname R3\n"
      "interface Serial0/0 point-to-point\n ip address 10.1.0.6 "
      "255.255.255.252\n"
      "router ospf 128\n network 10.1.0.0 0.0.255.255 area 0\n";
  const std::string r4 =
      "hostname R4\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.1 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.2.0.9 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.2 remote-as 12762\n"
      " neighbor 10.2.0.10 remote-as 12762\n";
  const std::string r5 =
      "hostname R5\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.2 "
      "255.255.255.252\n"
      "interface Serial0/2 point-to-point\n ip address 10.2.0.5 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.99.0.1 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.1 remote-as 12762\n"
      " neighbor 10.2.0.6 remote-as 12762\n"
      " neighbor 10.99.0.2 remote-as 7018\n";  // external R7
  const std::string r6 =
      "hostname R6\n"
      "interface Serial0/0 point-to-point\n ip address 10.2.0.6 "
      "255.255.255.252\n"
      "interface Serial0/1 point-to-point\n ip address 10.2.0.10 "
      "255.255.255.252\n"
      "interface Serial1/0 point-to-point\n ip address 10.9.0.2 "
      "255.255.255.252\n"
      "router ospf 0\n network 10.2.0.0 0.0.255.255 area 0\n"
      "router bgp 12762\n"
      " neighbor 10.2.0.5 remote-as 12762\n"
      " neighbor 10.2.0.9 remote-as 12762\n"
      " neighbor 10.9.0.1 remote-as 64780\n";
  return network_of({r1, r2, r3, r4, r5, r6});
}

// --- ProcessGraph -------------------------------------------------------------

TEST(ProcessGraph, VertexInventory) {
  const auto net = figure1_network();
  const auto g = ProcessGraph::build(net);
  // 9 process RIBs (4 OSPF... R1,R2,R3 OSPF + R2 BGP + R4,R5,R6 OSPF+BGP = 10)
  // plus local+router RIB per router.
  EXPECT_EQ(net.processes().size(), 10u);
  EXPECT_EQ(g.vertices().size(), 10u + 2u * 6u);
}

TEST(ProcessGraph, SelectionEdgesFeedRouterRib) {
  const auto net = figure1_network();
  const auto g = ProcessGraph::build(net);
  std::size_t selection = 0;
  for (const auto& edge : g.edges()) {
    if (edge.kind == ProcessGraph::EdgeKind::kSelection) ++selection;
  }
  // One per process plus one local RIB per router.
  EXPECT_EQ(selection, net.processes().size() + net.router_count());
}

TEST(ProcessGraph, AdjacencySessionAndExternalEdges) {
  const auto net = figure1_network();
  const auto g = ProcessGraph::build(net);
  std::size_t adjacency = 0;
  std::size_t sessions = 0;
  std::size_t external = 0;
  std::size_t redist = 0;
  for (const auto& edge : g.edges()) {
    switch (edge.kind) {
      case ProcessGraph::EdgeKind::kIgpAdjacency: ++adjacency; break;
      case ProcessGraph::EdgeKind::kBgpSession: ++sessions; break;
      case ProcessGraph::EdgeKind::kExternal: ++external; break;
      case ProcessGraph::EdgeKind::kRedistribution: ++redist; break;
      default: break;
    }
  }
  EXPECT_EQ(adjacency, 5u);  // R1-R2, R2-R3, R4-R5, R5-R6, R4-R6
  EXPECT_EQ(sessions, 4u);   // 3 IBGP + 1 internal EBGP, deduplicated
  EXPECT_EQ(external, 1u);   // R5 -> R7
  EXPECT_EQ(redist, 2u);     // bgp->ospf and ospf->bgp on R2
}

TEST(ProcessGraph, IncidenceListsConsistent) {
  const auto net = figure1_network();
  const auto g = ProcessGraph::build(net);
  for (std::uint32_t v = 0; v < g.vertices().size(); ++v) {
    for (const std::uint32_t e : g.incident_edges(v)) {
      EXPECT_TRUE(g.edges()[e].from == v || g.edges()[e].to == v);
    }
  }
}

// --- Instances ------------------------------------------------------------------

TEST(Instances, Figure1Partition) {
  const auto net = figure1_network();
  const auto set = compute_instances(net);
  ASSERT_EQ(set.instances.size(), 4u);
  // Collect (protocol, router-count) pairs.
  std::multiset<std::pair<int, std::size_t>> shape;
  for (const auto& inst : set.instances) {
    shape.insert({static_cast<int>(inst.protocol), inst.router_count()});
  }
  const int ospf = static_cast<int>(config::RoutingProtocol::kOspf);
  const int bgp = static_cast<int>(config::RoutingProtocol::kBgp);
  EXPECT_TRUE(shape.contains({ospf, 3}));  // two OSPF instances of 3 routers
  EXPECT_EQ(shape.count({ospf, 3}), 2u);
  EXPECT_TRUE(shape.contains({bgp, 1}));   // AS 64780
  EXPECT_TRUE(shape.contains({bgp, 3}));   // AS 12762 IBGP mesh
}

TEST(Instances, EbgpIsBoundaryIbgpIsGlue) {
  const auto net = figure1_network();
  const auto set = compute_instances(net);
  for (const auto& inst : set.instances) {
    if (inst.bgp_as == 12762u) {
      EXPECT_EQ(inst.router_count(), 3u);
    }
    if (inst.bgp_as == 64780u) {
      EXPECT_EQ(inst.router_count(), 1u);
    }
  }
}

TEST(Instances, InstanceOfIsConsistent) {
  const auto net = figure1_network();
  const auto set = compute_instances(net);
  ASSERT_EQ(set.instance_of.size(), net.processes().size());
  for (std::uint32_t i = 0; i < set.instances.size(); ++i) {
    for (const auto p : set.instances[i].processes) {
      EXPECT_EQ(set.instance_of[p], i);
    }
  }
}

TEST(Instances, IsolatedProcessIsItsOwnInstance) {
  const auto net = network_of({"hostname a\nrouter ospf 1\n",
                               "hostname b\nrouter ospf 1\n"});
  EXPECT_EQ(compute_instances(net).instances.size(), 2u);
}

TEST(Instances, BfsMatchesUnionFindOnFigure1) {
  const auto net = figure1_network();
  const auto uf = compute_instances(net);
  const auto bfs = compute_instances_bfs(net);
  ASSERT_EQ(uf.instances.size(), bfs.instances.size());
  EXPECT_EQ(uf.instance_of, bfs.instance_of);
}

// Property: the two instance computations agree on every archetype.
class InstanceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(InstanceEquivalence, UnionFindEqualsBfs) {
  synth::SynthNetwork net;
  switch (GetParam()) {
    case 0: {
      synth::ManagedEnterpriseParams p;
      p.regions = 3;
      p.spokes_per_region = 15;
      p.ebgp_spoke_rate = 0.2;
      net = synth::make_managed_enterprise(p);
      break;
    }
    case 1: {
      synth::Tier2Params p;
      p.edge_routers = 40;
      net = synth::make_tier2_isp(p);
      break;
    }
    case 2: {
      synth::BackboneParams p;
      p.access_routers = 40;
      p.external_peers = 60;
      net = synth::make_backbone(p);
      break;
    }
    case 3:
      net = synth::make_net15();
      break;
    default:
      GTEST_FAIL();
  }
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto uf = compute_instances(network);
  const auto bfs = compute_instances_bfs(network);
  EXPECT_EQ(uf.instance_of, bfs.instance_of);
}

INSTANTIATE_TEST_SUITE_P(Archetypes, InstanceEquivalence,
                         ::testing::Range(0, 4));

// --- InstanceGraph ----------------------------------------------------------------

TEST(InstanceGraph, Figure6Edges) {
  const auto net = figure1_network();
  const auto g = InstanceGraph::build(net);
  std::size_t redist = 0;
  std::size_t ebgp = 0;
  std::size_t external = 0;
  for (const auto& edge : g.edges) {
    switch (edge.kind) {
      case InstanceEdge::Kind::kRedistribution: ++redist; break;
      case InstanceEdge::Kind::kEbgpSession: ++ebgp; break;
      case InstanceEdge::Kind::kExternal: ++external; break;
    }
  }
  EXPECT_EQ(redist, 2u);    // BGP64780 <-> OSPF128 both ways on R2
  EXPECT_EQ(ebgp, 1u);      // AS 64780 <-> AS 12762
  EXPECT_EQ(external, 1u);  // AS 12762 -> R7
}

TEST(InstanceGraph, RedistributionWithinInstanceNotAnEdge) {
  const auto net = network_of({"hostname a\n"
                               "router ospf 1\n"
                               " redistribute connected\n"});
  const auto g = InstanceGraph::build(net);
  EXPECT_TRUE(g.edges.empty());
}

// --- Pathways (Figure 7 / Figure 10) ------------------------------------------------

std::uint32_t router_by_name(const model::Network& net,
                             std::string_view name) {
  for (std::uint32_t r = 0; r < net.router_count(); ++r) {
    if (net.routers()[r].hostname == name) return r;
  }
  ADD_FAILURE() << "no router " << name;
  return 0;
}

TEST(Pathway, EnterpriseRouterLearnsThroughLayers) {
  const auto net = figure1_network();
  const auto g = InstanceGraph::build(net);
  const auto pathway = compute_pathway(net, g, router_by_name(net, "R1"));
  // R1: RIB <- ospf128 <- bgp64780 <- bgp12762 <- external world.
  EXPECT_TRUE(pathway.reaches_external);
  EXPECT_EQ(pathway.max_depth, 2u);
  EXPECT_EQ(pathway.nodes.size(), 3u);
}

TEST(Pathway, BackboneRouterLearnsDirectly) {
  const auto net = figure1_network();
  const auto g = InstanceGraph::build(net);
  const auto pathway = compute_pathway(net, g, router_by_name(net, "R5"));
  // R5 sits in ospf0 and bgp12762; the latter is fed externally (depth 0).
  EXPECT_TRUE(pathway.reaches_external);
  std::set<std::uint32_t> depths;
  for (const auto& node : pathway.nodes) depths.insert(node.depth);
  EXPECT_TRUE(depths.contains(0u));
}

TEST(Pathway, IsolatedRouterReachesNothing) {
  const auto net = network_of({"hostname a\nrouter ospf 1\n"});
  const auto g = InstanceGraph::build(net);
  const auto pathway = compute_pathway(net, g, 0);
  EXPECT_FALSE(pathway.reaches_external);
  EXPECT_EQ(pathway.nodes.size(), 1u);
  EXPECT_EQ(pathway.max_depth, 0u);
}

// --- DOT output ----------------------------------------------------------------------

TEST(Dot, RendersAllGraphKinds) {
  const auto net = figure1_network();
  const auto pg = ProcessGraph::build(net);
  const auto ig = InstanceGraph::build(net);
  const auto pathway = compute_pathway(net, ig, router_by_name(net, "R1"));

  const auto d1 = to_dot(net, pg);
  EXPECT_NE(d1.find("digraph process_graph"), std::string::npos);
  EXPECT_NE(d1.find("R2 bgp 64780 RIB"), std::string::npos);

  const auto d2 = to_dot(net, ig);
  EXPECT_NE(d2.find("External World"), std::string::npos);
  EXPECT_NE(d2.find("bgp AS 12762"), std::string::npos);

  const auto d3 = to_dot(net, ig, pathway);
  EXPECT_NE(d3.find("R1 Router RIB"), std::string::npos);
}

TEST(Dot, InstanceLabel) {
  const auto net = figure1_network();
  const auto set = compute_instances(net);
  bool found = false;
  for (std::uint32_t i = 0; i < set.instances.size(); ++i) {
    const auto label = instance_label(set, i);
    if (label.find("bgp AS 12762, 3 routers") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rd::graph
