#include <gtest/gtest.h>

#include <algorithm>

#include "ip/aggregate.h"
#include "ip/ipv4.h"
#include "ip/prefix_trie.h"
#include "util/rng.h"

namespace rd::ip {
namespace {

// --- Ipv4Address ------------------------------------------------------------

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto a = Ipv4Address::parse("66.251.75.144");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x42FB4B90u);
}

TEST(Ipv4Address, ParsesExtremes) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4"));  // ambiguous leading zero
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
}

TEST(Ipv4Address, RoundTripsFormatting) {
  for (const char* text : {"0.0.0.0", "10.0.0.1", "192.168.255.254",
                           "255.255.255.255", "66.253.160.67"}) {
    EXPECT_EQ(Ipv4Address::parse(text)->to_string(), text);
  }
}

TEST(Ipv4Address, OrdersNumerically) {
  EXPECT_LT(*Ipv4Address::parse("9.255.255.255"),
            *Ipv4Address::parse("10.0.0.0"));
  EXPECT_LT(*Ipv4Address::parse("10.0.0.0"),
            *Ipv4Address::parse("192.168.0.0"));
}

// --- Netmask ----------------------------------------------------------------

TEST(Netmask, ParsesContiguousMasks) {
  EXPECT_EQ(Netmask::parse("255.255.255.252")->length(), 30);
  EXPECT_EQ(Netmask::parse("255.255.255.128")->length(), 25);
  EXPECT_EQ(Netmask::parse("255.0.0.0")->length(), 8);
  EXPECT_EQ(Netmask::parse("0.0.0.0")->length(), 0);
  EXPECT_EQ(Netmask::parse("255.255.255.255")->length(), 32);
}

TEST(Netmask, RejectsNonContiguous) {
  EXPECT_FALSE(Netmask::parse("255.0.255.0"));
  EXPECT_FALSE(Netmask::parse("0.255.0.0"));
  EXPECT_FALSE(Netmask::parse("255.255.255.253"));
}

TEST(Netmask, ParsesWildcards) {
  EXPECT_EQ(Netmask::parse_wildcard("0.0.0.3")->length(), 30);
  EXPECT_EQ(Netmask::parse_wildcard("0.0.0.127")->length(), 25);
  EXPECT_EQ(Netmask::parse_wildcard("0.255.255.255")->length(), 8);
  EXPECT_EQ(Netmask::parse_wildcard("255.255.255.255")->length(), 0);
  EXPECT_FALSE(Netmask::parse_wildcard("0.0.3.0"));
}

TEST(Netmask, FormatsBothNotations) {
  const auto m = Netmask::from_length(30);
  EXPECT_EQ(m.to_string(), "255.255.255.252");
  EXPECT_EQ(m.to_wildcard_string(), "0.0.0.3");
}

TEST(Netmask, EveryLengthRoundTrips) {
  for (int len = 0; len <= 32; ++len) {
    const auto m = Netmask::from_length(len);
    EXPECT_EQ(Netmask::parse(m.to_string())->length(), len);
    EXPECT_EQ(Netmask::parse_wildcard(m.to_wildcard_string())->length(), len);
  }
}

// --- Prefix -----------------------------------------------------------------

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(*Ipv4Address::parse("10.1.2.3"), 8);
  EXPECT_EQ(p.network().to_string(), "10.0.0.0");
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
}

TEST(Prefix, ParsesSlashNotation) {
  const auto p = Prefix::parse("192.168.4.0/22");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 22);
  EXPECT_EQ(p->network().to_string(), "192.168.4.0");
  EXPECT_FALSE(Prefix::parse("192.168.4.0"));
  EXPECT_FALSE(Prefix::parse("192.168.4.0/33"));
  EXPECT_FALSE(Prefix::parse("x/8"));
}

TEST(Prefix, ParseStrictRejectsHostBits) {
  const auto ok = Prefix::parse_strict("10.0.0.0/8");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->to_string(), "10.0.0.0/8");
  // The lenient parse would silently mask this to 10.0.0.0/8.
  EXPECT_FALSE(Prefix::parse_strict("10.0.0.5/8"));
  EXPECT_FALSE(Prefix::parse_strict("192.168.4.1/22"));
  // Malformed inputs fail the same way as Prefix::parse.
  EXPECT_FALSE(Prefix::parse_strict("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse_strict("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse_strict("x/8"));
  // /32 and /0 edge cases: every address is canonical at /32; only 0.0.0.0
  // is canonical at /0.
  EXPECT_TRUE(Prefix::parse_strict("10.1.2.3/32"));
  EXPECT_TRUE(Prefix::parse_strict("0.0.0.0/0"));
  EXPECT_FALSE(Prefix::parse_strict("10.0.0.0/0"));
}

TEST(Prefix, MakeStrictMirrorsParseStrict) {
  const auto addr = *Ipv4Address::parse("10.1.2.3");
  EXPECT_FALSE(Prefix::make_strict(addr, 8));
  const auto host = Prefix::make_strict(addr, 32);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->to_string(), "10.1.2.3/32");
  const auto net = Prefix::make_strict(*Ipv4Address::parse("10.0.0.0"), 8);
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->to_string(), "10.0.0.0/8");
}

TEST(Prefix, Containment) {
  const Prefix big = *Prefix::parse("10.0.0.0/8");
  const Prefix small = *Prefix::parse("10.5.0.0/16");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(*Ipv4Address::parse("10.255.0.1")));
  EXPECT_FALSE(big.contains(*Ipv4Address::parse("11.0.0.0")));
  EXPECT_TRUE(big.contains(big));
}

TEST(Prefix, Overlap) {
  EXPECT_TRUE(Prefix::parse("10.0.0.0/8")->overlaps(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(Prefix::parse("10.1.0.0/16")->overlaps(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(
      Prefix::parse("10.0.0.0/16")->overlaps(*Prefix::parse("10.1.0.0/16")));
}

TEST(Prefix, SizeAndLastAddress) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/30")->size(), 4u);
  EXPECT_EQ(Prefix::parse("0.0.0.0/0")->size(), 1ull << 32);
  EXPECT_EQ(Prefix::parse("10.0.0.0/30")->last_address().to_string(),
            "10.0.0.3");
}

TEST(Prefix, ParentAndBuddy) {
  const Prefix p = *Prefix::parse("10.0.2.0/24");
  EXPECT_EQ(p.parent().to_string(), "10.0.2.0/23");
  EXPECT_EQ(p.buddy().to_string(), "10.0.3.0/24");
  EXPECT_EQ(p.buddy().buddy(), p);
  const Prefix root = *Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(root.parent(), root);
  EXPECT_EQ(root.buddy(), root);
}

TEST(Prefix, HostPrefix) {
  const Prefix p = Prefix::host(*Ipv4Address::parse("1.2.3.4"));
  EXPECT_EQ(p.length(), 32);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("1.2.3.4")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("1.2.3.5")));
}

TEST(Rfc1918, ClassifiesPrivateSpace) {
  EXPECT_TRUE(is_rfc1918(*Ipv4Address::parse("10.1.2.3")));
  EXPECT_TRUE(is_rfc1918(*Ipv4Address::parse("172.16.0.1")));
  EXPECT_TRUE(is_rfc1918(*Ipv4Address::parse("172.31.255.255")));
  EXPECT_TRUE(is_rfc1918(*Ipv4Address::parse("192.168.0.1")));
  EXPECT_FALSE(is_rfc1918(*Ipv4Address::parse("172.32.0.0")));
  EXPECT_FALSE(is_rfc1918(*Ipv4Address::parse("11.0.0.0")));
  EXPECT_FALSE(is_rfc1918(*Ipv4Address::parse("192.169.0.0")));
}

TEST(PrivateAsn, Range) {
  EXPECT_TRUE(is_private_asn(64512));
  EXPECT_TRUE(is_private_asn(65534));
  EXPECT_FALSE(is_private_asn(64511));
  EXPECT_FALSE(is_private_asn(65535));
  EXPECT_FALSE(is_private_asn(7018));
}

// --- PrefixTrie -------------------------------------------------------------

TEST(PrefixTrie, ExactInsertAndFind) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 1);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.1.0.0/16")), 2);
  EXPECT_EQ(trie.find(*Prefix::parse("10.0.0.0/9")), nullptr);
}

TEST(PrefixTrie, OverwriteKeepsSize) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 7);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 7);
}

TEST(PrefixTrie, LongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  EXPECT_EQ(*trie.longest_match(*Ipv4Address::parse("10.1.2.3")), 16);
  EXPECT_EQ(*trie.longest_match(*Ipv4Address::parse("10.2.0.0")), 8);
  EXPECT_EQ(*trie.longest_match(*Ipv4Address::parse("11.0.0.0")), 0);
}

TEST(PrefixTrie, LongestMatchWithoutDefault) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.longest_match(*Ipv4Address::parse("11.0.0.0")), nullptr);
}

TEST(PrefixTrie, Covers) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.covers(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(trie.covers(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.covers(*Prefix::parse("11.0.0.0/16")));
  // A /4 above the stored /8 is not covered.
  EXPECT_FALSE(trie.covers(*Prefix::parse("0.0.0.0/4")));
}

TEST(PrefixTrie, ForEachVisitsInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("192.168.0.0/16"), 3);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.128.0.0/9"), 2);
  std::vector<std::string> seen;
  trie.for_each([&](const Prefix& p, const int&) {
    seen.push_back(p.to_string());
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"10.0.0.0/8", "10.128.0.0/9",
                                            "192.168.0.0/16"}));
}

TEST(PrefixTrie, ForEachMatchVisitsAllContainingPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.2.0.0/16"), 99);  // does not contain probe
  std::vector<int> seen;
  trie.for_each_match(*Ipv4Address::parse("10.1.2.3"),
                      [&](const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 8, 16}));  // shortest to longest
}

TEST(PrefixTrie, ForEachMatchNoMatches) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  std::size_t calls = 0;
  trie.for_each_match(*Ipv4Address::parse("11.0.0.0"),
                      [&](const int&) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::host(*Ipv4Address::parse("1.2.3.4")), 42);
  EXPECT_EQ(*trie.longest_match(*Ipv4Address::parse("1.2.3.4")), 42);
  EXPECT_EQ(trie.longest_match(*Ipv4Address::parse("1.2.3.5")), nullptr);
}

// --- Aggregation ------------------------------------------------------------

TEST(Aggregate, RemoveContained) {
  auto out = remove_contained({*Prefix::parse("10.0.0.0/8"),
                               *Prefix::parse("10.1.0.0/16"),
                               *Prefix::parse("11.0.0.0/8"),
                               *Prefix::parse("10.0.0.0/8")});
  EXPECT_EQ(out, (std::vector<Prefix>{*Prefix::parse("10.0.0.0/8"),
                                      *Prefix::parse("11.0.0.0/8")}));
}

TEST(Aggregate, ExactMergesBuddies) {
  auto out = aggregate_exact({*Prefix::parse("10.0.0.0/24"),
                              *Prefix::parse("10.0.1.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix>{*Prefix::parse("10.0.0.0/23")}));
}

TEST(Aggregate, ExactMergesRecursively) {
  auto out = aggregate_exact(
      {*Prefix::parse("10.0.0.0/24"), *Prefix::parse("10.0.1.0/24"),
       *Prefix::parse("10.0.2.0/24"), *Prefix::parse("10.0.3.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix>{*Prefix::parse("10.0.0.0/22")}));
}

TEST(Aggregate, ExactDoesNotMergeNonBuddies) {
  // 10.0.1.0/24 and 10.0.2.0/24 are adjacent but not buddies.
  auto out = aggregate_exact({*Prefix::parse("10.0.1.0/24"),
                              *Prefix::parse("10.0.2.0/24")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate, ExactPreservesAddressSet) {
  util::Rng rng(99);
  std::vector<Prefix> input;
  for (int i = 0; i < 200; ++i) {
    const auto base = static_cast<std::uint32_t>(rng.next());
    input.emplace_back(Ipv4Address(base),
                       static_cast<int>(16 + rng.below(17)));
  }
  const auto output = aggregate_exact(input);
  // Every input address range is covered by the output...
  for (const Prefix& p : input) {
    bool covered = false;
    for (const Prefix& q : output) covered = covered || q.contains(p);
    EXPECT_TRUE(covered) << p.to_string();
  }
  // ...and the output has no two mergeable or contained prefixes.
  for (std::size_t i = 0; i < output.size(); ++i) {
    for (std::size_t j = i + 1; j < output.size(); ++j) {
      EXPECT_FALSE(output[i].overlaps(output[j]));
      EXPECT_FALSE(output[i].buddy() == output[j]);
    }
  }
}

TEST(Aggregate, HalfUsedJoinsNearbySubnets) {
  // Two /24s two bits apart: the /22 is exactly half used -> joined.
  auto out = cover_half_used({*Prefix::parse("10.0.0.0/24"),
                              *Prefix::parse("10.0.2.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix>{*Prefix::parse("10.0.0.0/22")}));
}

TEST(Aggregate, HalfUsedRespectsTwoBitLimit) {
  // Three bits apart: the join would need a /21 only 1/4 used -> no join.
  auto out = cover_half_used({*Prefix::parse("10.0.0.0/24"),
                              *Prefix::parse("10.0.4.0/24")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate, HalfUsedBuildsHierarchy) {
  // Four /26s inside one /24 plus a neighbour /24 -> one /23 root.
  auto out = cover_half_used(
      {*Prefix::parse("10.0.0.0/26"), *Prefix::parse("10.0.0.64/26"),
       *Prefix::parse("10.0.0.128/26"), *Prefix::parse("10.0.0.192/26"),
       *Prefix::parse("10.0.1.0/24")});
  EXPECT_EQ(out, (std::vector<Prefix>{*Prefix::parse("10.0.0.0/23")}));
}

TEST(Aggregate, HalfUsedKeepsDistantBlocksApart) {
  auto out = cover_half_used({*Prefix::parse("10.0.0.0/24"),
                              *Prefix::parse("192.168.0.0/24")});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Aggregate, CoverAlwaysCoversInput) {
  util::Rng rng(7);
  std::vector<Prefix> input;
  for (int i = 0; i < 150; ++i) {
    const auto base = static_cast<std::uint32_t>(rng.next());
    input.emplace_back(Ipv4Address(base),
                       static_cast<int>(20 + rng.below(11)));
  }
  const auto output = cover_half_used(input);
  for (const Prefix& p : input) {
    bool covered = false;
    for (const Prefix& q : output) covered = covered || q.contains(p);
    EXPECT_TRUE(covered) << p.to_string();
  }
  // Output prefixes are mutually disjoint.
  for (std::size_t i = 0; i < output.size(); ++i) {
    for (std::size_t j = i + 1; j < output.size(); ++j) {
      EXPECT_FALSE(output[i].overlaps(output[j]));
    }
  }
}

TEST(Aggregate, TotalAddresses) {
  EXPECT_EQ(total_addresses({*Prefix::parse("10.0.0.0/24"),
                             *Prefix::parse("10.1.0.0/30")}),
            260u);
}

// Parameterized sweep: exact aggregation of a full run of /24s under one /16
// always collapses to the covering prefix when the count is a power of two.
class AggregateRunTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregateRunTest, FullRunsCollapse) {
  const int log2_count = GetParam();
  const int count = 1 << log2_count;
  std::vector<Prefix> input;
  for (int i = 0; i < count; ++i) {
    input.emplace_back(Ipv4Address(0x0A000000u + (static_cast<std::uint32_t>(i) << 8)),
                       24);
  }
  const auto out = aggregate_exact(input);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].length(), 24 - log2_count);
  EXPECT_EQ(out[0].network().to_string(), "10.0.0.0");
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, AggregateRunTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rd::ip
