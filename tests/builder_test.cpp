#include <gtest/gtest.h>

#include "synth/builder.h"
#include "synth/plan.h"
#include "testutil.h"

namespace rd::synth {
namespace {

using rd::test::pfx;

TEST(Builder, AddRouterNamesSequentially) {
  NetworkBuilder b("net");
  EXPECT_EQ(b.add_router(), 0u);
  EXPECT_EQ(b.add_router("custom"), 1u);
  EXPECT_EQ(b.router(0).hostname, "net-r0");
  EXPECT_EQ(b.router(1).hostname, "custom");
  EXPECT_EQ(b.router_count(), 2u);
}

TEST(Builder, ConnectP2pAssignsBothEnds) {
  NetworkBuilder b("net");
  const auto r0 = b.add_router();
  const auto r1 = b.add_router();
  AddressPlanner planner(pfx("10.0.0.0/24"));
  const auto link = b.connect_p2p(r0, r1, planner, "Serial");
  EXPECT_EQ(link.subnet.length(), 30);
  EXPECT_EQ(link.address_a.to_string(), "10.0.0.1");
  EXPECT_EQ(link.address_b.to_string(), "10.0.0.2");
  EXPECT_EQ(link.interface_a, "Serial0/0");
  ASSERT_EQ(b.router(r0).interfaces.size(), 1u);
  EXPECT_TRUE(b.router(r0).interfaces[0].point_to_point);
  EXPECT_EQ(b.router(r0).interfaces[0].address->mask.length(), 30);
}

TEST(Builder, SerialNamingUsesSlotPort) {
  NetworkBuilder b("net");
  const auto r0 = b.add_router();
  const auto r1 = b.add_router();
  AddressPlanner planner(pfx("10.0.0.0/16"));
  std::string last;
  for (int i = 0; i < 9; ++i) {
    last = b.connect_p2p(r0, r1, planner, "Serial").interface_a;
  }
  EXPECT_EQ(last, "Serial1/0");  // 9th port rolls into slot 1
}

TEST(Builder, LanAndLoopback) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  AddressPlanner planner(pfx("10.0.0.0/16"));
  const auto lan_name = b.add_lan(r, pfx("10.5.0.0/24"), "FastEthernet");
  EXPECT_EQ(lan_name, "FastEthernet0/0");
  const auto loop = b.add_loopback(r, planner);
  EXPECT_EQ(loop.to_string(), "10.0.0.0");
  ASSERT_EQ(b.router(r).interfaces.size(), 2u);
  EXPECT_EQ(b.router(r).interfaces[1].name, "Loopback0");
  EXPECT_EQ(b.router(r).interfaces[1].address->mask.length(), 32);
}

TEST(Builder, ExternalAttachmentLeavesNeighborUnconfigured) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  AddressPlanner planner(pfx("66.0.0.0/24"));
  const auto att = b.attach_external(r, planner, "Serial");
  EXPECT_EQ(att.local_address.to_string(), "66.0.0.1");
  EXPECT_EQ(att.neighbor_address.to_string(), "66.0.0.2");
  EXPECT_EQ(b.router(r).interfaces.size(), 1u);  // only our side exists
}

TEST(Builder, RoutingStanzaIsIdempotent) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  auto& first = b.routing_stanza(r, config::RoutingProtocol::kOspf, 1);
  NetworkBuilder::cover_subnet(first, pfx("10.0.0.0/8"), 3);
  auto& again = b.routing_stanza(r, config::RoutingProtocol::kOspf, 1);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(b.router(r).router_stanzas.size(), 1u);
  EXPECT_EQ(again.networks[0].area, 3u);
  // A different process id creates a new stanza.
  b.routing_stanza(r, config::RoutingProtocol::kOspf, 2);
  EXPECT_EQ(b.router(r).router_stanzas.size(), 2u);
}

TEST(Builder, RipStanzaSingleton) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  auto& rip = b.rip_stanza(r);
  auto& again = b.rip_stanza(r);
  EXPECT_EQ(&rip, &again);
  EXPECT_FALSE(rip.process_id.has_value());
}

TEST(Builder, AclHelpersGroupById) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  b.add_acl_rule(r, "10", config::FilterAction::kPermit, pfx("10.0.0.0/8"));
  b.add_acl_rule(r, "10", config::FilterAction::kDeny, {}, /*any=*/true);
  b.add_extended_acl_rule(r, "101", config::FilterAction::kDeny, "udp", {},
                          true, {}, true, 1434);
  ASSERT_EQ(b.router(r).access_lists.size(), 2u);
  EXPECT_EQ(b.router(r).access_lists[0].rules.size(), 2u);
  EXPECT_EQ(b.router(r).access_lists[1].rules[0].destination_port, 1434u);
}

TEST(Builder, PrefixListSequenceNumbers) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  b.add_prefix_list_entry(r, "PL", config::FilterAction::kPermit,
                          pfx("10.0.0.0/8"), {}, 24);
  b.add_prefix_list_entry(r, "PL", config::FilterAction::kDeny,
                          pfx("0.0.0.0/0"));
  ASSERT_EQ(b.router(r).prefix_lists.size(), 1u);
  const auto& pl = b.router(r).prefix_lists[0];
  ASSERT_EQ(pl.entries.size(), 2u);
  EXPECT_EQ(pl.entries[0].sequence, 5u);
  EXPECT_EQ(pl.entries[1].sequence, 10u);
  EXPECT_EQ(pl.entries[0].le, 24);
}

TEST(Builder, ApplyFilterByInterfaceName) {
  NetworkBuilder b("net");
  const auto r = b.add_router();
  const auto name = b.add_lan(r, pfx("10.0.0.0/24"), "Ethernet");
  b.apply_filter(r, name, "42", /*inbound=*/true);
  b.apply_filter(r, name, "43", /*inbound=*/false);
  b.apply_filter(r, "nonexistent", "44", true);  // silently ignored
  EXPECT_EQ(b.router(r).interfaces[0].access_group_in, "42");
  EXPECT_EQ(b.router(r).interfaces[0].access_group_out, "43");
}

TEST(Builder, TakeResetsBuilder) {
  NetworkBuilder b("net");
  b.add_router();
  const auto configs = b.take();
  EXPECT_EQ(configs.size(), 1u);
  EXPECT_EQ(b.router_count(), 0u);
}

TEST(Planner, UsedTracksConsumption) {
  AddressPlanner planner(pfx("10.0.0.0/24"));
  EXPECT_EQ(planner.used(), 0u);
  planner.allocate(32);
  planner.allocate(30);  // aligns to offset 4
  EXPECT_EQ(planner.used(), 8u);
  EXPECT_EQ(planner.pool(), pfx("10.0.0.0/24"));
}

}  // namespace
}  // namespace rd::synth
