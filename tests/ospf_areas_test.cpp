#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/ospf_areas.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

TEST(OspfAreas, SingleAreaInstance) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto instances = graph::compute_instances(net);
  const auto report = analyze_ospf_areas(net, instances);
  ASSERT_EQ(report.instances.size(), 1u);
  EXPECT_TRUE(report.instances[0].has_backbone());
  EXPECT_FALSE(report.instances[0].multi_area());
  EXPECT_TRUE(report.instances[0].abrs.empty());
  EXPECT_TRUE(report.instances[0].orphan_areas.empty());
}

TEST(OspfAreas, AbrDetected) {
  // One router with interfaces in area 0 and area 5: an ABR.
  const auto net = network_of(
      {"hostname abr\n"
       "interface FastEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.5.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.0.0.0 0.0.255.255 area 0\n"
       " network 10.5.0.0 0.0.255.255 area 5\n"});
  const auto instances = graph::compute_instances(net);
  const auto report = analyze_ospf_areas(net, instances);
  ASSERT_EQ(report.instances.size(), 1u);
  EXPECT_TRUE(report.instances[0].multi_area());
  ASSERT_EQ(report.instances[0].abrs.size(), 1u);
  EXPECT_TRUE(report.instances[0].orphan_areas.empty());
}

TEST(OspfAreas, OrphanAreaDetected) {
  // Area 7 exists on a router with no presence in area 0, and no ABR
  // connects it: partitioned from the backbone.
  const auto net = network_of(
      {"hostname core\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n",
       "hostname stranded\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "interface FastEthernet0/0\n ip address 10.7.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.0.0.0 0.0.0.3 area 0\n"
       " network 10.7.0.0 0.0.255.255 area 7\n",
       "hostname leaf\n"
       "interface FastEthernet0/0\n ip address 10.7.0.2 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.8.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.7.0.0 0.0.255.255 area 7\n"
       " network 10.8.0.0 0.0.255.255 area 8\n"});
  const auto instances = graph::compute_instances(net);
  const auto report = analyze_ospf_areas(net, instances);
  ASSERT_EQ(report.instances.size(), 1u);
  // Area 7 is fine ("stranded" is an ABR for it); area 8 hangs off "leaf"
  // which has no area-0 presence: orphaned.
  EXPECT_EQ(report.instances[0].orphan_areas,
            std::vector<std::uint32_t>{8});
  // Both "stranded" (0+7) and "leaf" (7+8) straddle areas.
  EXPECT_EQ(report.instances[0].abrs.size(), 2u);
}

TEST(OspfAreas, FirstMatchingStatementAssignsArea) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.2.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.2.0 0.0.0.255 area 3\n"
       " network 10.0.0.0 0.255.255.255 area 0\n"});
  const auto instances = graph::compute_instances(net);
  const auto report = analyze_ospf_areas(net, instances);
  ASSERT_EQ(report.instances.size(), 1u);
  ASSERT_EQ(report.instances[0].area_routers.size(), 1u);
  EXPECT_TRUE(report.instances[0].area_routers.contains(3));
}

TEST(OspfAreas, NonOspfInstancesSkipped) {
  const auto net = network_of(
      {"hostname a\nrouter eigrp 9\nrouter bgp 65000\n"});
  const auto instances = graph::compute_instances(net);
  EXPECT_TRUE(analyze_ospf_areas(net, instances).instances.empty());
}

TEST(OspfAreas, TextbookEnterpriseIsMultiAreaWithDistAbrs) {
  synth::TextbookEnterpriseParams p;
  p.routers = 60;
  const auto net = synth::make_textbook_enterprise(p);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto instances = graph::compute_instances(network);
  const auto report = analyze_ospf_areas(network, instances);
  ASSERT_FALSE(report.instances.empty());
  const auto& entry = report.instances[0];
  EXPECT_TRUE(entry.has_backbone());
  EXPECT_TRUE(entry.multi_area());
  // One area per distribution router (60/10 = 6 dists), each an ABR.
  EXPECT_EQ(entry.abrs.size(), 6u);
  EXPECT_EQ(entry.area_routers.size(), 7u);  // area 0 + 6 subtree areas
  EXPECT_TRUE(entry.orphan_areas.empty());
  EXPECT_EQ(report.total_abrs(), 6u);
  EXPECT_EQ(report.total_orphan_areas(), 0u);
}

TEST(OspfAreas, TwoInstanceTextbookKeepsAreaIntegrity) {
  synth::TextbookEnterpriseParams p;
  p.routers = 101;
  p.border_routers = 2;
  p.igp_instances = 2;
  const auto net = synth::make_textbook_enterprise(p);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto instances = graph::compute_instances(network);
  const auto report = analyze_ospf_areas(network, instances);
  EXPECT_GE(report.instances.size(), 2u);
  EXPECT_EQ(report.total_orphan_areas(), 0u);
}

}  // namespace
}  // namespace rd::analysis
