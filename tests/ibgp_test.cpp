#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/ibgp.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

/// n routers on a shared LAN 10.0.0.0/24 (addresses .1 .. .n), each running
/// BGP AS 65000 with the sessions described by `peers(i)` returning the
/// 1-based neighbor numbers of router i, optionally flagging clients.
std::vector<std::string> lan_as(
    int n,
    const std::function<std::vector<std::pair<int, bool>>(int)>& peers) {
  std::vector<std::string> texts;
  for (int i = 1; i <= n; ++i) {
    std::string text = "hostname b" + std::to_string(i) +
                       "\ninterface FastEthernet0/0\n ip address 10.0.0." +
                       std::to_string(i) + " 255.255.255.0\n";
    text += "router bgp 65000\n";
    for (const auto& [j, client] : peers(i)) {
      text += " neighbor 10.0.0." + std::to_string(j) + " remote-as 65000\n";
      if (client) {
        text += " neighbor 10.0.0." + std::to_string(j) +
                " route-reflector-client\n";
      }
    }
    texts.push_back(text);
  }
  return texts;
}

IbgpStructure analyze_single(const model::Network& net) {
  const auto instances = graph::compute_instances(net);
  const auto structures = analyze_ibgp(net, instances);
  for (const auto& entry : structures) {
    if (entry.as_number == 65000) return entry;
  }
  ADD_FAILURE() << "AS 65000 not found";
  return {};
}

TEST(Ibgp, FullMeshDetected) {
  const auto net = network_of(lan_as(4, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    for (int j = 1; j <= 4; ++j) {
      if (j != i) peers.push_back({j, false});
    }
    return peers;
  }));
  const auto entry = analyze_single(net);
  EXPECT_EQ(entry.routers.size(), 4u);
  EXPECT_EQ(entry.sessions, 6u);
  EXPECT_TRUE(entry.full_mesh());
  EXPECT_FALSE(entry.uses_route_reflection());
  EXPECT_EQ(entry.disconnected_pairs, 0u);
  EXPECT_TRUE(entry.isolated_routers.empty());
}

TEST(Ibgp, RouteReflectorHierarchyPropagates) {
  // Router 1 is the reflector; 2..4 are its clients, no client-client
  // sessions. Every pair must still be signalable.
  const auto net = network_of(lan_as(4, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    if (i == 1) {
      for (int j = 2; j <= 4; ++j) peers.push_back({j, true});
    } else {
      peers.push_back({1, false});
    }
    return peers;
  }));
  const auto entry = analyze_single(net);
  EXPECT_EQ(entry.sessions, 3u);
  EXPECT_FALSE(entry.full_mesh());
  EXPECT_TRUE(entry.uses_route_reflection());
  EXPECT_EQ(entry.reflectors, 1u);
  EXPECT_EQ(entry.clients, 3u);
  EXPECT_EQ(entry.disconnected_pairs, 0u);
}

TEST(Ibgp, PlainIbgpChainHasHoles) {
  // 1 - 2 - 3 without reflection: 2 does not re-advertise, so routes from 1
  // never reach 3 (and vice versa): 2 ordered holes.
  const auto net = network_of(lan_as(3, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    if (i == 1) peers.push_back({2, false});
    if (i == 2) {
      peers.push_back({1, false});
      peers.push_back({3, false});
    }
    if (i == 3) peers.push_back({2, false});
    return peers;
  }));
  const auto entry = analyze_single(net);
  EXPECT_EQ(entry.sessions, 2u);
  EXPECT_EQ(entry.disconnected_pairs, 2u);
}

TEST(Ibgp, ReflectorChainPropagates) {
  // Same chain but 2 reflects: holes disappear.
  const auto net = network_of(lan_as(3, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    if (i == 1) peers.push_back({2, false});
    if (i == 2) {
      peers.push_back({1, true});
      peers.push_back({3, true});
    }
    if (i == 3) peers.push_back({2, false});
    return peers;
  }));
  const auto entry = analyze_single(net);
  EXPECT_EQ(entry.disconnected_pairs, 0u);
}

TEST(Ibgp, IsolatedRouterFlagged) {
  const auto net = network_of(lan_as(3, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    if (i == 1) peers.push_back({2, false});
    if (i == 2) peers.push_back({1, false});
    return peers;  // router 3 has no sessions
  }));
  const auto entry = analyze_single(net);
  ASSERT_EQ(entry.isolated_routers.size(), 1u);
  EXPECT_EQ(net.routers()[entry.isolated_routers[0]].hostname, "b3");
}

TEST(Ibgp, AsNumberReuseYieldsComponentsNotHoles) {
  // Two disjoint pairs sharing AS 65000 (private-AS reuse across
  // compartments): two components, no intra-component holes.
  const auto net = network_of(lan_as(4, [](int i) {
    std::vector<std::pair<int, bool>> peers;
    if (i == 1) peers.push_back({2, false});
    if (i == 2) peers.push_back({1, false});
    if (i == 3) peers.push_back({4, false});
    if (i == 4) peers.push_back({3, false});
    return peers;
  }));
  const auto entry = analyze_single(net);
  EXPECT_EQ(entry.components, 2u);
  EXPECT_EQ(entry.disconnected_pairs, 0u);
  EXPECT_TRUE(entry.isolated_routers.empty());
}

TEST(Ibgp, SingleRouterAsIsTrivial) {
  const auto net = network_of(
      {"hostname solo\nrouter bgp 64700\n"});
  const auto instances = graph::compute_instances(net);
  const auto structures = analyze_ibgp(net, instances);
  ASSERT_EQ(structures.size(), 1u);
  EXPECT_EQ(structures[0].routers.size(), 1u);
  EXPECT_EQ(structures[0].sessions, 0u);
}

TEST(Ibgp, BackboneReflectorDesignIsSound) {
  synth::BackboneParams p;
  p.access_routers = 30;
  p.external_peers = 20;
  const auto net = model::Network::build(
      synth::reparse(synth::make_backbone(p).configs));
  const auto instances = graph::compute_instances(net);
  const auto structures = analyze_ibgp(net, instances);
  ASSERT_EQ(structures.size(), 1u);
  const auto& entry = structures[0];
  EXPECT_EQ(entry.routers.size(), 42u);  // 12 core + 30 access
  EXPECT_TRUE(entry.uses_route_reflection());
  EXPECT_FALSE(entry.full_mesh());  // that's the point of the reflectors
  EXPECT_EQ(entry.disconnected_pairs, 0u);  // and signaling is complete
  EXPECT_TRUE(entry.isolated_routers.empty());
}

TEST(Ibgp, Net5AvoidsTheMeshEntirely) {
  const auto net5 = synth::make_net5();
  const auto net = model::Network::build(synth::reparse(net5.configs));
  const auto instances = graph::compute_instances(net);
  const auto structures = analyze_ibgp(net, instances);
  // Many small ASs; none anywhere near a full mesh of the network size,
  // and none with signaling holes inside the AS.
  for (const auto& entry : structures) {
    if (entry.routers.size() < 2) continue;
    EXPECT_EQ(entry.disconnected_pairs, 0u) << "AS " << entry.as_number;
    EXPECT_LE(entry.routers.size(), 10u);
  }
}

}  // namespace
}  // namespace rd::analysis
