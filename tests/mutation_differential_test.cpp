// Self-grading differential suite for the redistribution-safety rules
// (RD060-RD064): the synthetic fleet must be clean in that rule band, and a
// seeded mutation injector plants one instance of each defect class and
// asserts the analysis flags the planted command — rule id, router, and
// source line all matching the plant record, with the line re-derived by
// emitting and reparsing the mutated configs (the analysis and the test see
// the same provenance).
//
// Stress volume is dialable: RD_FUZZ_SEEDS (default 2) injection seeds per
// defect kind.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/rules.h"
#include "model/network.h"
#include "synth/emit.h"
#include "synth/fleet.h"
#include "synth/mutate.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace rd::analysis {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(util::trim(raw), parsed) || parsed == 0) {
    return fallback;
  }
  return parsed;
}

/// Only the five dataflow rules: the differential grades RD060-RD064, and
/// the full 31-rule engine would spend almost all its time in rules under
/// test elsewhere (symbolic header space on the 500-router backbones).
RuleEngine redistribution_engine() {
  RuleEngine engine;
  engine.add({"RD060", "redistribution-loop", "dataflow", Severity::kError,
              "Differential copy of RD060.", "§6.1"},
             RedistributionSafety::redistribution_loop);
  engine.add({"RD061", "metric-loss-at-boundary", "dataflow",
              Severity::kWarning, "Differential copy of RD061.", "§5.1"},
             RedistributionSafety::metric_loss);
  engine.add({"RD062", "administrative-distance-inversion", "dataflow",
              Severity::kWarning, "Differential copy of RD062.", "§6.1"},
             RedistributionSafety::distance_inversion);
  engine.add({"RD063", "mutual-redistribution-without-filter", "dataflow",
              Severity::kWarning, "Differential copy of RD063.", "§6.1"},
             RedistributionSafety::unfiltered_mutual);
  engine.add({"RD064", "single-point-redistribution", "dataflow",
              Severity::kWarning, "Differential copy of RD064.", "§8.1"},
             RedistributionSafety::single_point);
  return engine;
}

const synth::Fleet& fleet() {
  static const synth::Fleet f = synth::generate_fleet(1);
  return f;
}

std::string describe(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += "  " + f.rule_id + " @ " + f.router_name + ":" +
           std::to_string(f.where.line) + " " + f.subject + " — " + f.detail +
           "\n";
  }
  return out;
}

constexpr synth::DefectKind kAllKinds[] = {
    synth::DefectKind::kRedistributionLoop,
    synth::DefectKind::kMetricLoss,
    synth::DefectKind::kDistanceInversion,
    synth::DefectKind::kUnfilteredMutual,
    synth::DefectKind::kSinglePointRedistribution,
};

TEST(MutationDifferential, CleanFleetIsQuietInTheRedistributionBand) {
  const auto engine = redistribution_engine();
  for (const auto& net : fleet().networks) {
    auto copy = net.configs;
    const auto network = model::Network::build(std::move(copy));
    const auto result = engine.run(network);
    EXPECT_TRUE(result.findings.empty())
        << net.name << " (" << net.archetype << "):\n"
        << describe(result.findings);
  }
}

TEST(MutationDifferential, EveryPlantedDefectIsFlaggedWithProvenance) {
  const auto engine = redistribution_engine();
  const auto seeds = env_u64("RD_FUZZ_SEEDS", 2);
  for (const synth::DefectKind kind : kAllKinds) {
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      bool planted = false;
      for (const auto& net : fleet().networks) {
        synth::SynthNetwork copy = net;
        const auto plant = synth::inject_defect(copy, kind, seed);
        if (!plant) continue;
        planted = true;
        EXPECT_EQ(plant->rule_id, synth::defect_rule_id(kind));

        // The expected line comes from reparsing the mutated configs — the
        // exact text the analysis consumes.
        const auto reparsed = synth::reparse(copy.configs);
        ASSERT_EQ(reparsed.size(), copy.configs.size());
        ASSERT_LT(plant->router, reparsed.size());
        const auto& cfg = reparsed[plant->router];
        ASSERT_LT(plant->stanza, cfg.router_stanzas.size());
        const auto& stanza = cfg.router_stanzas[plant->stanza];
        ASSERT_LT(plant->redistribute, stanza.redistributes.size());
        const std::size_t expected_line =
            stanza.redistributes[plant->redistribute].line;
        ASSERT_GT(expected_line, 0u);

        const auto network = model::Network::build(reparsed);
        const auto result = engine.run(network);
        bool hit = false;
        for (const auto& f : result.findings) {
          if (f.rule_id == plant->rule_id &&
              f.router == static_cast<model::RouterId>(plant->router) &&
              f.where.line == expected_line &&
              f.detail.find(plant->detail_contains) != std::string::npos) {
            hit = true;
          }
        }
        EXPECT_TRUE(hit)
            << net.name << " (" << net.archetype << "), planted "
            << plant->rule_id << " seed " << seed << " at router "
            << plant->router << " line " << expected_line << "; findings:\n"
            << describe(result.findings);
        // One verified network per (kind, seed) bounds the runtime; the
        // seed dimension varies which network and site get picked.
        break;
      }
      EXPECT_TRUE(planted) << "no fleet network eligible for "
                           << synth::defect_rule_id(kind) << " seed " << seed;
    }
  }
}

TEST(MutationDifferential, PlantedNetworkReportsAreByteIdenticalAcrossThreads) {
  // The full default engine (all 31 rules) on a planted loop network:
  // serial, 1-, 2- and 8-thread runs must serialize identically.
  for (const auto& net : fleet().networks) {
    synth::SynthNetwork copy = net;
    const auto plant = synth::inject_defect(
        copy, synth::DefectKind::kRedistributionLoop, 0);
    if (!plant) continue;
    const auto network = model::Network::build(synth::reparse(copy.configs));
    const auto engine = RuleEngine::with_default_rules();
    const auto serial = engine.run(network);
    bool saw_loop = false;
    for (const auto& f : serial.findings) {
      if (f.rule_id == "RD060") saw_loop = true;
    }
    EXPECT_TRUE(saw_loop);
    const auto serial_json = findings_to_json(engine, serial, net.name);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      util::ThreadPool pool(threads);
      const auto parallel = engine.run(network, pool);
      EXPECT_EQ(findings_to_json(engine, parallel, net.name), serial_json)
          << threads << " threads";
    }
    return;  // one planted network is enough
  }
  FAIL() << "no fleet network eligible for a planted redistribution loop";
}

}  // namespace
}  // namespace rd::analysis
