#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "config/parser.h"
#include "graph/instances.h"
#include "model/network.h"
#include "testutil.h"
#include "util/thread_pool.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

std::vector<const Finding*> findings_for(const RuleEngine::Result& result,
                                         std::string_view rule_id) {
  std::vector<const Finding*> out;
  for (const auto& f : result.findings) {
    if (f.rule_id == rule_id) out.push_back(&f);
  }
  return out;
}

/// Two routers, RIP and OSPF both spanning both, with a filterless loop:
/// h redistributes RIP into OSPF, s redistributes OSPF back into RIP.
/// RIP's leaf subnet (10.1/24) exits at h, transits OSPF, and re-enters
/// RIP at s with OSPF-external distance 110 < RIP 120.
const char* kLoopHub =
    "hostname h\n"                                  // 1
    "interface Ethernet0\n"                         // 2
    " ip address 10.1.0.1 255.255.255.0\n"          // 3
    "interface Serial0\n"                           // 4
    " ip address 10.0.0.1 255.255.255.252\n"        // 5
    "router rip\n"                                  // 6
    " network 10.1.0.0 0.0.0.255\n"                 // 7
    " network 10.0.0.0 0.0.0.3\n"                   // 8
    "router ospf 1\n"                               // 9
    " network 10.0.0.0 0.0.0.3 area 0\n"            // 10
    " redistribute rip metric 10\n";                // 11
const char* kLoopSpoke =
    "hostname s\n"                                  // 1
    "interface Serial0\n"                           // 2
    " ip address 10.0.0.2 255.255.255.252\n"        // 3
    "router rip\n"                                  // 4
    " network 10.0.0.0 0.0.0.3\n"                   // 5
    " redistribute ospf 1 metric 5\n"               // 6
    "router ospf 1\n"                               // 7
    " network 10.0.0.0 0.0.0.3 area 0\n";           // 8

// --- protocol tables ---------------------------------------------------------

TEST(Dataflow, DistanceAndMetricTables) {
  using config::RoutingProtocol;
  EXPECT_EQ(distance_internal(RoutingProtocol::kEigrp), 90);
  EXPECT_EQ(distance_internal(RoutingProtocol::kOspf), 110);
  EXPECT_EQ(distance_internal(RoutingProtocol::kRip), 120);
  EXPECT_EQ(distance_internal(RoutingProtocol::kBgp), 200);
  EXPECT_EQ(distance_external(RoutingProtocol::kEigrp), 170);
  EXPECT_EQ(distance_external(RoutingProtocol::kOspf), 110);
  EXPECT_EQ(distance_external(RoutingProtocol::kBgp), 200);
  EXPECT_LT(distance_external(RoutingProtocol::kOspf),
            distance_internal(RoutingProtocol::kRip));

  EXPECT_EQ(metric_class(RoutingProtocol::kRip), MetricClass::kHopCount);
  EXPECT_EQ(metric_class(RoutingProtocol::kOspf), MetricClass::kCost);
  EXPECT_EQ(metric_class(RoutingProtocol::kIsis), MetricClass::kCost);
  EXPECT_EQ(metric_class(RoutingProtocol::kEigrp), MetricClass::kComposite);
  EXPECT_EQ(metric_class(RoutingProtocol::kBgp), MetricClass::kPath);
  EXPECT_EQ(metric_class_name(MetricClass::kHopCount), "hop-count");
  EXPECT_EQ(metric_class_name(MetricClass::kPath), "path-attribute");
}

// --- the fixpoint engine -----------------------------------------------------

TEST(Dataflow, EngineDiscoversEdgesAndConverges) {
  const auto net = network_of({kLoopHub, kLoopSpoke});
  const auto graph = graph::InstanceGraph::build(net);
  InstanceDataflow flow(net, graph);

  // One RIP->OSPF edge at h, one OSPF->RIP edge at s.
  ASSERT_EQ(flow.edges().size(), 2u);
  for (const auto& e : flow.edges()) {
    EXPECT_EQ(e.kind, DataflowEdge::Kind::kRedistribution);
    EXPECT_NE(e.from, e.to);
    EXPECT_GT(e.line, 0u);
  }
  EXPECT_TRUE(flow.converged());
  EXPECT_GT(flow.fact_count(), 0u);
  EXPECT_GE(flow.iterations(), 1u);
  // The loop is live: some RIP-born fact came back to RIP.
  ASSERT_EQ(flow.loop_events().size(), 1u);
  const auto& loop = flow.loop_events()[0];
  EXPECT_EQ(flow.edges()[loop.edge].to, loop.origin);
  // Entries were recorded for both instances.
  EXPECT_FALSE(flow.entries().empty());
}

TEST(Dataflow, FactProvenanceSurvivesTransit) {
  const auto net = network_of({kLoopHub, kLoopSpoke});
  const auto graph = graph::InstanceGraph::build(net);
  InstanceDataflow flow(net, graph);
  ASSERT_EQ(flow.loop_events().size(), 1u);
  // The witness left its origin at h (the only exit), and the closing edge
  // sits on s — a genuine multi-router cycle.
  const auto& loop = flow.loop_events()[0];
  EXPECT_NE(loop.exit_router, flow.edges()[loop.edge].router);
}

// --- RD060: redistribution loop ----------------------------------------------

TEST(Dataflow, Rd060FlagsLoopAtClosingEdge) {
  const auto net = network_of({kLoopHub, kLoopSpoke});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto loops = findings_for(result, "RD060");
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->severity, Severity::kError);
  EXPECT_EQ(loops[0]->router_name, "s");    // where the cycle closes
  EXPECT_EQ(loops[0]->router_b_name, "h");  // where the routes left RIP
  EXPECT_EQ(loops[0]->where.file, "cfg1");
  EXPECT_EQ(loops[0]->where.line, 6u);  // "redistribute ospf 1 metric 5"
  EXPECT_NE(loops[0]->detail.find("re-injects"), std::string::npos);
  EXPECT_GT(result.errors, 0u);
}

TEST(Dataflow, Rd060QuietWhenCycleStaysInsideOneRouter) {
  // Mutual bare redistribution on ONE router: the router's own RIB already
  // prefers the native route, so there is no multi-router cycle to flag.
  // (RD063 still fires — the filterless mutual pair is a real smell.)
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 1\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD060").empty());
  EXPECT_EQ(findings_for(result, "RD063").size(), 1u);
}

TEST(Dataflow, Rd060QuietWhenDistanceDoesNotInvert) {
  // An EIGRP <-> OSPF mutual pair across two routers: the multi-router
  // cycle exists topologically in both directions, but neither carrier's
  // external distance (OSPF 110, EIGRP 170) beats the other protocol's
  // native distance (EIGRP 90, OSPF 110), so the routing system
  // self-corrects and the rule stays quiet.
  const auto net = network_of(
      {"hostname h\n"
       "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
       "router eigrp 10\n network 10.1.0.0 0.0.0.255\n"
       " network 10.0.0.0 0.0.0.3\n"
       "router ospf 7\n network 10.0.0.0 0.0.0.3 area 0\n"
       " redistribute eigrp 10 metric 100\n",
       "hostname s\n"
       "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
       "router eigrp 10\n network 10.0.0.0 0.0.0.3\n"
       " redistribute ospf 7 metric 1000\n"
       "router ospf 7\n network 10.0.0.0 0.0.0.3 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD060").empty());
}

// --- RD061: metric loss ------------------------------------------------------

TEST(Dataflow, Rd061FlagsMetriclessCrossClassBoundary) {
  const auto net = network_of(               // line
      {"hostname r1\n"                       // 1
       "interface Ethernet0\n"               // 2
       " ip address 10.0.0.1 255.255.255.0\n"  // 3
       "interface Ethernet1\n"               // 4
       " ip address 10.1.0.1 255.255.255.0\n"  // 5
       "router ospf 1\n"                     // 6
       " network 10.0.0.0 0.0.0.255 area 0\n"  // 7
       "router rip\n"                        // 8
       " network 10.1.0.0 0.0.0.255\n"       // 9
       " redistribute ospf 1\n"});           // 10
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto losses = findings_for(result, "RD061");
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_EQ(losses[0]->severity, Severity::kWarning);
  EXPECT_EQ(losses[0]->router_name, "r1");
  EXPECT_EQ(losses[0]->where.line, 10u);
  EXPECT_NE(losses[0]->detail.find("no metric mapping"), std::string::npos);
  EXPECT_NE(losses[0]->detail.find("cost"), std::string::npos);
  EXPECT_NE(losses[0]->detail.find("hop-count"), std::string::npos);
}

TEST(Dataflow, Rd061QuietWithMetricMapping) {
  const char* base_head =
      "hostname r1\n"
      "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
      "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
      "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";
  // Any of the three mapping mechanisms silences the rule.
  for (const char* tail :
       {"router rip\n network 10.1.0.0 0.0.0.255\n"
        " redistribute ospf 1 metric 5\n",
        "router rip\n network 10.1.0.0 0.0.0.255\n"
        " default-metric 5\n redistribute ospf 1\n",
        "route-map SETM permit 10\n set metric 5\n"
        "router rip\n network 10.1.0.0 0.0.0.255\n"
        " redistribute ospf 1 route-map SETM\n"}) {
    const auto net = network_of({std::string(base_head) + tail});
    const auto result = RuleEngine::with_default_rules().run(net);
    EXPECT_TRUE(findings_for(result, "RD061").empty()) << tail;
  }
}

TEST(Dataflow, Rd061QuietWithinOneMetricClass) {
  // OSPF -> OSPF: same algebra, no mapping needed.
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD061").empty());
}

// --- RD062: administrative-distance inversion --------------------------------

TEST(Dataflow, Rd062FlagsInversionOnSharedRouter) {
  const auto net = network_of(               // r1 lines
      {"hostname r1\n"                       // 1
       "interface Ethernet0\n"               // 2
       " ip address 10.0.0.1 255.255.255.0\n"  // 3
       "interface Ethernet1\n"               // 4
       " ip address 10.1.0.1 255.255.255.0\n"  // 5
       "router rip\n"                        // 6
       " network 10.0.0.0 0.0.0.255\n"       // 7
       " network 10.1.0.0 0.0.0.255\n"       // 8
       "router ospf 1\n"                     // 9
       " network 10.0.0.0 0.0.0.255 area 0\n"  // 10
       " redistribute rip metric 10\n",      // 11
       "hostname r2\n"
       "interface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n"
       "router rip\n network 10.0.0.0 0.0.0.255\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto inversions = findings_for(result, "RD062");
  ASSERT_EQ(inversions.size(), 1u);
  // OSPF-external 110 beats RIP 120 on r2, which hosts both instances and
  // is not the redistribution point.
  EXPECT_EQ(inversions[0]->router_name, "r1");
  EXPECT_EQ(inversions[0]->router_b_name, "r2");
  EXPECT_EQ(inversions[0]->where.line, 11u);
  EXPECT_NE(inversions[0]->detail.find("administrative distance 110"),
            std::string::npos);
  EXPECT_NE(inversions[0]->detail.find("native distance 120"),
            std::string::npos);
}

TEST(Dataflow, Rd062QuietWithoutASecondSharedRouter) {
  // Same inversion, but r2 does not run RIP: the only router hosting both
  // instances is the redistribution point itself, whose RIB already holds
  // the native route — nothing to invert.
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "router rip\n network 10.0.0.0 0.0.0.255\n"
       " network 10.1.0.0 0.0.0.255\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute rip metric 10\n",
       "hostname r2\n"
       "interface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD062").empty());
}

// --- RD063: mutual redistribution without filter -----------------------------

TEST(Dataflow, Rd063FlagsOpenDirectionOnce) {
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "access-list 10 permit 10.1.0.0 0.0.0.255\n"
       "route-map GUARD permit 10\n"
       " match ip address 10\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2 route-map GUARD\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 1\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto mutual = findings_for(result, "RD063");
  ASSERT_EQ(mutual.size(), 1u);  // one finding per pair, not per direction
  EXPECT_NE(mutual[0]->subject.find("<->"), std::string::npos);
  EXPECT_NE(mutual[0]->detail.find("no route-map"), std::string::npos);
}

TEST(Dataflow, Rd063BlanketPermitMapCountsAsOpen) {
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "access-list 10 permit 10.1.0.0 0.0.0.255\n"
       "route-map GUARD permit 10\n"
       " match ip address 10\n"
       "route-map WAVE permit 10\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2 route-map GUARD\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 1 route-map WAVE\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto mutual = findings_for(result, "RD063");
  ASSERT_EQ(mutual.size(), 1u);
  EXPECT_NE(mutual[0]->detail.find("permits every route"), std::string::npos);
}

TEST(Dataflow, Rd063QuietWhenBothDirectionsFiltered) {
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "access-list 10 permit 10.1.0.0 0.0.0.255\n"
       "access-list 20 permit 10.0.0.0 0.0.0.255\n"
       "route-map G1 permit 10\n"
       " match ip address 10\n"
       "route-map G2 permit 10\n"
       " match ip address 20\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2 route-map G1\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 1 route-map G2\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD063").empty());
}

// --- RD064: single-point redistribution --------------------------------------

/// ospf 1 = {r1, r2}, ospf 2 = {r2, r3}; the only exchange is on r2,
/// filtered both ways so RD063 stays quiet and only the structure is wrong.
std::vector<std::string> single_point_fleet(bool add_backup) {
  std::vector<std::string> configs = {
      "hostname r1\n"
      "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
      "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
      "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
      " network 10.1.0.0 0.0.0.255 area 0\n",
      "hostname r2\n"
      "interface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n"
      "interface Ethernet1\n ip address 10.2.0.2 255.255.255.0\n"
      "access-list 10 permit 10.1.0.0 0.0.0.255\n"
      "access-list 20 permit 10.2.0.0 0.0.0.255\n"
      "route-map R12 permit 10\n match ip address 20\n"
      "route-map R21 permit 10\n match ip address 10\n"
      "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
      " redistribute ospf 2 route-map R12\n"
      "router ospf 2\n network 10.2.0.0 0.0.0.255 area 0\n"
      " redistribute ospf 1 route-map R21\n",
      "hostname r3\n"
      "interface Ethernet0\n ip address 10.2.0.3 255.255.255.0\n"
      "router ospf 2\n network 10.2.0.0 0.0.0.255 area 0\n"};
  if (add_backup) {
    // r4 hosts both instances and a second (filtered) exchange.
    configs.push_back(
        "hostname r4\n"
        "interface Ethernet0\n ip address 10.0.0.4 255.255.255.0\n"
        "interface Ethernet1\n ip address 10.2.0.4 255.255.255.0\n"
        "access-list 10 permit 10.1.0.0 0.0.0.255\n"
        "route-map R21B permit 10\n match ip address 10\n"
        "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
        "router ospf 2\n network 10.2.0.0 0.0.0.255 area 0\n"
        " redistribute ospf 1 route-map R21B\n");
  }
  return configs;
}

TEST(Dataflow, Rd064FlagsSinglePointOfExchange) {
  const auto net = network_of(single_point_fleet(false));
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto points = findings_for(result, "RD064");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0]->router_name, "r2");
  EXPECT_NE(points[0]->subject.find("<->"), std::string::npos);
  EXPECT_NE(points[0]->detail.find("only route exchange"), std::string::npos);
  EXPECT_GT(points[0]->where.line, 0u);
}

TEST(Dataflow, Rd064QuietWithRedundantExchange) {
  const auto net = network_of(single_point_fleet(true));
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD064").empty());
}

// --- provenance / fingerprint stability --------------------------------------

TEST(Dataflow, Rd060FingerprintIsLineStable) {
  // A comment shifts the closing redistribute; the finding must move its
  // line but keep its fingerprint (baselines survive reformatting).
  const std::string shifted =
      std::string("! a comment pushing everything down\n") + kLoopSpoke;
  const auto engine = RuleEngine::with_default_rules();
  const auto run_a = engine.run(network_of({kLoopHub, kLoopSpoke}));
  const auto run_b = engine.run(network_of({kLoopHub, shifted}));
  const auto a = findings_for(run_a, "RD060");
  const auto b = findings_for(run_b, "RD060");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0]->where.line + 1, b[0]->where.line);
  EXPECT_EQ(finding_fingerprint(*a[0]), finding_fingerprint(*b[0]));
}

TEST(Dataflow, RulesHonorSuppressionComments) {
  const std::string suppressed =
      std::string("! rdlint-disable RD060 RD062 RD063\n") + kLoopSpoke;
  const auto result = RuleEngine::with_default_rules().run(
      network_of({kLoopHub, suppressed}));
  EXPECT_TRUE(findings_for(result, "RD060").empty());
  EXPECT_GE(result.suppressed, 1u);
}

TEST(Dataflow, BaselineTracksFixedAndNewFindings) {
  const auto engine = RuleEngine::with_default_rules();
  // Snapshot 1: the loop network. Snapshot 2: the closing redistribute is
  // filtered away (RD060/RD062/RD063 fixed) but the hub's metric mapping
  // was dropped (RD061 appears).
  const char* fixed_spoke =
      "hostname s\n"
      "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n"
      "access-list 10 permit 10.2.0.0 0.0.0.255\n"
      "route-map GUARD permit 10\n match ip address 10\n"
      "router rip\n network 10.0.0.0 0.0.0.3\n"
      " redistribute ospf 1 metric 5 route-map GUARD\n"
      "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n";
  const char* metricless_hub =
      "hostname h\n"
      "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
      "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
      "router rip\n network 10.1.0.0 0.0.0.255\n"
      " network 10.0.0.0 0.0.0.3\n"
      "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"
      " redistribute rip\n";
  const auto run1 = engine.run(network_of({kLoopHub, kLoopSpoke}));
  ASSERT_EQ(findings_for(run1, "RD060").size(), 1u);
  const auto baseline =
      baseline_fingerprints(findings_to_json(engine, run1, "snap1"));
  ASSERT_TRUE(baseline.has_value());

  const auto run2 = engine.run(network_of({metricless_hub, fixed_spoke}));
  const auto delta = diff_against_baseline(run2.findings, *baseline);
  EXPECT_TRUE(std::any_of(
      delta.new_findings.begin(), delta.new_findings.end(),
      [](const Finding& f) { return f.rule_id == "RD061"; }));
  EXPECT_TRUE(std::any_of(delta.fixed.begin(), delta.fixed.end(),
                          [](const std::string& fp) {
                            return fp.substr(0, 6) == "RD060|";
                          }));
}

// --- determinism -------------------------------------------------------------

TEST(Dataflow, FindingsAreByteIdenticalAcrossThreadCounts) {
  const auto net = network_of({kLoopHub, kLoopSpoke});
  const auto engine = RuleEngine::with_default_rules();
  const auto serial = engine.run(net);
  const auto json = findings_to_json(engine, serial, "loop");
  util::ThreadPool pool2(2);
  util::ThreadPool pool8(8);
  for (util::ThreadPool* pool : {&pool2, &pool8}) {
    EXPECT_EQ(findings_to_json(engine, engine.run(net, *pool), "loop"), json);
  }
}

}  // namespace
}  // namespace rd::analysis
