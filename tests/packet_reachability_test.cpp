#include <gtest/gtest.h>

#include "analysis/packet_reachability.h"
#include "graph/instances.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::addr;
using rd::test::network_of;

struct Fixture {
  model::Network network;
  graph::InstanceSet instances;
  ReachabilityAnalysis routes;

  explicit Fixture(std::vector<std::string> texts)
      : network(rd::test::network_of(std::move(texts))),
        instances(graph::compute_instances(network)),
        routes(ReachabilityAnalysis::run(network, instances)) {}

  PacketReachability analysis() const {
    return PacketReachability(network, instances, routes);
  }
};

/// Two routed LANs on one router, with a selective inbound filter on LAN A:
/// only host .10 may reach the server on TCP/1433.
Fixture filtered_fixture() {
  return Fixture(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip access-group 101 in\n"
       "interface FastEthernet0/1\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.2.0.0 0.0.255.255 area 0\n"
       "access-list 101 permit tcp host 10.1.0.10 host 10.2.0.5 eq 1433\n"
       "access-list 101 deny tcp any any eq 1433\n"
       "access-list 101 permit ip any any\n"});
}

TEST(PacketReachability, SelectiveApplicationAccess) {
  // The paper §5.3: filters "dictate which set of hosts can use a
  // particular application through selective filtering on the port".
  const auto fixture = filtered_fixture();
  const auto pr = fixture.analysis();
  EXPECT_TRUE(pr.can_use_application(addr("10.1.0.10"), addr("10.2.0.5"),
                                     "tcp", 1433));
  EXPECT_FALSE(pr.can_use_application(addr("10.1.0.11"), addr("10.2.0.5"),
                                      "tcp", 1433));
}

TEST(PacketReachability, OtherTrafficUnaffected) {
  const auto fixture = filtered_fixture();
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("10.1.0.11");
  query.destination = addr("10.2.0.5");
  query.destination_port = 80;
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kPossiblyReachable);
}

TEST(PacketReachability, FilteredVerdictNamed) {
  const auto fixture = filtered_fixture();
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("10.1.0.11");
  query.destination = addr("10.2.0.5");
  query.destination_port = 1433;
  query.protocol = "tcp";
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kFilteredAtSource);
  EXPECT_EQ(to_string(FlowVerdict::kFilteredAtSource), "filtered-at-source");
}

TEST(PacketReachability, OutboundFilterAtDestination) {
  const auto fixture = Fixture(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       " ip access-group 102 out\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.2.0.0 0.0.255.255 area 0\n"
       "access-list 102 deny udp any any eq 161\n"
       "access-list 102 permit ip any any\n"});
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("10.1.0.9");
  query.destination = addr("10.2.0.9");
  query.destination_port = 161;
  query.protocol = "udp";
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kFilteredAtDestination);
}

TEST(PacketReachability, NoRouteBetweenIsolatedInstances) {
  const auto fixture = Fixture(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n",
       "hostname b\ninterface FastEthernet0/0\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"});
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("10.1.0.9");
  query.destination = addr("10.2.0.9");
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kNoRoute);
}

TEST(PacketReachability, ReturnRouteRequired) {
  // a's OSPF learns b's EIGRP space via redistribution on b, but b never
  // learns a's space: one-way reachability only.
  const auto fixture = Fixture(
      {"hostname ab\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute eigrp 9\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"});
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("10.1.0.9");
  query.destination = addr("10.2.0.9");
  // Forward route exists (OSPF holds the EIGRP space) but not the reverse.
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kNoReturnRoute);
}

TEST(PacketReachability, UnattachedEndpoints) {
  const auto fixture = Fixture({"hostname a\ninterface FastEthernet0/0\n"
                                " ip address 10.1.0.1 255.255.255.0\n"
                                "router ospf 1\n"
                                " network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto pr = fixture.analysis();
  FlowQuery query;
  query.source = addr("192.168.9.9");
  query.destination = addr("10.1.0.9");
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kSourceNotAttached);

  query.source = addr("10.1.0.9");
  query.destination = addr("192.168.9.9");
  EXPECT_EQ(pr.evaluate(query), FlowVerdict::kDestinationNotAttached);
}

TEST(PacketReachability, PimDisabledNetworkWide) {
  // The paper §5.3: filters "drop packets of a specific protocol (e.g.,
  // PIM) ... effectively disabling that protocol in parts of the network".
  const auto fixture = Fixture(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip access-group 103 in\n"
       "interface FastEthernet0/1\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.2.0.0 0.0.255.255 area 0\n"
       "access-list 103 deny pim any any\n"
       "access-list 103 permit ip any any\n"});
  const auto pr = fixture.analysis();
  FlowQuery pim;
  pim.source = addr("10.1.0.9");
  pim.destination = addr("10.2.0.9");
  pim.protocol = "pim";
  EXPECT_EQ(pr.evaluate(pim), FlowVerdict::kFilteredAtSource);
  FlowQuery icmp = pim;
  icmp.protocol = "icmp";
  EXPECT_EQ(pr.evaluate(icmp), FlowVerdict::kPossiblyReachable);
}

}  // namespace
}  // namespace rd::analysis
