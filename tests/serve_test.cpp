// The rdd serve layer: frame protocol round-trips (including the oversize
// guard), Service request dispatch, and the determinism contract — every
// analysis response is byte-identical to the shared query functions run
// over a directly-built network, at pool sizes 1/2/8, across repeats, and
// under concurrent multi-client hammering (in-process and through a real
// Unix-socket Server). A client that hangs up without reading its reply
// (EPIPE) must not take the daemon down.

#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/rules.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "serve/protocol.h"
#include "serve/queries.h"
#include "serve/server.h"
#include "serve/service.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

std::filesystem::path fleet_dir() {
  static const auto dir = [] {
    const auto d = std::filesystem::path(testing::TempDir()) / "rd_serve_fleet";
    std::filesystem::remove_all(d);
    synth::ManagedEnterpriseParams params;
    params.regions = 2;
    params.spokes_per_region = 4;
    params.ebgp_spoke_rate = 0.3;
    synth::emit_network(synth::make_managed_enterprise(params).configs, d);
    return d;
  }();
  return dir;
}

/// The one-shot CLI's construction of the same fleet: parse with file
/// provenance, build, graph. What every daemon response is diffed against.
struct Reference {
  model::Network network;
  graph::InstanceGraph graph;

  static const Reference& instance() {
    static Reference* ref = [] {
      auto network = model::Network::build(synth::load_network(fleet_dir()));
      auto graph = graph::InstanceGraph::build(network);
      return new Reference{std::move(network), std::move(graph)};
    }();
    return *ref;
  }
};

// --- Frame protocol ---------------------------------------------------------

TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payloads[] = {"", "x", std::string(100000, 'q'),
                                  std::string("\x00\xff binary", 9)};
  for (const auto& payload : payloads) {
    ASSERT_TRUE(serve::write_frame(fds[0], payload));
    std::string got;
    std::string error;
    ASSERT_TRUE(serve::read_frame(fds[1], got, &error)) << error;
    EXPECT_EQ(got, payload);
  }
  // Clean EOF: close one end, read reports false with no error text.
  ::close(fds[0]);
  std::string got;
  std::string error;
  EXPECT_FALSE(serve::read_frame(fds[1], got, &error));
  EXPECT_TRUE(error.empty());
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizeFrameIsRejectedWithoutAllocating) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix claiming 3.5 GiB.
  const unsigned char evil[4] = {0xE0, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(fds[0], evil, 4, 0), 4);
  std::string got;
  std::string error;
  EXPECT_FALSE(serve::read_frame(fds[1], got, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  // And the writer refuses to produce one: a payload past the limit is
  // rejected before any bytes hit the wire.
  const std::string too_big(serve::kMaxFrameBytes + 1, 'z');
  EXPECT_FALSE(serve::write_frame(fds[0], too_big));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, TruncatedFrameBodyIsAnError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char prefix[4] = {0, 0, 0, 10};  // promises 10 bytes
  ASSERT_EQ(::send(fds[0], prefix, 4, 0), 4);
  ASSERT_EQ(::send(fds[0], "abc", 3, 0), 3);  // delivers 3
  ::close(fds[0]);
  std::string got;
  std::string error;
  EXPECT_FALSE(serve::read_frame(fds[1], got, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  ::close(fds[1]);
}

TEST(ServeProtocol, RequestAndResponseJsonRoundTrip) {
  serve::Request request;
  request.op = "reachability";
  request.fleet = "corp";
  request.source = "10.0.0.1";
  request.destination = "10.0.1.1";
  request.naive = true;
  const auto decoded = serve::decode_request(serve::encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, request.op);
  EXPECT_EQ(decoded->fleet, request.fleet);
  EXPECT_EQ(decoded->source, request.source);
  EXPECT_EQ(decoded->destination, request.destination);
  EXPECT_TRUE(decoded->naive);

  serve::Response response;
  response.ok = false;
  response.exit_code = 2;
  response.output = "line one\nline two\n";
  response.error = "unknown fleet 'x'\n";
  const auto back = serve::decode_response(serve::encode_response(response));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->exit_code, 2);
  EXPECT_EQ(back->output, response.output);
  EXPECT_EQ(back->error, response.error);

  EXPECT_FALSE(serve::decode_request("not json"));
  EXPECT_FALSE(serve::decode_request("{\"no_op\": 1}"));
  EXPECT_FALSE(serve::decode_response("{\"ok\": \"maybe\"}"));
}

// --- Construction equivalence -----------------------------------------------

TEST(ServeService, CachedBuildMatchesDirectLoad) {
  // The daemon builds fleets through the parse cache with provenance
  // stamping; the CLIs parse files directly. Identical models — the root
  // of the byte-identity contract.
  auto loaded = synth::load_network_texts_named(fleet_dir());
  ASSERT_FALSE(loaded.texts.empty());
  pipeline::ParseCache cache;
  util::ThreadPool pool(2);
  const auto cached = pipeline::build_network_cached(loaded.texts,
                                                     loaded.names, cache, pool);
  EXPECT_EQ(pipeline::network_signature(cached),
            pipeline::network_signature(Reference::instance().network));
}

// --- Service dispatch and determinism ---------------------------------------

serve::Request op_request(const char* op) {
  serve::Request request;
  request.op = op;
  return request;
}

std::vector<serve::Request> analysis_requests() {
  std::vector<serve::Request> requests;
  for (const char* op :
       {"audit", "whatif", "reachability", "headerspace", "simulate"}) {
    serve::Request r;
    r.op = op;
    requests.push_back(r);
  }
  for (const char* format : {"text", "json", "sarif"}) {
    serve::Request r;
    r.op = "rdlint";
    r.format = format;
    requests.push_back(r);
  }
  return requests;
}

/// What the one-shot CLIs would print for this request, computed from the
/// reference network via the same shared query functions.
serve::QueryResult reference_result(const serve::Request& request,
                                    util::ThreadPool& pool) {
  const auto& ref = Reference::instance();
  if (request.op == "audit") {
    return serve::audit_report(ref.network, ref.graph, pool);
  }
  if (request.op == "whatif") {
    return serve::whatif_report(ref.network, ref.graph, pool);
  }
  if (request.op == "simulate") {
    return serve::simulate_report(ref.network, ref.graph, request.seed,
                                  request.until_ms, pool);
  }
  if (request.op == "rdlint") {
    // Reports name the network after the config directory's basename (the
    // one-shot CLI convention), never the daemon-local fleet name.
    const auto engine = analysis::RuleEngine::with_default_rules();
    return serve::lint_report(ref.network, engine,
                              fleet_dir().filename().string(),
                              *serve::lint_format_from(request.format), pool);
  }
  serve::ReachabilityRequest reach;
  reach.symbolic = request.op == "headerspace";
  reach.naive = request.naive;
  reach.source = request.source;
  reach.destination = request.destination;
  return serve::reachability_report(ref.network, ref.graph.set, reach);
}

TEST(ServeService, ResponsesAreByteIdenticalAcrossPoolSizes) {
  util::ThreadPool reference_pool(1);
  const auto requests = analysis_requests();
  std::vector<std::string> expected;
  std::vector<int> expected_exit;
  for (const auto& request : requests) {
    const auto qr = reference_result(request, reference_pool);
    expected.push_back(qr.output);
    expected_exit.push_back(qr.exit_code);
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    serve::Service::Options options;
    options.threads = threads;
    serve::Service service(options);
    service.add_fleet("corp", fleet_dir().string());
    for (int repeat = 0; repeat < 2; ++repeat) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto response = service.handle(requests[i]);
        EXPECT_TRUE(response.ok);
        EXPECT_EQ(response.exit_code, expected_exit[i])
            << requests[i].op << " at " << threads << " threads";
        EXPECT_EQ(response.output, expected[i])
            << requests[i].op << " at " << threads << " threads, repeat "
            << repeat;
      }
    }
  }
}

TEST(ServeService, EndpointQueriesMatchReference) {
  // A concrete reachable pair: two spoke subnets from the generated plan.
  const auto& ref = Reference::instance();
  // Find two interface addresses on different routers to query between.
  std::string a;
  std::string b;
  for (const auto& itf : ref.network.interfaces()) {
    if (!itf.address) continue;
    if (a.empty()) {
      a = itf.address->to_string();
    } else if (itf.router != 0) {
      b = itf.address->to_string();
      break;
    }
  }
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());

  serve::Service::Options options;
  options.threads = 2;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());
  util::ThreadPool pool(1);
  for (const char* op : {"reachability", "headerspace"}) {
    serve::Request request;
    request.op = op;
    request.source = a;
    request.destination = b;
    const auto expected = reference_result(request, pool);
    const auto response = service.handle(request);
    EXPECT_EQ(response.output, expected.output) << op;
    EXPECT_EQ(response.exit_code, expected.exit_code) << op;
  }
  // Bad addresses surface the CLI's usage error.
  serve::Request bad;
  bad.op = "reachability";
  bad.source = "not-an-address";
  bad.destination = "also-not";
  const auto response = service.handle(bad);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.exit_code, 2);
  EXPECT_EQ(response.error, "bad addresses\n");
}

TEST(ServeService, DispatchErrorsAndHousekeepingOps) {
  serve::Service::Options options;
  options.threads = 1;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());

  EXPECT_EQ(service.handle(op_request("ping")).output, "pong\n");
  const auto fleets = service.handle(op_request("fleets"));
  EXPECT_NE(fleets.output.find("corp:"), std::string::npos);

  const auto unknown_op = service.handle(op_request("frobnicate"));
  EXPECT_FALSE(unknown_op.ok);
  EXPECT_EQ(unknown_op.exit_code, 2);

  serve::Request wrong_fleet;
  wrong_fleet.op = "audit";
  wrong_fleet.fleet = "nope";
  EXPECT_FALSE(service.handle(wrong_fleet).ok);

  serve::Request bad_format;
  bad_format.op = "rdlint";
  bad_format.format = "yaml";
  const auto bad = service.handle(bad_format);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.exit_code, 2);

  const auto stats = service.handle(op_request("stats"));
  EXPECT_TRUE(stats.ok);
  EXPECT_NE(stats.output.find("\"parse_cache\""), std::string::npos);
  EXPECT_NE(stats.output.find("\"response_cache\""), std::string::npos);
  EXPECT_NE(stats.output.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(stats.output.find("\"queue_depth\""), std::string::npos);
}

TEST(ServeService, RepeatAnalysisRequestsHitTheResponseCache) {
  serve::Service::Options options;
  options.threads = 1;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());

  serve::Request audit;
  audit.op = "audit";
  const auto first = service.handle(audit);
  EXPECT_EQ(service.response_cache_hits(), 0u);
  const auto second = service.handle(audit);
  EXPECT_EQ(service.response_cache_hits(), 1u);
  EXPECT_EQ(second.output, first.output);
  EXPECT_EQ(second.exit_code, first.exit_code);

  // A different request is a different cache key, not a false hit.
  serve::Request lint;
  lint.op = "rdlint";
  lint.format = "json";
  service.handle(lint);
  EXPECT_EQ(service.response_cache_hits(), 1u);
  service.handle(lint);
  EXPECT_EQ(service.response_cache_hits(), 2u);
}

TEST(ServeService, SimulateSeedAndCapArePartOfTheCacheKey) {
  serve::Service::Options options;
  options.threads = 2;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());

  serve::Request request;
  request.op = "simulate";
  const auto default_seed = service.handle(request);
  EXPECT_TRUE(default_seed.ok);
  service.handle(request);
  EXPECT_EQ(service.response_cache_hits(), 1u);

  // A different seed is a different pure function: no false cache hit, and
  // the dynamics (event timings in the report) genuinely differ.
  request.seed = 7;
  const auto other_seed = service.handle(request);
  EXPECT_EQ(service.response_cache_hits(), 1u);
  EXPECT_TRUE(other_seed.ok);
  EXPECT_NE(other_seed.output, default_seed.output);

  // So is a different time cap.
  request.seed = 42;
  request.until_ms = 60'000;
  service.handle(request);
  EXPECT_EQ(service.response_cache_hits(), 1u);

  // And the protocol carries both: a decoded wire request reproduces them.
  const auto decoded = serve::decode_request(serve::encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seed, 42u);
  EXPECT_EQ(decoded->until_ms, 60'000u);
}

TEST(ServeService, StatsSeparateColdBuildsFromServingLatency) {
  serve::Service::Options options;
  options.threads = 1;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());

  serve::Request audit;
  audit.op = "audit";
  service.handle(audit);  // cold: computes and fills the response cache
  service.handle(audit);  // warm: cache hit
  service.handle(audit);  // warm: cache hit

  const auto stats = service.handle(op_request("stats"));
  const auto doc = util::Json::parse(stats.output);
  ASSERT_TRUE(doc.has_value() && doc->is_object()) << stats.output;
  const auto* ops = doc->get("ops");
  ASSERT_TRUE(ops != nullptr && ops->is_array());
  bool found = false;
  for (std::size_t i = 0; i < ops->size(); ++i) {
    const auto* entry = ops->at(i);
    const auto* op = entry->get("op");
    if (op == nullptr || op->if_string() == nullptr ||
        *op->if_string() != "audit") {
      continue;
    }
    found = true;
    // One cold build, counted and costed separately; the percentiles cover
    // only the two cache-hit servings, so the one-time build cannot sit in
    // p99 forever.
    EXPECT_EQ(entry->get("count")->int_or(-1), 3);
    EXPECT_EQ(entry->get("builds")->int_or(-1), 1);
    ASSERT_NE(entry->get("build_ms"), nullptr);
    EXPECT_GT(entry->get("build_ms")->number_or(-1.0), 0.0);
    const auto* p99 = entry->get("p99_ms");
    ASSERT_NE(p99, nullptr);
    // Cache hits are microseconds; the cold audit build is orders of
    // magnitude slower. If the build leaked into the percentile, p99
    // would be ~build_ms.
    EXPECT_LT(p99->number_or(1e9),
              entry->get("build_ms")->number_or(0.0));
  }
  EXPECT_TRUE(found) << stats.output;
}

TEST(ServeService, ConcurrentClientsGetIdenticalBytes) {
  util::ThreadPool reference_pool(1);
  const auto requests = analysis_requests();
  std::vector<std::string> expected;
  for (const auto& request : requests) {
    expected.push_back(reference_result(request, reference_pool).output);
  }

  serve::Service::Options options;
  options.threads = 4;
  serve::Service service(options);
  service.add_fleet("corp", fleet_dir().string());

  constexpr int kClients = 6;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const auto i = static_cast<std::size_t>(c + round) % requests.size();
        const auto response = service.handle(requests[i]);
        if (response.output != expected[i]) ++mismatches[c];
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }
}

// --- Server end-to-end -------------------------------------------------------

TEST(ServeServer, UnixSocketEndToEndWithConcurrentClients) {
  const auto socket_path =
      (std::filesystem::path(testing::TempDir()) / "rd_serve_e2e.sock")
          .string();
  serve::Service::Options service_options;
  service_options.threads = 2;
  serve::Service service(service_options);
  service.add_fleet("corp", fleet_dir().string());

  serve::Server::Options server_options;
  server_options.unix_path = socket_path;
  serve::Server server(service, server_options);
  std::thread server_thread([&] { server.run(); });

  util::ThreadPool reference_pool(1);
  const auto requests = analysis_requests();
  std::vector<std::string> expected;
  for (const auto& request : requests) {
    expected.push_back(reference_result(request, reference_pool).output);
  }

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = serve::connect_unix(socket_path);
      if (fd < 0) {
        ++failures[c];
        return;
      }
      // Several requests on one connection, answered in order.
      for (int round = 0; round < 2; ++round) {
        const auto i = static_cast<std::size_t>(c + round) % requests.size();
        const auto response = serve::roundtrip(fd, requests[i]);
        if (!response || response->output != expected[i]) ++failures[c];
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  // A client that sends a request and hangs up without reading the reply
  // must not kill the daemon (EPIPE, not SIGPIPE)...
  {
    const int fd = serve::connect_unix(socket_path);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::write_frame(fd, serve::encode_request(op_request("ping"))));
    ::close(fd);
  }
  // ...and the next client still gets served.
  {
    const int fd = serve::connect_unix(socket_path);
    ASSERT_GE(fd, 0);
    const auto response = serve::roundtrip(fd, op_request("ping"));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->output, "pong\n");
    ::close(fd);
  }

  // Shutdown op stops the accept loop; run() returns and the socket file
  // is collected by the server's destructor.
  {
    const int fd = serve::connect_unix(socket_path);
    ASSERT_GE(fd, 0);
    const auto response = serve::roundtrip(fd, op_request("shutdown"));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->output, "shutting down\n");
    ::close(fd);
  }
  server_thread.join();
}

void eintr_noop_handler(int) {}

TEST(ServeServer, SignalInterruptedPollIsRetriedNotTreatedAsShutdown) {
  // Regression: the accept loop's poll(2) used to treat every failure as a
  // stop request, so any non-EINTR error made rdd "shut down" cleanly with
  // exit 0 — and a stray signal was one misclassification away from the
  // same fate. Interrupt the loop repeatedly with a handler installed
  // WITHOUT SA_RESTART (so poll really returns EINTR) and require the
  // daemon to keep serving.
  struct sigaction action {};
  action.sa_handler = eintr_noop_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the syscall must observe EINTR
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  const auto socket_path =
      (std::filesystem::path(testing::TempDir()) / "rd_serve_eintr.sock")
          .string();
  serve::Service::Options service_options;
  service_options.threads = 1;
  serve::Service service(service_options);
  serve::Server::Options server_options;
  server_options.unix_path = socket_path;
  serve::Server server(service, server_options);
  std::thread server_thread([&] { server.run(); });

  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ::pthread_kill(server_thread.native_handle(), SIGUSR1);
  }

  const int fd = serve::connect_unix(socket_path);
  ASSERT_GE(fd, 0);
  const auto pong = serve::roundtrip(fd, op_request("ping"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->output, "pong\n");
  ::close(fd);

  server.request_stop();
  server_thread.join();
  ::sigaction(SIGUSR1, &previous, nullptr);
}

TEST(ServeServer, MalformedFrameDrawsAnErrorResponse) {
  const auto socket_path =
      (std::filesystem::path(testing::TempDir()) / "rd_serve_bad.sock")
          .string();
  serve::Service::Options service_options;
  service_options.threads = 1;
  serve::Service service(service_options);
  service.add_fleet("corp", fleet_dir().string());
  serve::Server::Options server_options;
  server_options.unix_path = socket_path;
  serve::Server server(service, server_options);
  std::thread server_thread([&] { server.run(); });

  const int fd = serve::connect_unix(socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(serve::write_frame(fd, "this is not json"));
  std::string payload;
  std::string error;
  ASSERT_TRUE(serve::read_frame(fd, payload, &error)) << error;
  const auto response = serve::decode_response(payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->exit_code, 2);
  // The connection survives a malformed frame; a good one still works.
  const auto pong = serve::roundtrip(fd, op_request("ping"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->output, "pong\n");
  ::close(fd);

  server.request_stop();
  server_thread.join();
}

}  // namespace
}  // namespace rd
