#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/rules.h"
#include "anonymize/anonymizer.h"
#include "config/parser.h"
#include "config/writer.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "testutil.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

/// A small synthesized enterprise, reparsed from emitted text so every
/// router carries real line numbers. Shared by the determinism and report
/// structure tests.
const model::Network& managed_network() {
  static const model::Network network = [] {
    synth::ManagedEnterpriseParams params;
    params.seed = 11;
    params.regions = 2;
    params.spokes_per_region = 6;
    params.ebgp_spoke_rate = 0.2;
    std::vector<config::ParseResult> parses;
    for (const auto& cfg : synth::make_managed_enterprise(params).configs) {
      parses.push_back(config::parse_config(config::write_config(cfg)));
    }
    return model::Network::build_parsed(std::move(parses));
  }();
  return network;
}

std::vector<const Finding*> findings_for(const RuleEngine::Result& result,
                                         std::string_view rule_id) {
  std::vector<const Finding*> out;
  for (const auto& f : result.findings) {
    if (f.rule_id == rule_id) out.push_back(&f);
  }
  return out;
}

// --- registry ----------------------------------------------------------------

TEST(RuleEngine, DefaultRegistryHasStableIds) {
  const auto engine = RuleEngine::with_default_rules();
  EXPECT_EQ(engine.rules().size(), 31u);

  // Registration order is id order, and ids never repeat.
  for (std::size_t i = 1; i < engine.rules().size(); ++i) {
    EXPECT_LT(engine.rules()[i - 1].info.id, engine.rules()[i].info.id);
  }

  const auto* rd001 = engine.find("RD001");
  ASSERT_NE(rd001, nullptr);
  EXPECT_EQ(rd001->name, "multi-policy-filter");
  EXPECT_EQ(rd001->category, "lint");

  const auto* rd020 = engine.find("RD020");
  ASSERT_NE(rd020, nullptr);
  EXPECT_EQ(rd020->name, "duplicate-address");
  EXPECT_EQ(rd020->category, "consistency");
  EXPECT_EQ(rd020->severity, Severity::kError);

  const auto* rd030 = engine.find("RD030");
  ASSERT_NE(rd030, nullptr);
  EXPECT_EQ(rd030->category, "vulnerability");

  const auto* rd040 = engine.find("RD040");
  ASSERT_NE(rd040, nullptr);
  EXPECT_EQ(rd040->name, "duplicate-router-id");
  EXPECT_EQ(rd040->category, "cross-router");
  EXPECT_EQ(rd040->severity, Severity::kError);

  const auto* rd044 = engine.find("RD044");
  ASSERT_NE(rd044, nullptr);
  EXPECT_EQ(rd044->name, "unfiltered-igp-edge-interface");

  const auto* rd050 = engine.find("RD050");
  ASSERT_NE(rd050, nullptr);
  EXPECT_EQ(rd050->name, "shadowed-acl-entry");
  EXPECT_EQ(rd050->category, "symbolic");
  EXPECT_EQ(rd050->severity, Severity::kInfo);

  const auto* rd051 = engine.find("RD051");
  ASSERT_NE(rd051, nullptr);
  EXPECT_EQ(rd051->name, "dead-route-map-clause");

  const auto* rd052 = engine.find("RD052");
  ASSERT_NE(rd052, nullptr);
  EXPECT_EQ(rd052->name, "intent-violation");
  EXPECT_EQ(rd052->severity, Severity::kError);

  const auto* rd060 = engine.find("RD060");
  ASSERT_NE(rd060, nullptr);
  EXPECT_EQ(rd060->name, "redistribution-loop");
  EXPECT_EQ(rd060->category, "dataflow");
  EXPECT_EQ(rd060->severity, Severity::kError);

  const auto* rd061 = engine.find("RD061");
  ASSERT_NE(rd061, nullptr);
  EXPECT_EQ(rd061->name, "metric-loss-at-boundary");

  const auto* rd062 = engine.find("RD062");
  ASSERT_NE(rd062, nullptr);
  EXPECT_EQ(rd062->name, "administrative-distance-inversion");

  const auto* rd063 = engine.find("RD063");
  ASSERT_NE(rd063, nullptr);
  EXPECT_EQ(rd063->name, "mutual-redistribution-without-filter");

  const auto* rd064 = engine.find("RD064");
  ASSERT_NE(rd064, nullptr);
  EXPECT_EQ(rd064->name, "single-point-redistribution");
  EXPECT_EQ(rd064->category, "dataflow");

  EXPECT_EQ(engine.find("RD999"), nullptr);
  EXPECT_EQ(engine.find(""), nullptr);

  // Every rule carries a description and a paper citation.
  for (const auto& rule : engine.rules()) {
    EXPECT_FALSE(rule.info.description.empty()) << rule.info.id;
    EXPECT_FALSE(rule.info.paper.empty()) << rule.info.id;
  }
}

TEST(RuleEngine, SeverityNames) {
  EXPECT_EQ(severity_name(Severity::kInfo), "info");
  EXPECT_EQ(severity_name(Severity::kWarning), "warning");
  EXPECT_EQ(severity_name(Severity::kError), "error");
  EXPECT_EQ(severity_sarif_level(Severity::kInfo), "note");
  EXPECT_EQ(severity_sarif_level(Severity::kWarning), "warning");
  EXPECT_EQ(severity_sarif_level(Severity::kError), "error");
}

TEST(RuleEngine, FingerprintIgnoresSourceLocation) {
  Finding a;
  a.rule_id = "RD007";
  a.router_name = "r1";
  a.subject = "101";
  a.detail = "clause 2 duplicates clause 1";
  Finding b = a;
  b.where.file = "other.cfg";
  b.where.line = 99;
  EXPECT_EQ(finding_fingerprint(a), finding_fingerprint(b));

  b.detail = "clause 3 duplicates clause 1";
  EXPECT_NE(finding_fingerprint(a), finding_fingerprint(b));
}

// --- determinism -------------------------------------------------------------

TEST(RuleEngine, SerialAndParallelRunsAreByteIdentical) {
  const auto& network = managed_network();
  const auto engine = RuleEngine::with_default_rules();

  const auto serial = engine.run(network);
  ASSERT_FALSE(serial.findings.empty());

  const auto serial_json = findings_to_json(engine, serial, "managed");
  const auto serial_sarif = findings_to_sarif(engine, serial);

  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);
  for (util::ThreadPool* pool : {&pool1, &pool8}) {
    const auto parallel = engine.run(network, *pool);
    EXPECT_EQ(findings_to_json(engine, parallel, "managed"), serial_json);
    EXPECT_EQ(findings_to_sarif(engine, parallel), serial_sarif);
    EXPECT_EQ(parallel.errors, serial.errors);
    EXPECT_EQ(parallel.warnings, serial.warnings);
    EXPECT_EQ(parallel.infos, serial.infos);
    EXPECT_EQ(parallel.suppressed, serial.suppressed);
  }
}

// --- provenance --------------------------------------------------------------

TEST(RuleEngine, FindingsCarryFileAndLine) {
  // Line numbers are load-bearing here:        line
  auto parsed = config::parse_config(        //
      "hostname r1\n"                        // 1
      "!\n"                                  // 2
      "interface Ethernet0\n"                // 3
      " ip address 10.0.0.1 255.255.255.0\n" // 4
      "!\n"                                  // 5
      "access-list 10 permit 10.0.0.0 0.0.0.255\n",  // 6
      "r1.cfg");
  auto network = model::Network::build({std::move(parsed.config)});
  const auto engine = RuleEngine::with_default_rules();
  const auto result = engine.run(network);

  const auto unused = findings_for(result, "RD002");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0]->severity, Severity::kInfo);
  EXPECT_EQ(unused[0]->router_name, "r1");
  EXPECT_EQ(unused[0]->subject, "10");
  EXPECT_EQ(unused[0]->where.file, "r1.cfg");
  EXPECT_EQ(unused[0]->where.line, 6u);
}

TEST(RuleEngine, DuplicateClauseAnchorsAtTheDuplicate) {
  auto parsed = config::parse_config(                 // line
      "hostname r1\n"                                 // 1
      "interface Ethernet0\n"                         // 2
      " ip address 10.0.0.1 255.255.255.0\n"          // 3
      " ip access-group 10 in\n"                      // 4
      "access-list 10 permit 10.0.0.0 0.0.0.255\n"    // 5
      "access-list 10 permit 10.0.0.0 0.0.0.255\n",   // 6
      "r1.cfg");
  auto network = model::Network::build({std::move(parsed.config)});
  const auto result = RuleEngine::with_default_rules().run(network);

  const auto dups = findings_for(result, "RD007");
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups[0]->subject, "10");
  EXPECT_EQ(dups[0]->detail, "clause 2 duplicates clause 1");
  EXPECT_EQ(dups[0]->where.line, 6u);
}

TEST(RuleEngine, HostnameStandsInForFileWhenParsedFromMemory) {
  // network_of parses via testutil with explicit source names; a config
  // parsed with an empty source name falls back to the hostname.
  auto parsed = config::parse_config(
      "hostname r9\naccess-list 5 permit 10.0.0.0 0.0.0.255\n", "");
  auto network = model::Network::build({std::move(parsed.config)});
  const auto result = RuleEngine::with_default_rules().run(network);
  const auto unused = findings_for(result, "RD002");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0]->where.file, "r9");
}

// --- cross-router rules ------------------------------------------------------

TEST(RuleEngine, DuplicateRouterIdAcrossRouters) {
  const auto net = network_of(
      {"hostname a\nrouter ospf 1\n router-id 1.1.1.1\n"
       " network 10.0.0.0 0.0.0.255 area 0\n",
       "hostname b\nrouter ospf 1\n router-id 1.1.1.1\n"
       " network 10.0.1.0 0.0.0.255 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto dups = findings_for(result, "RD040");
  ASSERT_EQ(dups.size(), 1u);
  EXPECT_EQ(dups[0]->severity, Severity::kError);
  EXPECT_EQ(dups[0]->router_name, "b");
  EXPECT_EQ(dups[0]->router_b_name, "a");
  EXPECT_EQ(dups[0]->subject, "1.1.1.1");
  // Anchored at the owning "router ospf" stanza line.
  EXPECT_EQ(dups[0]->where.line, 2u);
  EXPECT_GT(result.errors, 0u);
}

TEST(RuleEngine, SameRouterIdOnOneRouterIsConventional) {
  // Pinning OSPF and BGP to the same loopback id on ONE router is normal.
  const auto net = network_of(
      {"hostname a\nrouter ospf 1\n router-id 1.1.1.1\n"
       " network 10.0.0.0 0.0.0.255 area 0\n"
       "router bgp 65001\n router-id 1.1.1.1\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD040").empty());
}

TEST(RuleEngine, OneSidedRedistribution) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto one_sided = findings_for(result, "RD041");
  ASSERT_EQ(one_sided.size(), 1u);
  EXPECT_EQ(one_sided[0]->severity, Severity::kWarning);
  EXPECT_EQ(one_sided[0]->router_name, "a");
  // RD042 needs both directions, so it must stay quiet here.
  EXPECT_TRUE(findings_for(result, "RD042").empty());
}

TEST(RuleEngine, AsymmetricRedistributionPolicy) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface Ethernet1\n ip address 10.1.0.1 255.255.255.0\n"
       "route-map GUARD permit 10\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 2 route-map GUARD\n"
       "router ospf 2\n network 10.1.0.0 0.0.0.255 area 0\n"
       " redistribute ospf 1\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto asymmetric = findings_for(result, "RD042");
  ASSERT_EQ(asymmetric.size(), 1u);
  EXPECT_NE(asymmetric[0]->detail.find("GUARD"), std::string::npos);
  // Both directions exist, so RD041 must stay quiet.
  EXPECT_TRUE(findings_for(result, "RD041").empty());
}

// --- symbolic rules ----------------------------------------------------------

TEST(RuleEngine, ShadowedAclEntryUnderPacketSemantics) {
  // Clause 2 is tcp-only and fully covered by the tcp-wide clause 1; the
  // RD008 lint heuristic cannot see it (extended rules), the exact-set
  // check can. Anchored at the shadowed clause's own line.
  auto parsed = config::parse_config(               // line
      "hostname r1\n"                               // 1
      "interface Ethernet0\n"                       // 2
      " ip address 10.0.0.1 255.255.255.0\n"        // 3
      " ip access-group 101 in\n"                   // 4
      "access-list 101 permit tcp any any\n"        // 5
      "access-list 101 deny tcp any host 10.0.0.5\n"  // 6
      "access-list 101 permit ip any any\n",        // 7
      "r1.cfg");
  auto network = model::Network::build({std::move(parsed.config)});
  const auto result = RuleEngine::with_default_rules().run(network);
  const auto shadowed = findings_for(result, "RD050");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->severity, Severity::kInfo);
  EXPECT_EQ(shadowed[0]->subject, "101");
  EXPECT_EQ(shadowed[0]->detail,
            "clause 2 can never match a packet (the preceding clauses cover "
            "its entire header space)");
  EXPECT_EQ(shadowed[0]->where.file, "r1.cfg");
  EXPECT_EQ(shadowed[0]->where.line, 6u);
}

TEST(RuleEngine, ShadowedAclEntryFingerprintIsLineStable) {
  // Inserting a comment shifts every line; the fingerprint must not move.
  const std::string base =
      "hostname r1\n"
      "interface Ethernet0\n"
      " ip address 10.0.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "access-list 101 permit tcp any any\n"
      "access-list 101 deny tcp any host 10.0.0.5\n"
      "access-list 101 permit ip any any\n";
  const std::string shifted = "! a comment pushing everything down\n" + base;
  const auto engine = RuleEngine::with_default_rules();
  auto net_a =
      model::Network::build({config::parse_config(base, "r1.cfg").config});
  auto net_b =
      model::Network::build({config::parse_config(shifted, "r1.cfg").config});
  const auto run_a = engine.run(net_a);
  const auto run_b = engine.run(net_b);
  const auto a = findings_for(run_a, "RD050");
  const auto b = findings_for(run_b, "RD050");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0]->where.line, b[0]->where.line);
  EXPECT_EQ(finding_fingerprint(*a[0]), finding_fingerprint(*b[0]));
}

TEST(RuleEngine, ShadowedAclEntryUnderRouteSemantics) {
  // Unattached ACLs are judged as route filters: only the source spec
  // matters, so the port-bearing clause 2 (a distinct *packet* set) is a
  // dead clause in route space.
  const auto net = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
       " distribute-list 101 in\n"
       "access-list 101 permit ip 10.0.0.0 0.0.255.255 any\n"
       "access-list 101 deny tcp 10.0.1.0 0.0.0.255 any eq 80\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto shadowed = findings_for(result, "RD050");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->detail,
            "clause 2 can never match a route (the preceding clauses cover "
            "its source space)");
}

TEST(RuleEngine, Rd050DoesNotDoubleReportLintShadows) {
  // A standard-over-standard shadow is RD008's finding; RD050 must stay
  // quiet on that clause even though its exact region is empty too.
  const auto net = network_of(
      {"hostname r1\n"
       "access-list 10 permit 10.0.0.0 0.0.255.255\n"
       "access-list 10 deny 10.0.1.0 0.0.0.255\n"
       "access-list 10 permit any\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_EQ(findings_for(result, "RD008").size(), 1u);
  EXPECT_TRUE(findings_for(result, "RD050").empty());
}

TEST(RuleEngine, DeadRouteMapClauses) {
  const auto net = network_of(               // line
      {"hostname r1\n"                       // 1
       "access-list 10 permit 10.0.0.0 0.0.255.255\n"   // 2
       "access-list 20 permit 10.0.1.0 0.0.0.255\n"     // 3
       "route-map FOO permit 10\n"           // 4
       " match ip address 10\n"              // 5
       "route-map FOO permit 20\n"           // 6
       " match ip address 20\n"              // 7
       "route-map FOO permit 30\n"           // 8
       " match ip address 99\n"});           // 9
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto dead = findings_for(result, "RD051");
  ASSERT_EQ(dead.size(), 2u);
  EXPECT_EQ(dead[0]->subject, "FOO");
  EXPECT_EQ(dead[0]->detail,
            "clause 20 can never be reached: earlier clauses match every "
            "route it matches");
  EXPECT_EQ(dead[0]->where.line, 6u);
  EXPECT_EQ(dead[1]->detail,
            "clause 30 can never match: its match conditions are "
            "unsatisfiable (no referenced list matches any route)");
  EXPECT_EQ(dead[1]->where.line, 8u);
}

TEST(RuleEngine, PrefixListBoundsKeepClauseAlive) {
  // The ge/le window of clause 20 reaches lengths clause 10 does not
  // (24..32 vs exactly 24), so it is NOT dead — the length dimension of
  // the route geometry must be modelled, not just the address.
  const auto net = network_of(
      {"hostname r1\n"
       "ip prefix-list P1 seq 5 permit 10.0.0.0/8 le 24\n"
       "ip prefix-list P2 seq 5 permit 10.0.0.0/8 le 32\n"
       "route-map FOO permit 10\n"
       " match ip address prefix-list P1\n"
       "route-map FOO permit 20\n"
       " match ip address prefix-list P2\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  EXPECT_TRUE(findings_for(result, "RD051").empty());
}

TEST(RuleEngine, IntentViolationFinding) {
  auto parsed = config::parse_config(             // line
      "hostname r1\n"                             // 1
      "! rd-intent deny 10.1.0.0/24 10.2.0.0/24\n"  // 2
      "! rd-intent deny 10.1.0.0/24 10.3.0.0/24\n"  // 3
      "interface Ethernet0\n"                     // 4
      " ip address 10.1.0.1 255.255.255.0\n"      // 5
      " ip access-group 101 in\n"                 // 6
      "interface Ethernet1\n"                     // 7
      " ip address 10.2.0.1 255.255.255.0\n"      // 8
      "interface Ethernet2\n"                     // 9
      " ip address 10.3.0.1 255.255.255.0\n"      // 10
      "router ospf 1\n"                           // 11
      " network 10.0.0.0 0.255.255.255 area 0\n"  // 12
      "access-list 101 deny ip any 10.3.0.0 0.0.0.255\n"  // 13
      "access-list 101 permit ip any any\n",      // 14
      "r1.cfg");
  auto network = model::Network::build({std::move(parsed.config)});
  const auto result = RuleEngine::with_default_rules().run(network);
  const auto violations = findings_for(result, "RD052");
  // The 10.3/24 intent holds (the ACL blocks it); the 10.2/24 one fails.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0]->severity, Severity::kError);
  EXPECT_EQ(violations[0]->subject, "deny 10.1.0.0/24 -> 10.2.0.0/24");
  EXPECT_NE(violations[0]->detail.find("deny intent violated"),
            std::string::npos);
  EXPECT_NE(violations[0]->detail.find("gets through"), std::string::npos);
  EXPECT_EQ(violations[0]->where.line, 2u);
  EXPECT_GT(result.errors, 0u);
}

TEST(RuleEngine, SymbolicRulesHonorSuppression) {
  const std::string text =
      "hostname r1\n"
      "! rdlint-disable RD050 RD052\n"
      "! rd-intent deny 10.1.0.0/24 10.2.0.0/24\n"
      "interface Ethernet0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface Ethernet1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 permit tcp any any\n"
      "access-list 101 deny tcp any host 10.2.0.5\n"
      "access-list 101 permit ip any any\n";
  auto network =
      model::Network::build({config::parse_config(text, "r1.cfg").config});
  const auto result = RuleEngine::with_default_rules().run(network);
  EXPECT_TRUE(findings_for(result, "RD050").empty());
  EXPECT_TRUE(findings_for(result, "RD052").empty());
  EXPECT_GE(result.suppressed, 2u);
}

TEST(RuleEngine, SymbolicFindingsClassifyAgainstBaseline) {
  const auto engine = RuleEngine::with_default_rules();
  // Snapshot 1: the shadowed clause exists, no intents declared.
  const std::string snap1 =
      "hostname r1\n"
      "interface Ethernet0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface Ethernet1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 permit tcp any any\n"
      "access-list 101 deny tcp any host 10.2.0.5\n"
      "access-list 101 permit ip any any\n";
  // Snapshot 2: the dead clause is gone (RD050 fixed) and a failing
  // intent was declared (RD052 appears).
  const std::string snap2 =
      "hostname r1\n"
      "! rd-intent deny 10.1.0.0/24 10.2.0.0/24\n"
      "interface Ethernet0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface Ethernet1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 permit tcp any any\n"
      "access-list 101 permit ip any any\n";
  auto net1 =
      model::Network::build({config::parse_config(snap1, "r1.cfg").config});
  auto net2 =
      model::Network::build({config::parse_config(snap2, "r1.cfg").config});
  const auto run1 = engine.run(net1);
  ASSERT_EQ(findings_for(run1, "RD050").size(), 1u);

  const auto baseline =
      baseline_fingerprints(findings_to_json(engine, run1, "snap1"));
  ASSERT_TRUE(baseline.has_value());
  const auto delta = diff_against_baseline(engine.run(net2).findings, *baseline);

  const auto is_rule = [](std::string_view id) {
    return [id](const Finding& f) { return f.rule_id == id; };
  };
  EXPECT_TRUE(std::any_of(delta.new_findings.begin(), delta.new_findings.end(),
                          is_rule("RD052")));
  EXPECT_TRUE(std::any_of(delta.fixed.begin(), delta.fixed.end(),
                          [](const std::string& fp) {
                            return fp.substr(0, 6) == "RD050|";
                          }));
}

// --- suppressions ------------------------------------------------------------

TEST(RuleEngine, SuppressionCommentDropsFindings) {
  const std::string text =
      "hostname r1\n"
      "! rdlint-disable RD002\n"
      "access-list 10 permit 10.0.0.0 0.0.0.255\n";
  auto network = model::Network::build({config::parse_config(text, "r1.cfg").config});
  const auto result = RuleEngine::with_default_rules().run(network);
  EXPECT_TRUE(findings_for(result, "RD002").empty());
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(RuleEngine, SuppressionAppliesPerRouter) {
  const auto net = network_of(
      {"hostname a\n! rdlint-disable RD002\n"
       "access-list 10 permit 10.0.0.0 0.0.0.255\n",
       "hostname b\n"
       "access-list 10 permit 10.0.0.0 0.0.0.255\n"});
  const auto result = RuleEngine::with_default_rules().run(net);
  const auto unused = findings_for(result, "RD002");
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0]->router_name, "b");
  EXPECT_EQ(result.suppressed, 1u);
}

TEST(RuleEngine, SuppressionSurvivesAnonymization) {
  // The anonymizer strips comment text but preserves rdlint-disable
  // structurally, so a suppressed finding stays suppressed on the
  // anonymized fleet.
  const std::string text =
      "hostname r1\n"
      "! rdlint-disable RD002\n"
      "access-list 10 permit 10.0.0.0 0.0.0.255\n";
  anonymize::Anonymizer anon(1234);
  const auto scrubbed = anon.anonymize(text);
  EXPECT_NE(scrubbed.find("rdlint-disable RD002"), std::string::npos);

  auto network =
      model::Network::build({config::parse_config(scrubbed, "anon.cfg").config});
  const auto result = RuleEngine::with_default_rules().run(network);
  EXPECT_TRUE(findings_for(result, "RD002").empty());
  EXPECT_EQ(result.suppressed, 1u);
}

// --- report serialization ----------------------------------------------------

TEST(RuleEngine, SarifGoldenFile) {
  RuleEngine engine;
  engine.add({"RD900", "test-rule", "test", Severity::kWarning, "A test rule.",
              "section 0"},
             [](const RuleContext&) {
               Finding f;
               f.router = 0;
               f.subject = "subj";
               f.detail = "det";
               f.where.line = 3;
               return std::vector<Finding>{f};
             });
  auto network =
      model::Network::build({config::parse_config("hostname r1\n", "r1.cfg").config});
  const auto result = engine.run(network);
  ASSERT_EQ(result.findings.size(), 1u);

  const std::string expected = R"({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "rdlint",
          "informationUri": "https://dl.acm.org/doi/10.1145/1015467.1015472",
          "rules": [
            {
              "id": "RD900",
              "name": "test-rule",
              "shortDescription": {
                "text": "A test rule."
              },
              "defaultConfiguration": {
                "level": "warning"
              },
              "properties": {
                "category": "test",
                "paper": "section 0"
              }
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "RD900",
          "ruleIndex": 0,
          "level": "warning",
          "message": {
            "text": "r1: subj: det"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "r1.cfg"
                },
                "region": {
                  "startLine": 3
                }
              }
            }
          ],
          "partialFingerprints": {
            "rdlint/v1": "RD900|r1|subj|det"
          }
        }
      ]
    }
  ]
})";
  EXPECT_EQ(findings_to_sarif(engine, result), expected);
}

TEST(RuleEngine, SarifStructureIsWellFormed) {
  const auto& network = managed_network();
  const auto engine = RuleEngine::with_default_rules();
  const auto result = engine.run(network);
  const auto doc = util::Json::parse(findings_to_sarif(engine, result));
  ASSERT_TRUE(doc.has_value());

  const auto* schema = doc->get("$schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(*schema->if_string(), "https://json.schemastore.org/sarif-2.1.0.json");
  EXPECT_EQ(*doc->get("version")->if_string(), "2.1.0");

  const auto* runs = doc->get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const auto* run = runs->at(0);
  const auto* driver = run->get("tool")->get("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(*driver->get("name")->if_string(), "rdlint");

  const auto* rules = driver->get("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_EQ(rules->size(), engine.rules().size());
  for (std::size_t i = 0; i < rules->size(); ++i) {
    EXPECT_EQ(*rules->at(i)->get("id")->if_string(), engine.rules()[i].info.id);
  }

  const auto* results = run->get("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->size(), result.findings.size());
  for (std::size_t i = 0; i < results->size(); ++i) {
    const auto* r = results->at(i);
    const auto* rule_id = r->get("ruleId")->if_string();
    ASSERT_NE(rule_id, nullptr);
    // ruleIndex must point at the descriptor for ruleId.
    const auto index = static_cast<std::size_t>(r->get("ruleIndex")->int_or(-1));
    ASSERT_LT(index, rules->size());
    EXPECT_EQ(*rules->at(index)->get("id")->if_string(), *rule_id);
    EXPECT_EQ(*r->get("level")->if_string(),
              *rules->at(index)->get("defaultConfiguration")->get("level")->if_string());
    ASSERT_NE(r->get("partialFingerprints")->get("rdlint/v1"), nullptr);
  }
}

TEST(RuleEngine, JsonReportRoundTripsFingerprints) {
  const auto& network = managed_network();
  const auto engine = RuleEngine::with_default_rules();
  const auto result = engine.run(network);
  const auto json = findings_to_json(engine, result, "managed");

  const auto fingerprints = baseline_fingerprints(json);
  ASSERT_TRUE(fingerprints.has_value());
  EXPECT_TRUE(std::is_sorted(fingerprints->begin(), fingerprints->end()));
  // Sorted + deduped set of every finding's fingerprint.
  std::vector<std::string> expected;
  for (const auto& f : result.findings) {
    expected.push_back(finding_fingerprint(f));
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
  EXPECT_EQ(*fingerprints, expected);

  EXPECT_FALSE(baseline_fingerprints("not json").has_value());
  EXPECT_FALSE(baseline_fingerprints("{}").has_value());
  EXPECT_FALSE(baseline_fingerprints("{\"findings\": 3}").has_value());
  EXPECT_FALSE(
      baseline_fingerprints("{\"findings\": [{\"rule\": \"RD001\"}]}").has_value());
}

// --- baseline classification -------------------------------------------------

TEST(RuleEngine, BaselineClassifiesNewFixedUnchanged) {
  Finding persisting;
  persisting.rule_id = "RD002";
  persisting.router_name = "r1";
  persisting.subject = "10";
  persisting.detail = "1 clauses";
  Finding fresh;
  fresh.rule_id = "RD007";
  fresh.router_name = "r1";
  fresh.subject = "10";
  fresh.detail = "clause 2 duplicates clause 1";

  const std::vector<std::string> baseline = {
      finding_fingerprint(persisting), "RD003|r2|OLD|gone"};
  const auto delta = diff_against_baseline({persisting, fresh}, baseline);
  ASSERT_EQ(delta.unchanged.size(), 1u);
  EXPECT_EQ(delta.unchanged[0].rule_id, "RD002");
  ASSERT_EQ(delta.new_findings.size(), 1u);
  EXPECT_EQ(delta.new_findings[0].rule_id, "RD007");
  ASSERT_EQ(delta.fixed.size(), 1u);
  EXPECT_EQ(delta.fixed[0], "RD003|r2|OLD|gone");
}

TEST(RuleEngine, BaselineAcrossTwoSnapshots) {
  const auto engine = RuleEngine::with_default_rules();

  // Snapshot 1: ACL 10 defined but never referenced (RD002).
  auto net1 = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       "access-list 10 permit 10.0.0.0 0.0.0.255\n"});
  const auto run1 = engine.run(net1);
  ASSERT_EQ(findings_for(run1, "RD002").size(), 1u);

  // Snapshot 2: the ACL is now applied (RD002 fixed), but its definition
  // was fat-fingered into a duplicate clause (RD007 appears).
  auto net2 = network_of(
      {"hostname r1\n"
       "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 10 in\n"
       "access-list 10 permit 10.0.0.0 0.0.0.255\n"
       "access-list 10 permit 10.0.0.0 0.0.0.255\n"});
  const auto run2 = engine.run(net2);

  // The saved JSON report of snapshot 1 is the baseline for snapshot 2.
  const auto baseline =
      baseline_fingerprints(findings_to_json(engine, run1, "snap1"));
  ASSERT_TRUE(baseline.has_value());
  const auto delta = diff_against_baseline(run2.findings, *baseline);

  const auto is_rule = [](std::string_view id) {
    return [id](const Finding& f) { return f.rule_id == id; };
  };
  EXPECT_TRUE(std::any_of(delta.new_findings.begin(), delta.new_findings.end(),
                          is_rule("RD007")));
  EXPECT_TRUE(std::none_of(delta.unchanged.begin(), delta.unchanged.end(),
                           is_rule("RD002")));
  ASSERT_EQ(delta.fixed.size(), 1u);
  EXPECT_EQ(delta.fixed[0].substr(0, 6), "RD002|");
}

}  // namespace
}  // namespace rd::analysis
