#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "util/json.h"

namespace rd::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7LL).dump(), "-7");
  EXPECT_EQ(Json(std::size_t{9}).dump(), "9");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, DoubleEmissionIgnoresLocale) {
  // snprintf("%.10g") honors the C locale's decimal separator, so under a
  // comma locale 2.5 used to serialize as "2,5" — invalid JSON that also
  // silently changed array arity ([2,5] parses as two integers). Emission
  // now goes through std::to_chars, which is locale-independent; prove it
  // by dumping under every comma-separator locale the host provides.
  const char* kCommaLocales[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                 "fr_FR", "nl_NL.UTF-8"};
  const std::string before = setlocale(LC_ALL, nullptr);
  bool tried_comma_locale = false;
  for (const char* name : kCommaLocales) {
    if (setlocale(LC_ALL, name) == nullptr) continue;
    tried_comma_locale = true;
    EXPECT_EQ(Json(2.5).dump(), "2.5") << name;
    EXPECT_EQ(Json(-0.125).dump(), "-0.125") << name;
    auto array = Json::array();
    array.push_back(2.5);
    array.push_back(0.75);
    EXPECT_EQ(array.dump(), "[2.5,0.75]") << name;
  }
  setlocale(LC_ALL, before.c_str());
  // Most CI containers ship only the C locale; the invariant still holds
  // there, so check it unconditionally too.
  if (!tried_comma_locale) {
    EXPECT_EQ(Json(2.5).dump(), "2.5");
  }
}

TEST(Json, ArraysCompact) {
  auto array = Json::array();
  array.push_back(1);
  array.push_back("two");
  array.push_back(Json());
  EXPECT_EQ(array.dump(), "[1,\"two\",null]");
  EXPECT_TRUE(array.is_array());
  EXPECT_EQ(array.size(), 3u);
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  auto object = Json::object();
  object.set("z", 1);
  object.set("a", 2);
  EXPECT_EQ(object.dump(), "{\"z\":1,\"a\":2}");
  EXPECT_TRUE(object.is_object());
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, SetOverwritesExistingKey) {
  auto object = Json::object();
  object.set("k", 1);
  object.set("k", 2);
  EXPECT_EQ(object.dump(), "{\"k\":2}");
  EXPECT_EQ(object.size(), 1u);
}

TEST(Json, Nesting) {
  auto inner = Json::object();
  inner.set("x", 1);
  auto array = Json::array();
  array.push_back(std::move(inner));
  auto root = Json::object();
  root.set("items", std::move(array));
  EXPECT_EQ(root.dump(), "{\"items\":[{\"x\":1}]}");
}

TEST(Json, PrettyPrinting) {
  auto root = Json::object();
  root.set("a", 1);
  auto array = Json::array();
  array.push_back(2);
  root.set("b", std::move(array));
  EXPECT_EQ(root.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, TypeErrorsThrow) {
  auto array = Json::array();
  EXPECT_THROW(array.set("k", 1), std::logic_error);
  auto object = Json::object();
  EXPECT_THROW(object.push_back(1), std::logic_error);
  EXPECT_THROW(Json(1).push_back(1), std::logic_error);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_EQ(Json::parse("true")->bool_or(false), true);
  EXPECT_EQ(Json::parse("false")->bool_or(true), false);
  EXPECT_EQ(Json::parse("42")->int_or(0), 42);
  EXPECT_EQ(Json::parse("-7")->int_or(0), -7);
  EXPECT_EQ(*Json::parse("\"hi\"")->if_string(), "hi");
  EXPECT_EQ(Json::parse("  42  ")->int_or(0), 42);  // surrounding whitespace
}

TEST(JsonParse, IntegerVersusDouble) {
  // Numbers without '.', 'e', or a fraction stay integers (so a reparsed
  // report dumps back byte-identically); the rest widen to double.
  EXPECT_EQ(Json::parse("42")->dump(), "42");
  EXPECT_EQ(Json::parse("2.5")->number_or(0), 2.5);
  EXPECT_EQ(Json::parse("1e2")->number_or(0), 100.0);
  EXPECT_EQ(Json::parse("-0.25")->number_or(0), -0.25);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(*Json::parse(R"("a\"b\\c\/d\n\t")")->if_string(), "a\"b\\c/d\n\t");
  // \uXXXX decodes to UTF-8: U+0041 'A' (1 byte), U+00E9 'é' (2 bytes),
  // U+00A7 '§' as emitted in the rules' paper citations.
  EXPECT_EQ(*Json::parse("\"\\u0041\"")->if_string(), "A");
  EXPECT_EQ(*Json::parse("\"\\u00e9\"")->if_string(), "\xc3\xa9");
  EXPECT_EQ(*Json::parse("\"\\u00a75.2\"")->if_string(), "\xc2\xa7"
                                                         "5.2");
}

TEST(JsonParse, Structures) {
  const auto doc = Json::parse(
      R"({"name": "rdlint", "count": 2, "items": [1, {"x": true}], "none": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(*doc->get("name")->if_string(), "rdlint");
  EXPECT_EQ(doc->get("count")->int_or(0), 2);
  const auto* items = doc->get("items");
  ASSERT_TRUE(items != nullptr && items->is_array());
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ(items->at(0)->int_or(0), 1);
  EXPECT_EQ(items->at(1)->get("x")->bool_or(false), true);
  EXPECT_EQ(items->at(2), nullptr);  // out of range
  EXPECT_TRUE(doc->get("none")->is_null());
  EXPECT_EQ(doc->get("absent"), nullptr);
}

TEST(JsonParse, RoundTripsItsOwnOutput) {
  auto root = Json::object();
  root.set("a", 1);
  root.set("b", "two\nlines");
  auto array = Json::array();
  array.push_back(Json());
  array.push_back(true);
  array.push_back(2.5);
  root.set("c", std::move(array));
  for (const int indent : {-1, 0, 2}) {
    const auto text = root.dump(indent);
    const auto reparsed = Json::parse(text);
    ASSERT_TRUE(reparsed.has_value()) << text;
    EXPECT_EQ(reparsed->dump(indent), text);
  }
}

TEST(JsonParse, MalformedInputReturnsNullopt) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("   ").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("truth").has_value());
  EXPECT_FALSE(Json::parse("nan").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());       // trailing garbage
  EXPECT_FALSE(Json::parse("{} extra").has_value());  // trailing garbage
}

TEST(JsonParse, NumberGrammar) {
  // The scanner enforces the JSON grammar positionally: sign, integer part
  // (no leading zeros), optional fraction, optional exponent.
  EXPECT_FALSE(Json::parse("1-2").has_value());
  EXPECT_FALSE(Json::parse("1..e+").has_value());
  EXPECT_FALSE(Json::parse("1.").has_value());
  EXPECT_FALSE(Json::parse(".5").has_value());
  EXPECT_FALSE(Json::parse("1e").has_value());
  EXPECT_FALSE(Json::parse("1e+").has_value());
  EXPECT_FALSE(Json::parse("01").has_value());
  EXPECT_FALSE(Json::parse("-").has_value());
  EXPECT_FALSE(Json::parse("+1").has_value());
  EXPECT_FALSE(Json::parse("1.2.3").has_value());
  EXPECT_FALSE(Json::parse("[1-2]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": 1..e+}").has_value());

  EXPECT_EQ(Json::parse("0")->int_or(-1), 0);
  EXPECT_EQ(Json::parse("-0")->int_or(-1), 0);
  EXPECT_EQ(Json::parse("0.5")->number_or(0), 0.5);
  EXPECT_EQ(Json::parse("1e-2")->number_or(0), 0.01);
  EXPECT_EQ(Json::parse("1E+2")->number_or(0), 100.0);
  EXPECT_EQ(Json::parse("12.75e1")->number_or(0), 127.5);
}

TEST(JsonParse, UnicodeEscapeSurrogatePairs) {
  // A surrogate pair decodes to one supplementary-plane code point in
  // 4-byte UTF-8, not two invalid 3-byte sequences.
  EXPECT_EQ(*Json::parse("\"\\uD83D\\uDE00\"")->if_string(),
            "\xF0\x9F\x98\x80");  // U+1F600
  EXPECT_EQ(*Json::parse("\"\\uD800\\uDC00\"")->if_string(),
            "\xF0\x90\x80\x80");  // U+10000, least pair
  EXPECT_EQ(*Json::parse("\"\\uDBFF\\uDFFF\"")->if_string(),
            "\xF4\x8F\xBF\xBF");  // U+10FFFF, greatest pair
  EXPECT_EQ(*Json::parse("\"x\\uD83D\\uDE00y\"")->if_string(),
            "x\xF0\x9F\x98\x80y");

  // Lone surrogates are not scalar values: reject instead of emitting the
  // invalid 3-byte encoding of 0xD800-0xDFFF.
  EXPECT_FALSE(Json::parse("\"\\uD800\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\uDC00\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\uD83Dx\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\uD83D\\n\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\uD83D\\u0041\"").has_value());

  // BMP escapes still work, including the top of the BMP.
  EXPECT_EQ(*Json::parse("\"\\uFFFD\"")->if_string(), "\xEF\xBF\xBD");
}

TEST(JsonParse, DepthGuardRejectsDeepNesting) {
  // 256 levels are fine; a pathological 10k-deep document must fail
  // cleanly instead of overflowing the stack.
  const std::string deep(10000, '[');
  EXPECT_FALSE(Json::parse(deep).has_value());
  std::string balanced;
  for (int i = 0; i < 100; ++i) balanced += '[';
  balanced += "1";
  for (int i = 0; i < 100; ++i) balanced += ']';
  EXPECT_TRUE(Json::parse(balanced).has_value());
}

}  // namespace
}  // namespace rd::util
