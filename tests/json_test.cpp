#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "util/json.h"

namespace rd::util {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7LL).dump(), "-7");
  EXPECT_EQ(Json(std::size_t{9}).dump(), "9");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
  EXPECT_EQ(Json("a\nb\tc").dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, NonFiniteBecomesNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, DoubleEmissionIgnoresLocale) {
  // snprintf("%.10g") honors the C locale's decimal separator, so under a
  // comma locale 2.5 used to serialize as "2,5" — invalid JSON that also
  // silently changed array arity ([2,5] parses as two integers). Emission
  // now goes through std::to_chars, which is locale-independent; prove it
  // by dumping under every comma-separator locale the host provides.
  const char* kCommaLocales[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                 "fr_FR", "nl_NL.UTF-8"};
  const std::string before = setlocale(LC_ALL, nullptr);
  bool tried_comma_locale = false;
  for (const char* name : kCommaLocales) {
    if (setlocale(LC_ALL, name) == nullptr) continue;
    tried_comma_locale = true;
    EXPECT_EQ(Json(2.5).dump(), "2.5") << name;
    EXPECT_EQ(Json(-0.125).dump(), "-0.125") << name;
    auto array = Json::array();
    array.push_back(2.5);
    array.push_back(0.75);
    EXPECT_EQ(array.dump(), "[2.5,0.75]") << name;
  }
  setlocale(LC_ALL, before.c_str());
  // Most CI containers ship only the C locale; the invariant still holds
  // there, so check it unconditionally too.
  if (!tried_comma_locale) {
    EXPECT_EQ(Json(2.5).dump(), "2.5");
  }
}

TEST(Json, ArraysCompact) {
  auto array = Json::array();
  array.push_back(1);
  array.push_back("two");
  array.push_back(Json());
  EXPECT_EQ(array.dump(), "[1,\"two\",null]");
  EXPECT_TRUE(array.is_array());
  EXPECT_EQ(array.size(), 3u);
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  auto object = Json::object();
  object.set("z", 1);
  object.set("a", 2);
  EXPECT_EQ(object.dump(), "{\"z\":1,\"a\":2}");
  EXPECT_TRUE(object.is_object());
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(Json, SetOverwritesExistingKey) {
  auto object = Json::object();
  object.set("k", 1);
  object.set("k", 2);
  EXPECT_EQ(object.dump(), "{\"k\":2}");
  EXPECT_EQ(object.size(), 1u);
}

TEST(Json, Nesting) {
  auto inner = Json::object();
  inner.set("x", 1);
  auto array = Json::array();
  array.push_back(std::move(inner));
  auto root = Json::object();
  root.set("items", std::move(array));
  EXPECT_EQ(root.dump(), "{\"items\":[{\"x\":1}]}");
}

TEST(Json, PrettyPrinting) {
  auto root = Json::object();
  root.set("a", 1);
  auto array = Json::array();
  array.push_back(2);
  root.set("b", std::move(array));
  EXPECT_EQ(root.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, TypeErrorsThrow) {
  auto array = Json::array();
  EXPECT_THROW(array.set("k", 1), std::logic_error);
  auto object = Json::object();
  EXPECT_THROW(object.push_back(1), std::logic_error);
  EXPECT_THROW(Json(1).push_back(1), std::logic_error);
}

}  // namespace
}  // namespace rd::util
