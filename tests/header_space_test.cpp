// Unit tests for the symbolic header-space layer: the HeaderPredicate
// union-of-boxes algebra (intersect / subtract / emptiness / equivalence,
// with the port-line edges 0, 65535 and kNoPort and prefix aliasing),
// the SymbolicPacketFilter ACL lowering with its golden shadowed-clause
// fixtures, and the HeaderSpace pair predicates and intent verification
// against hand-computable two-LAN networks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/header_space.h"
#include "analysis/packet_reachability.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "model/header_predicate.h"
#include "model/policy.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using model::HeaderAtom;
using model::HeaderPredicate;
using model::kAllProtocols;
using model::kNoPort;
using model::ProtocolDomain;
using rd::test::addr;
using rd::test::network_of;
using rd::test::parse;
using rd::test::pfx;

HeaderAtom atom(std::string_view src, std::string_view dst,
                std::uint64_t protocols = kAllProtocols,
                std::uint32_t port_lo = 0, std::uint32_t port_hi = kNoPort) {
  HeaderAtom a;
  a.source = pfx(src);
  a.destination = pfx(dst);
  a.protocols = protocols;
  a.port_lo = port_lo;
  a.port_hi = port_hi;
  return a;
}

// --- prefix difference -------------------------------------------------------

TEST(PrefixDifference, DisjointAndCovering) {
  EXPECT_TRUE(model::prefix_difference(pfx("10.0.0.0/16"), pfx("10.0.0.0/8"))
                  .empty());
  const auto same =
      model::prefix_difference(pfx("10.0.0.0/16"), pfx("10.0.0.0/16"));
  EXPECT_TRUE(same.empty());
  const auto disjoint =
      model::prefix_difference(pfx("10.0.0.0/16"), pfx("10.1.0.0/16"));
  ASSERT_EQ(disjoint.size(), 1u);
  EXPECT_EQ(disjoint[0], pfx("10.0.0.0/16"));
}

TEST(PrefixDifference, BuddyWalk) {
  // 10.0.0.0/14 minus 10.1.128.0/17 = the buddies along the path, emitted
  // coarsest-first. Every address is in exactly one output piece.
  const auto parts =
      model::prefix_difference(pfx("10.0.0.0/14"), pfx("10.1.128.0/17"));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], pfx("10.2.0.0/15"));
  EXPECT_EQ(parts[1], pfx("10.0.0.0/16"));
  EXPECT_EQ(parts[2], pfx("10.1.0.0/17"));
  for (const auto& p : parts) {
    EXPECT_FALSE(p.overlaps(pfx("10.1.128.0/17"))) << p.to_string();
    EXPECT_TRUE(pfx("10.0.0.0/14").contains(p));
  }
}

TEST(PrefixDifference, HostAliasingEdges) {
  // Removing one host from a /31 leaves exactly its buddy host route.
  const auto parts =
      model::prefix_difference(pfx("10.0.0.0/31"), pfx("10.0.0.1/32"));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], pfx("10.0.0.0/32"));
  // Removing a host from 0.0.0.0/0 produces all 32 sibling prefixes.
  EXPECT_EQ(
      model::prefix_difference(pfx("0.0.0.0/0"), pfx("255.255.255.255/32"))
          .size(),
      32u);
}

// --- predicate algebra -------------------------------------------------------

TEST(HeaderPredicate, EmptinessAndAll) {
  EXPECT_TRUE(HeaderPredicate::none().is_empty());
  EXPECT_FALSE(HeaderPredicate::all().is_empty());
  // Empty atoms are never stored.
  HeaderPredicate p;
  p.unite(atom("10.0.0.0/8", "0.0.0.0/0", 0));            // no protocols
  p.unite(atom("10.0.0.0/8", "0.0.0.0/0", kAllProtocols,  // inverted ports
                5, 4));
  EXPECT_TRUE(p.is_empty());
}

TEST(HeaderPredicate, MembershipPortEdges) {
  const auto p = HeaderPredicate::of(
      atom("10.0.0.0/8", "0.0.0.0/0", kAllProtocols, 0, 65535));
  EXPECT_TRUE(p.contains(addr("10.1.2.3"), addr("1.2.3.4"), 1, 0));
  EXPECT_TRUE(p.contains(addr("10.1.2.3"), addr("1.2.3.4"), 1, 65535));
  // kNoPort (the portless packet) lies outside the real-port interval.
  EXPECT_FALSE(p.contains(addr("10.1.2.3"), addr("1.2.3.4"), 1, kNoPort));
  EXPECT_TRUE(HeaderPredicate::all().contains(addr("10.1.2.3"),
                                              addr("1.2.3.4"), 1, kNoPort));
}

TEST(HeaderPredicate, IntersectPicksLongerPrefixAndTightenedRanges) {
  const auto a = HeaderPredicate::of(
      atom("10.0.0.0/8", "0.0.0.0/0", 0b0110, 0, 100));
  const auto b = HeaderPredicate::of(
      atom("10.1.0.0/16", "20.0.0.0/8", 0b0100, 50, kNoPort));
  const auto both = a.intersect(b);
  ASSERT_EQ(both.atom_count(), 1u);
  const auto& got = both.atoms()[0];
  EXPECT_EQ(got.source, pfx("10.1.0.0/16"));
  EXPECT_EQ(got.destination, pfx("20.0.0.0/8"));
  EXPECT_EQ(got.protocols, 0b0100u);
  EXPECT_EQ(got.port_lo, 50u);
  EXPECT_EQ(got.port_hi, 100u);
  // Disjoint on any one coordinate means an empty intersection.
  EXPECT_TRUE(a.intersect(HeaderPredicate::of(
                   atom("11.0.0.0/8", "0.0.0.0/0")))
                  .is_empty());
  EXPECT_TRUE(a.intersect(HeaderPredicate::of(
                   atom("10.0.0.0/8", "0.0.0.0/0", 0b1000)))
                  .is_empty());
  EXPECT_TRUE(a.intersect(HeaderPredicate::of(
                   atom("10.0.0.0/8", "0.0.0.0/0", 0b0110, 101, 200)))
                  .is_empty());
}

TEST(HeaderPredicate, SubtractPeelsEveryCoordinate) {
  const auto whole = HeaderPredicate::all();
  const auto hole = atom("10.0.0.0/8", "20.0.0.0/8", 0b1, 80, 80);
  const auto rest = whole.subtract(hole);
  EXPECT_FALSE(rest.is_empty());
  // Headers in the hole are gone; headers differing in exactly one
  // coordinate remain.
  EXPECT_FALSE(rest.contains(addr("10.1.1.1"), addr("20.1.1.1"), 0b1, 80));
  EXPECT_TRUE(rest.contains(addr("11.1.1.1"), addr("20.1.1.1"), 0b1, 80));
  EXPECT_TRUE(rest.contains(addr("10.1.1.1"), addr("21.1.1.1"), 0b1, 80));
  EXPECT_TRUE(rest.contains(addr("10.1.1.1"), addr("20.1.1.1"), 0b10, 80));
  EXPECT_TRUE(rest.contains(addr("10.1.1.1"), addr("20.1.1.1"), 0b1, 79));
  EXPECT_TRUE(rest.contains(addr("10.1.1.1"), addr("20.1.1.1"), 0b1, 81));
  EXPECT_TRUE(rest.contains(addr("10.1.1.1"), addr("20.1.1.1"), 0b1, kNoPort));
  // Subtracting the rest back leaves exactly the hole.
  const auto back = whole.subtract(rest);
  EXPECT_TRUE(back.equivalent(HeaderPredicate::of(hole)));
}

TEST(HeaderPredicate, SubtractPortEdgeZeroAndMax) {
  const auto p = HeaderPredicate::of(atom("0.0.0.0/0", "0.0.0.0/0",
                                          kAllProtocols, 0, kNoPort));
  // Carving out port 0 must not underflow below the line's origin.
  const auto no_zero =
      p.subtract(atom("0.0.0.0/0", "0.0.0.0/0", kAllProtocols, 0, 0));
  EXPECT_FALSE(no_zero.contains(addr("1.1.1.1"), addr("2.2.2.2"), 1, 0));
  EXPECT_TRUE(no_zero.contains(addr("1.1.1.1"), addr("2.2.2.2"), 1, 1));
  // Carving out the top point kNoPort must not overflow past it.
  const auto no_top = p.subtract(
      atom("0.0.0.0/0", "0.0.0.0/0", kAllProtocols, kNoPort, kNoPort));
  EXPECT_TRUE(no_top.contains(addr("1.1.1.1"), addr("2.2.2.2"), 1, 65535));
  EXPECT_FALSE(no_top.contains(addr("1.1.1.1"), addr("2.2.2.2"), 1, kNoPort));
}

TEST(HeaderPredicate, EquivalenceSeesThroughRepresentation) {
  // {10.0.0.0/7} == {10.0.0.0/8} ∪ {11.0.0.0/8} even though the atom lists
  // differ.
  auto split = HeaderPredicate::of(atom("10.0.0.0/8", "0.0.0.0/0"));
  split.unite(atom("11.0.0.0/8", "0.0.0.0/0"));
  const auto joined = HeaderPredicate::of(atom("10.0.0.0/7", "0.0.0.0/0"));
  EXPECT_TRUE(split.equivalent(joined));
  EXPECT_TRUE(joined.equivalent(split));
  // ...and a one-host difference breaks it.
  auto nearly = split;
  nearly = nearly.subtract(atom("10.255.255.255/32", "0.0.0.0/0"));
  EXPECT_FALSE(nearly.equivalent(joined));
  EXPECT_FALSE(joined.equivalent(nearly));
}

TEST(HeaderPredicate, NormalizeDropsCoveredAtomsDeterministically) {
  HeaderPredicate p;
  p.unite(atom("10.1.0.0/16", "0.0.0.0/0", kAllProtocols, 80, 80));
  p.unite(atom("10.0.0.0/8", "0.0.0.0/0"));
  p.normalize();
  ASSERT_EQ(p.atom_count(), 1u);
  EXPECT_EQ(p.atoms()[0].source, pfx("10.0.0.0/8"));
  const auto w = p.witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->source, addr("10.0.0.0"));
  EXPECT_EQ(w->protocol_bit, 0);
  EXPECT_EQ(w->port, 0u);
}

TEST(ProtocolDomain, InterningAndWildcards) {
  ProtocolDomain domain;
  EXPECT_EQ(domain.clause_mask("ip"), kAllProtocols);
  const auto tcp = domain.clause_mask("tcp");
  const auto udp = domain.clause_mask("udp");
  EXPECT_NE(tcp, udp);
  EXPECT_EQ(domain.clause_mask("tcp"), tcp);  // stable on re-intern
  EXPECT_EQ(domain.packet_bit("tcp"), tcp);
  // The unspecified-protocol packet owns bit 0 and matches only wildcards.
  EXPECT_EQ(domain.packet_bit("ip"), 1ULL);
  EXPECT_EQ((tcp | udp) & 1ULL, 0ULL);
  // Never-interned packet protocols share the reserved unknown bit, which
  // no clause mask contains.
  EXPECT_EQ(domain.packet_bit("gre"),
            1ULL << ProtocolDomain::kUnknownBit);
  EXPECT_EQ(domain.bit_name(0), "ip");
  EXPECT_EQ(domain.bit_name(ProtocolDomain::kUnknownBit), "other");
}

// --- SymbolicPacketFilter ----------------------------------------------------

config::AccessList acl_of(std::string_view config_text,
                          std::string_view id = "101") {
  const auto cfg = parse(std::string("hostname x\n") +
                         std::string(config_text));
  const auto* acl = cfg.find_access_list(id);
  EXPECT_NE(acl, nullptr);
  return *acl;
}

TEST(SymbolicPacketFilter, GoldenShadowedExtendedClauses) {
  // Clause 3 is shadowed by the union of clauses 1 and 2; clause 4 by
  // clause 1 alone (narrower port set, same addresses). The RD008
  // heuristic sees neither: both are extended.
  const auto acl = acl_of(
      "access-list 101 permit tcp any any eq 80\n"
      "access-list 101 deny tcp any 10.0.0.0 0.255.255.255\n"
      "access-list 101 deny tcp any 10.1.0.0 0.0.255.255 eq 80\n"
      "access-list 101 deny tcp 10.2.0.0 0.0.255.255 any eq 80\n"
      "access-list 101 permit ip any any\n");
  model::ProtocolDomain domain;
  const model::SymbolicPacketFilter symbolic(acl, domain);
  EXPECT_EQ(symbolic.shadowed(), (std::vector<std::size_t>{2, 3}));
}

TEST(SymbolicPacketFilter, PortOnlyDistinctionIsNotShadowing) {
  const auto acl = acl_of(
      "access-list 101 deny tcp any any eq 80\n"
      "access-list 101 deny tcp any any eq 443\n"
      "access-list 101 permit tcp any any\n");
  model::ProtocolDomain domain;
  const model::SymbolicPacketFilter symbolic(acl, domain);
  EXPECT_TRUE(symbolic.shadowed().empty());
  // The permit set is exactly tcp minus ports {80, 443}: the portless tcp
  // packet and every other port pass.
  const auto tcp = domain.packet_bit("tcp");
  const auto& permitted = symbolic.permitted();
  EXPECT_FALSE(permitted.contains(addr("1.1.1.1"), addr("2.2.2.2"), tcp, 80));
  EXPECT_FALSE(permitted.contains(addr("1.1.1.1"), addr("2.2.2.2"), tcp, 443));
  EXPECT_TRUE(permitted.contains(addr("1.1.1.1"), addr("2.2.2.2"), tcp, 81));
  EXPECT_TRUE(
      permitted.contains(addr("1.1.1.1"), addr("2.2.2.2"), tcp, kNoPort));
}

TEST(SymbolicPacketFilter, MatchesConcreteEvaluatorPointwise) {
  const auto acl = acl_of(
      "access-list 101 permit tcp host 10.1.0.10 host 10.2.0.5 eq 1433\n"
      "access-list 101 deny tcp any any eq 1433\n"
      "access-list 101 deny udp 10.3.0.0 0.0.255.255 any\n"
      "access-list 101 permit ip any any\n");
  model::ProtocolDomain domain;
  const model::SymbolicPacketFilter symbolic(acl, domain);
  const std::vector<std::string> protocols{"ip", "tcp", "udp", "icmp"};
  const std::vector<std::optional<std::uint16_t>> ports{
      std::nullopt, 0, 80, 1433, 65535};
  const std::vector<ip::Ipv4Address> hosts{
      addr("10.1.0.10"), addr("10.2.0.5"), addr("10.3.9.9"), addr("8.8.8.8")};
  for (const auto& proto : protocols) {
    for (const auto& port : ports) {
      for (const auto src : hosts) {
        for (const auto dst : hosts) {
          const bool concrete =
              model::acl_permits_packet(acl, src, dst, port, proto);
          const bool symbolic_verdict = symbolic.permitted().contains(
              src, dst, domain.packet_bit(proto),
              port ? *port : kNoPort);
          EXPECT_EQ(concrete, symbolic_verdict)
              << proto << ' ' << src.to_string() << " -> " << dst.to_string()
              << " port " << (port ? std::to_string(*port) : "none");
        }
      }
    }
  }
}

TEST(SymbolicPacketFilter, SelfEquivalenceAndComplement) {
  const auto acl = acl_of(
      "access-list 101 deny tcp any any eq 23\n"
      "access-list 101 permit tcp any 10.0.0.0 0.255.255.255\n"
      "access-list 101 deny ip any any\n");
  model::ProtocolDomain domain;
  const model::SymbolicPacketFilter a(acl, domain);
  const model::SymbolicPacketFilter b(acl, domain);
  EXPECT_TRUE(a.permitted().equivalent(b.permitted()));
  // permitted ∪ denied == everything, and they are disjoint: the effective
  // regions partition the full space between permit and deny clauses plus
  // the implicit deny.
  const auto denied = HeaderPredicate::all().subtract(a.permitted());
  EXPECT_TRUE(denied.intersect(a.permitted()).is_empty());
  auto whole = a.permitted();
  whole.unite(denied);
  EXPECT_TRUE(whole.equivalent(HeaderPredicate::all()));
}

// --- HeaderSpace -------------------------------------------------------------

struct Fixture {
  model::Network network;
  graph::InstanceSet instances;
  ReachabilityAnalysis routes;

  explicit Fixture(std::vector<std::string> texts)
      : network(network_of(std::move(texts))),
        instances(graph::compute_instances(network)),
        routes(ReachabilityAnalysis::run(network, instances)) {}
};

Fixture filtered_fixture() {
  return Fixture(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip access-group 101 in\n"
       "interface FastEthernet0/1\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.2.0.0 0.0.255.255 area 0\n"
       "access-list 101 permit tcp host 10.1.0.10 host 10.2.0.5 eq 1433\n"
       "access-list 101 deny tcp any any eq 1433\n"
       "access-list 101 permit ip any any\n"});
}

TEST(HeaderSpace, AttachmentRegionsMirrorMostSpecificFirstWins) {
  // A /24 carved by a more-specific /26 on another interface, plus an
  // exact-duplicate subnet pair where the first interface takes the tie.
  const auto fixture = Fixture(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n"
       " ip address 10.1.0.65 255.255.255.192\n"
       "interface FastEthernet0/2\n"
       " ip address 10.9.0.1 255.255.255.0\n",
       "hostname b\n"
       "interface FastEthernet0/0\n"
       " ip address 10.9.0.2 255.255.255.0\n"});
  HeaderSpace space(fixture.network, fixture.instances, fixture.routes);
  const PacketReachability concrete(fixture.network, fixture.instances,
                                    fixture.routes);
  // The /26 shadows a quarter of the /24. Regions sort by Prefix's
  // (length, network) order: the /25 piece precedes the /26 piece.
  const auto& region0 = space.attachment_region(0);
  ASSERT_EQ(region0.size(), 2u);
  EXPECT_EQ(region0[0], pfx("10.1.0.128/25"));
  EXPECT_EQ(region0[1], pfx("10.1.0.0/26"));
  // The duplicate 10.9.0.0/24: interface 2 (router a) wins, b's region is
  // empty.
  EXPECT_EQ(space.attachment_region(2).size(), 1u);
  EXPECT_TRUE(space.attachment_region(3).empty());
  // Pointwise agreement with the concrete resolver on a probe set that
  // straddles every boundary.
  for (const auto probe :
       {addr("10.1.0.3"), addr("10.1.0.64"), addr("10.1.0.127"),
        addr("10.1.0.128"), addr("10.9.0.7"), addr("172.16.0.1")}) {
    const auto symbolic_itf = space.attachment_interface(probe);
    FlowQuery q;
    q.source = probe;
    q.destination = addr("172.31.0.1");
    const bool concrete_attached =
        concrete.evaluate(q) != FlowVerdict::kSourceNotAttached;
    EXPECT_EQ(symbolic_itf.has_value(), concrete_attached)
        << probe.to_string();
  }
}

TEST(HeaderSpace, PairPredicateMatchesConcreteProbes) {
  const auto fixture = filtered_fixture();
  HeaderSpace space(fixture.network, fixture.instances, fixture.routes);
  const PacketReachability concrete(fixture.network, fixture.instances,
                                    fixture.routes);
  const std::vector<std::string> protocols{"ip", "tcp", "udp"};
  const std::vector<std::optional<std::uint16_t>> ports{std::nullopt, 80,
                                                        1433};
  for (const auto& proto : protocols) {
    for (const auto& port : ports) {
      for (const auto src : {addr("10.1.0.10"), addr("10.1.0.11")}) {
        FlowQuery q;
        q.source = src;
        q.destination = addr("10.2.0.5");
        q.protocol = proto;
        q.destination_port = port;
        EXPECT_EQ(space.passes(q),
                  concrete.evaluate(q) == FlowVerdict::kPossiblyReachable)
            << proto << " from " << src.to_string() << " port "
            << (port ? std::to_string(*port) : "none");
      }
    }
  }
  // The pair predicate itself: exactly one host may speak tcp/1433.
  const auto& pred = space.pair_predicate(0, 1);
  const auto tcp = space.protocol_domain().packet_bit("tcp");
  EXPECT_TRUE(pred.contains(addr("10.1.0.10"), addr("10.2.0.5"), tcp, 1433));
  EXPECT_FALSE(pred.contains(addr("10.1.0.11"), addr("10.2.0.5"), tcp, 1433));
}

TEST(HeaderSpace, IntentVerification) {
  // net15-style restricted subnet: the deny intent holds for 10.3.*, is
  // violated for the unfiltered 10.2.*, and the allow intent surfaces the
  // filtered tcp/1433 slice as its witness.
  auto texts = std::vector<std::string>{
      "hostname a\n"
      "! rd-intent deny 10.1.0.0/24 10.3.0.0/24\n"
      "! rd-intent deny 10.1.0.0/24 10.2.0.0/24\n"
      "! rd-intent allow 10.1.0.0/24 10.2.0.0/24\n"
      "interface FastEthernet0/0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface FastEthernet0/1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "interface FastEthernet0/2\n"
      " ip address 10.3.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 deny ip any 10.3.0.0 0.0.0.255\n"
      "access-list 101 deny tcp any any eq 1433\n"
      "access-list 101 permit ip any any\n"};
  const auto fixture = Fixture(std::move(texts));
  const auto intents = collect_intents(fixture.network);
  ASSERT_EQ(intents.size(), 3u);
  EXPECT_EQ(intents[0].describe(), "deny 10.1.0.0/24 -> 10.3.0.0/24");
  const auto outcomes = verify_intents(fixture.network, fixture.instances,
                                       fixture.routes, intents);
  ASSERT_EQ(outcomes.size(), 3u);
  // Everything toward 10.3.0.0/24 is dropped at the ingress filter.
  EXPECT_TRUE(outcomes[0].holds);
  EXPECT_FALSE(outcomes[0].witness.has_value());
  // Toward 10.2.0.0/24 most traffic passes: deny violated, with a
  // deterministic witness inside the intent region.
  ASSERT_FALSE(outcomes[1].holds);
  ASSERT_TRUE(outcomes[1].witness.has_value());
  EXPECT_EQ(outcomes[1].witness->source, addr("10.1.0.0"));
  EXPECT_EQ(outcomes[1].witness->destination, addr("10.2.0.0"));
  // The allow intent fails on exactly the tcp/1433 slice.
  ASSERT_FALSE(outcomes[2].holds);
  ASSERT_TRUE(outcomes[2].witness.has_value());
  EXPECT_EQ(outcomes[2].witness->protocol, "tcp");
  ASSERT_TRUE(outcomes[2].witness->port.has_value());
  EXPECT_EQ(*outcomes[2].witness->port, 1433);
}

TEST(HeaderSpace, IntentDirectiveParsingRoundTrip) {
  const auto cfg = parse(
      "hostname a\n"
      "! rd-intent deny 10.1.0.0/16 10.2.0.0/16 tcp 23\n"
      "! rd-intent allow 10.0.0.0/8 10.0.0.0/8\n"
      "! rd-intent bogus nonsense here\n"
      "! rd-intent deny not-a-prefix 10.0.0.0/8\n"
      "interface FastEthernet0/0\n"
      " ip address 10.1.0.1 255.255.255.0\n");
  ASSERT_EQ(cfg.intents.size(), 2u);
  EXPECT_FALSE(cfg.intents[0].expect_reachable);
  EXPECT_EQ(cfg.intents[0].source, pfx("10.1.0.0/16"));
  EXPECT_EQ(cfg.intents[0].destination, pfx("10.2.0.0/16"));
  EXPECT_EQ(cfg.intents[0].protocol, "tcp");
  ASSERT_TRUE(cfg.intents[0].port.has_value());
  EXPECT_EQ(*cfg.intents[0].port, 23);
  EXPECT_TRUE(cfg.intents[1].expect_reachable);
  EXPECT_EQ(cfg.intents[1].protocol, "ip");
  EXPECT_FALSE(cfg.intents[1].port.has_value());
  // The writer emits directives the parser reads back identically.
  const auto rewritten = parse(config::write_config(cfg));
  EXPECT_EQ(rewritten.intents, cfg.intents);
}

}  // namespace
}  // namespace rd::analysis
