// Regression suite for the headline bugfix: the lenient parser's
// diagnostics (malformed or unrecognized lines it skipped) used to be
// dropped at the model boundary — build_network_* kept only the configs, so
// fleet reports silently presented partial models as clean. These tests pin
// the diagnostics' full journey: parser -> Network -> signature -> report
// JSON, identical on the serial, parallel, and cached paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/parser.h"
#include "model/network.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

// An orphan sub-mode line: " shutdown" indented under nothing. The parser
// skips it with a diagnostic instead of failing.
const char* kOrphanSubModeConfig =
    "hostname crooked\n"
    " shutdown\n"
    "interface Ethernet0\n"
    " ip address 10.1.0.1 255.255.255.0\n";

const char* kCleanConfig =
    "hostname tidy\n"
    "interface Ethernet0\n"
    " ip address 10.1.0.2 255.255.255.0\n";

TEST(ParseDiagnostics, ParserReportsOrphanSubModeLine) {
  const auto result = config::parse_config(kOrphanSubModeConfig);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].message,
            "sub-mode command outside any block");
  EXPECT_EQ(result.diagnostics[0].line, 2u);
}

TEST(ParseDiagnostics, NetworkBuiltFromParsesKeepsPerRouterDiagnostics) {
  const auto network =
      pipeline::build_network_serial({kOrphanSubModeConfig, kCleanConfig});
  ASSERT_EQ(network.router_count(), 2u);
  ASSERT_EQ(network.parse_diagnostics().size(), 2u);
  ASSERT_EQ(network.parse_diagnostics(0).size(), 1u);
  EXPECT_EQ(network.parse_diagnostics(0)[0].message,
            "sub-mode command outside any block");
  EXPECT_TRUE(network.parse_diagnostics(1).empty());
  EXPECT_EQ(network.total_parse_diagnostics(), 1u);
}

TEST(ParseDiagnostics, InMemoryBuildCarriesNoDiagnostics) {
  auto parsed = config::parse_config(kOrphanSubModeConfig);
  const auto network = model::Network::build({std::move(parsed.config)});
  ASSERT_EQ(network.parse_diagnostics().size(), 1u);
  EXPECT_TRUE(network.parse_diagnostics(0).empty());
  EXPECT_EQ(network.total_parse_diagnostics(), 0u);
}

TEST(ParseDiagnostics, ReportJsonSurfacesCountsAndMessages) {
  const auto network =
      pipeline::build_network_serial({kOrphanSubModeConfig, kCleanConfig});
  const auto report = pipeline::analyze_network("diag-net", network);

  EXPECT_EQ(report.parse_diagnostics, 1u);
  EXPECT_NE(report.json.find("\"parse_diagnostics\""), std::string::npos);
  EXPECT_NE(report.json.find("sub-mode command outside any block"),
            std::string::npos);
  EXPECT_NE(report.json.find("\"crooked\""), std::string::npos);
  // The clean router contributes no per-router diagnostics entry.
  const auto diags_pos = report.json.find("\"parse_diagnostics\"");
  const auto census_pos = report.json.find("\"census\"");
  ASSERT_NE(census_pos, std::string::npos);
  EXPECT_EQ(report.json.substr(diags_pos, census_pos - diags_pos)
                .find("\"tidy\""),
            std::string::npos);
}

TEST(ParseDiagnostics, SignatureIncludesDiagnosticsSoDifferentialSeesThem) {
  const auto with = pipeline::network_signature(
      pipeline::build_network_serial({kOrphanSubModeConfig}));
  // Same modeled config, but the malformed line removed: the models are
  // equal, the diagnostics are not — the signature must distinguish them.
  const auto without = pipeline::network_signature(
      pipeline::build_network_serial({"hostname crooked\n"
                                      "interface Ethernet0\n"
                                      " ip address 10.1.0.1 255.255.255.0\n"}));
  EXPECT_NE(with, without);
  EXPECT_NE(with.find("sub-mode command outside any block"),
            std::string::npos);
}

TEST(ParseDiagnostics, SerialParallelAndCachedPathsAgree) {
  std::vector<std::string> texts = {kOrphanSubModeConfig, kCleanConfig,
                                    "hostname third\n"
                                    "bogus-command here\n"
                                    "interface Serial0\n"
                                    " ip address 10.2.0.1 255.255.255.252\n"};
  const auto serial = pipeline::build_network_serial(texts);
  const auto reference = pipeline::network_signature(serial);
  EXPECT_EQ(serial.total_parse_diagnostics(), 2u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    pipeline::Options options;
    options.threads = threads;
    EXPECT_EQ(pipeline::network_signature(
                  pipeline::build_network_parallel(texts, options)),
              reference)
        << "parallel threads " << threads;

    pipeline::ParseCache cache;
    util::ThreadPool pool(threads);
    for (int round = 0; round < 2; ++round) {
      EXPECT_EQ(pipeline::network_signature(
                    pipeline::build_network_cached(texts, cache, pool)),
                reference)
          << "cached threads " << threads << " round " << round;
    }
  }
}

TEST(ParseDiagnostics, FleetReportCountsDiagnostics) {
  std::vector<pipeline::FleetInput> inputs;
  inputs.push_back({"dirty", {kOrphanSubModeConfig, kCleanConfig}});
  inputs.push_back({"clean", {kCleanConfig}});
  const auto reports = pipeline::analyze_fleet_serial(inputs);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].parse_diagnostics, 1u);
  EXPECT_EQ(reports[1].parse_diagnostics, 0u);

  pipeline::Options options;
  options.threads = 8;
  const auto parallel = pipeline::analyze_fleet_parallel(inputs, options);
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(parallel[0].parse_diagnostics, 1u);
  EXPECT_EQ(parallel[0].json, reports[0].json);
  EXPECT_EQ(parallel[1].json, reports[1].json);
}

}  // namespace
}  // namespace rd
