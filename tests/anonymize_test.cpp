#include <gtest/gtest.h>

#include <set>

#include "anonymize/anonymizer.h"
#include "anonymize/ipanon.h"
#include "config/lexer.h"
#include "testutil.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rd::anonymize {

using util::Sha1;
using util::base62_token;

namespace {

// --- SHA-1 (RFC 3174 / FIPS 180 test vectors) --------------------------------

TEST(Sha1, KnownVectors) {
  EXPECT_EQ(Sha1::hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(Sha1::hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, MillionAs) {
  Sha1 sha;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  const auto digest = sha.digest();
  static constexpr std::uint8_t kExpected[20] = {
      0x34, 0xaa, 0x97, 0x3c, 0xd4, 0xc4, 0xda, 0xa4, 0xf6, 0x1e,
      0xeb, 0x2b, 0xdb, 0xad, 0x27, 0x31, 0x65, 0x34, 0x01, 0x6f};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(digest[static_cast<std::size_t>(i)], kExpected[i]);
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Sha1 sha;
  sha.update("hello ");
  sha.update("world");
  EXPECT_EQ(sha.digest(), Sha1::hash("hello world"));
}

TEST(Sha1, BlockBoundaries) {
  // Lengths around the 55/56/64-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string data(len, 'x');
    Sha1 split;
    split.update(data.substr(0, len / 2));
    split.update(data.substr(len / 2));
    EXPECT_EQ(split.digest(), Sha1::hash(data)) << len;
  }
}

TEST(Base62, ProducesIdentifierSafeTokens) {
  const auto digest = Sha1::hash("route-map-name");
  const auto token = base62_token(digest, 11);
  EXPECT_EQ(token.size(), 11u);
  for (char c : token) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                (c >= 'A' && c <= 'Z'));
  }
  EXPECT_FALSE(token[0] >= '0' && token[0] <= '9');
  // Deterministic.
  EXPECT_EQ(base62_token(digest, 11), token);
}

// --- Prefix-preserving IP anonymization --------------------------------------

TEST(IpAnon, IsDeterministic) {
  const PrefixPreservingAnonymizer anon(1234);
  const auto a = *ip::Ipv4Address::parse("66.251.75.144");
  EXPECT_EQ(anon.anonymize(a), anon.anonymize(a));
}

TEST(IpAnon, DifferentKeysDifferentMappings) {
  const PrefixPreservingAnonymizer a1(1), a2(2);
  const auto a = *ip::Ipv4Address::parse("10.1.2.3");
  EXPECT_NE(a1.anonymize(a), a2.anonymize(a));
}

int shared_prefix_length(std::uint32_t x, std::uint32_t y) {
  const std::uint32_t diff = x ^ y;
  if (diff == 0) return 32;
  int count = 0;
  for (int bit = 31; bit >= 0 && ((diff >> bit) & 1u) == 0; --bit) ++count;
  return count;
}

TEST(IpAnon, PreservesPrefixRelationsExactly) {
  // The defining property: anonymized addresses share exactly as many
  // leading bits as the originals.
  const PrefixPreservingAnonymizer anon(777);
  util::Rng rng(31337);
  for (int i = 0; i < 500; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    // Craft y sharing exactly k bits with x.
    const int k = static_cast<int>(rng.below(32));
    std::uint32_t y = x ^ (1u << (31 - k));
    y ^= static_cast<std::uint32_t>(rng.next()) & ((1u << (31 - k)) - 1u);
    const auto ax = anon.anonymize(ip::Ipv4Address(x)).value();
    const auto ay = anon.anonymize(ip::Ipv4Address(y)).value();
    ASSERT_EQ(shared_prefix_length(x, y), k);
    EXPECT_EQ(shared_prefix_length(ax, ay), k);
  }
}

TEST(IpAnon, IsInjectiveOnSample) {
  const PrefixPreservingAnonymizer anon(5);
  util::Rng rng(6);
  std::set<std::uint32_t> outputs;
  std::set<std::uint32_t> inputs;
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.next());
    if (!inputs.insert(x).second) continue;
    EXPECT_TRUE(outputs.insert(anon.anonymize(ip::Ipv4Address(x)).value())
                    .second);
  }
}

TEST(IpAnon, PrefixOverloadKeepsLength) {
  const PrefixPreservingAnonymizer anon(9);
  const auto p = *ip::Prefix::parse("10.1.2.0/24");
  const auto q = anon.anonymize(p);
  EXPECT_EQ(q.length(), 24);
  // Subnet membership is preserved: an address inside maps inside.
  const auto inside = anon.anonymize(*ip::Ipv4Address::parse("10.1.2.77"));
  EXPECT_TRUE(q.contains(inside));
}

// --- Whole-config anonymization ----------------------------------------------

TEST(Anonymizer, KeywordsPassThrough) {
  Anonymizer anon(1);
  EXPECT_EQ(anon.anonymize_token("interface"), "interface");
  EXPECT_EQ(anon.anonymize_token("redistribute"), "redistribute");
  EXPECT_EQ(anon.anonymize_token("FastEthernet"), "FastEthernet");
}

TEST(Anonymizer, InterfaceUnitsPassThrough) {
  Anonymizer anon(1);
  EXPECT_EQ(anon.anonymize_token("Serial1/0.5"), "Serial1/0.5");
  EXPECT_EQ(anon.anonymize_token("FastEthernet0/1"), "FastEthernet0/1");
  EXPECT_EQ(anon.anonymize_token("Loopback0"), "Loopback0");
}

TEST(Anonymizer, PlainIntegersPassThrough) {
  Anonymizer anon(1);
  EXPECT_EQ(anon.anonymize_token("100"), "100");
  EXPECT_EQ(anon.anonymize_token("65000"), "65000");
}

TEST(Anonymizer, MasksPassThroughAddressesDoNot) {
  Anonymizer anon(1);
  EXPECT_EQ(anon.anonymize_token("255.255.255.252"), "255.255.255.252");
  EXPECT_EQ(anon.anonymize_token("0.0.0.127"), "0.0.0.127");
  const auto mapped = anon.anonymize_token("66.251.75.144");
  EXPECT_NE(mapped, "66.251.75.144");
  EXPECT_TRUE(ip::Ipv4Address::parse(mapped).has_value());
}

TEST(Anonymizer, FreeTokensAreHashedConsistently) {
  Anonymizer anon(1);
  const auto h1 = anon.anonymize_token("my-route-map");
  const auto h2 = anon.anonymize_token("my-route-map");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, "my-route-map");
  EXPECT_EQ(h1.size(), 11u);  // the paper's "8aTzlvBrbaW" style
  EXPECT_NE(anon.anonymize_token("other-name"), h1);
  EXPECT_EQ(anon.hashed_token_count(), 2u);
}

TEST(Anonymizer, PublicAsnRenumberedPrivateKept) {
  Anonymizer anon(1);
  const auto pub = anon.anonymize_asn(7018);
  EXPECT_NE(pub, 7018u);
  EXPECT_FALSE(ip::is_private_asn(pub));
  EXPECT_EQ(anon.anonymize_asn(7018), pub);  // consistent
  EXPECT_EQ(anon.anonymize_asn(65001), 65001u);  // private untouched
}

TEST(Anonymizer, AsnRenumberingIsInjective) {
  Anonymizer anon(2);
  std::set<std::uint32_t> outputs;
  for (std::uint32_t asn = 1; asn <= 500; ++asn) {
    EXPECT_TRUE(outputs.insert(anon.anonymize_asn(asn)).second);
  }
}

TEST(Anonymizer, CommentTextRemoved) {
  Anonymizer anon(1);
  const auto out = anon.anonymize("! secret location: datacenter 7\nend\n");
  EXPECT_EQ(out, "!\nend\n");
}

TEST(Anonymizer, AsnContextDetected) {
  Anonymizer anon(1);
  const auto out = anon.anonymize(
      "router bgp 7018\n neighbor 10.0.0.2 remote-as 701\n");
  EXPECT_EQ(out.find("7018"), std::string::npos);
  EXPECT_EQ(out.find(" 701\n"), std::string::npos);
  // Structure is intact.
  EXPECT_NE(out.find("router bgp "), std::string::npos);
  EXPECT_NE(out.find("remote-as "), std::string::npos);
}

TEST(Anonymizer, PreservesIndentation) {
  Anonymizer anon(1);
  const auto out = anon.anonymize("interface Ethernet0\n shutdown\n");
  EXPECT_NE(out.find("\n shutdown\n"), std::string::npos);
}

TEST(Anonymizer, HostnameIsHidden) {
  Anonymizer anon(1);
  const auto out = anon.anonymize("hostname nyc-core-7\n");
  EXPECT_EQ(out.find("nyc-core-7"), std::string::npos);
  EXPECT_NE(out.find("hostname "), std::string::npos);
}

TEST(Anonymizer, AnonymizedConfigStillParses) {
  Anonymizer anon(99);
  const auto out = anon.anonymize(rd::test::kFigure2Config);
  const auto result = config::parse_config(out, "anon");
  EXPECT_TRUE(result.diagnostics.empty())
      << (result.diagnostics.empty() ? "" : result.diagnostics[0].message);
  const auto& cfg = result.config;
  EXPECT_EQ(cfg.interfaces.size(), 3u);
  EXPECT_EQ(cfg.router_stanzas.size(), 3u);
  EXPECT_EQ(cfg.access_lists.size(), 1u);
  EXPECT_EQ(cfg.route_maps.size(), 1u);
  EXPECT_EQ(cfg.static_routes.size(), 1u);
  // Same structural quantities: masks unchanged.
  EXPECT_EQ(cfg.interfaces[1].address->mask.length(), 30);
}

TEST(Anonymizer, StructurePreservedForLinkInference) {
  // Two routers sharing a /30: after anonymization with one Anonymizer
  // instance, they must still share a subnet (the paper's key requirement).
  const std::string r1 =
      "hostname a\ninterface Serial0/0\n ip address 10.0.0.1 "
      "255.255.255.252\n";
  const std::string r2 =
      "hostname b\ninterface Serial0/0\n ip address 10.0.0.2 "
      "255.255.255.252\n";
  Anonymizer anon(123);
  const auto net = rd::test::network_of({anon.anonymize(r1),
                                         anon.anonymize(r2)});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_EQ(net.links()[0].interfaces.size(), 2u);
  EXPECT_EQ(net.links()[0].subnet.length(), 30);
}

TEST(Anonymizer, LineCountUnchanged) {
  Anonymizer anon(5);
  const auto out = anon.anonymize(rd::test::kFigure2Config);
  EXPECT_EQ(config::count_command_lines(out),
            config::count_command_lines(rd::test::kFigure2Config));
}

}  // namespace
}  // namespace rd::anonymize
