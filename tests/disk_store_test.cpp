// The persistence layer under the parse cache (DESIGN.md §14): the
// ParseResult binary codec must round-trip losslessly (byte-stable
// re-encode, model-identical rebuild), the content-addressed DiskStore
// must verify what it loads — truncation, bit-flips, bad magic, and
// future format versions are rejected, never misread — and the cache+store
// composite must serve a restart entirely from disk, fall back to a cold
// parse on corruption, bound its memory under the LRU byte cap, and
// survive a multi-threaded hammer with consistent accounting.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "config/parser.h"
#include "config/serialize.h"
#include "config/writer.h"
#include "model/network.h"
#include "pipeline/disk_store.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

std::vector<std::string> enterprise_texts() {
  synth::ManagedEnterpriseParams params;
  params.regions = 2;
  params.spokes_per_region = 5;
  params.ebgp_spoke_rate = 0.3;
  std::vector<std::string> texts;
  for (const auto& cfg : synth::make_managed_enterprise(params).configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- Codec ------------------------------------------------------------------

TEST(ParseResultCodec, RoundTripIsLosslessAndByteStable) {
  const auto texts = enterprise_texts();
  ASSERT_FALSE(texts.empty());
  std::vector<config::RouterConfig> parsed;
  std::vector<config::RouterConfig> decoded;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    const auto name = "config" + std::to_string(i + 1);
    const auto result = config::parse_config(texts[i], name);
    const auto encoded = config::encode_parse_result(result);
    const auto back = config::decode_parse_result(encoded);
    ASSERT_TRUE(back.has_value()) << name;
    // Byte-stable: decode(encode(x)) re-encodes to the same bytes, so the
    // codec has no lossy field.
    EXPECT_EQ(config::encode_parse_result(*back), encoded) << name;
    EXPECT_EQ(back->config.hostname, result.config.hostname);
    EXPECT_EQ(back->config.source_file, name);
    ASSERT_EQ(back->diagnostics.size(), result.diagnostics.size());
    for (std::size_t d = 0; d < result.diagnostics.size(); ++d) {
      EXPECT_EQ(back->diagnostics[d].line, result.diagnostics[d].line);
      EXPECT_EQ(back->diagnostics[d].message, result.diagnostics[d].message);
    }
    parsed.push_back(result.config);
    decoded.push_back(back->config);
  }
  // The decisive equivalence: a network built from decoded results is
  // model-identical (canonical serialization) to one built from parses.
  const auto direct = model::Network::build(std::move(parsed));
  const auto thawed = model::Network::build(std::move(decoded));
  EXPECT_EQ(pipeline::network_signature(direct),
            pipeline::network_signature(thawed));
}

TEST(ParseResultCodec, PreservesDiagnostics) {
  const auto result = config::parse_config(
      "hostname diag-router\n"
      "utter gibberish line\n"
      "interface Ethernet0\n"
      " ip address 10.0.0.1 255.255.255.0\n"
      " another unknown directive\n",
      "configX");
  ASSERT_FALSE(result.diagnostics.empty());
  const auto back =
      config::decode_parse_result(config::encode_parse_result(result));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->diagnostics.size(), result.diagnostics.size());
}

TEST(ParseResultCodec, RejectsMangledPayloads) {
  const auto result = config::parse_config("hostname r1\n", "config1");
  const auto encoded = config::encode_parse_result(result);
  ASSERT_GT(encoded.size(), 8u);

  EXPECT_FALSE(config::decode_parse_result(""));
  // Truncated anywhere: no partial results.
  for (const std::size_t cut : {encoded.size() - 1, encoded.size() / 2,
                                std::size_t{3}}) {
    EXPECT_FALSE(config::decode_parse_result(
        std::string_view(encoded).substr(0, cut)))
        << "cut at " << cut;
  }
  // Trailing bytes: the payload must be exhausted exactly.
  EXPECT_FALSE(config::decode_parse_result(encoded + "x"));
  // A future format version is not guessed at.
  auto future = encoded;
  future[0] = static_cast<char>(config::kParseFormatVersion + 1);
  EXPECT_FALSE(config::decode_parse_result(future));
}

// --- DiskStore --------------------------------------------------------------

TEST(DiskStore, SaveLoadRoundTrip) {
  pipeline::DiskStore store(fresh_dir("rd_store_roundtrip"));
  const std::string payload = "some opaque payload \x01\x02\x00 bytes";
  const auto key = util::Sha1::hex(payload);
  EXPECT_FALSE(store.contains(key));
  EXPECT_FALSE(store.load(key).has_value());
  ASSERT_TRUE(store.save(key, payload));
  EXPECT_TRUE(store.contains(key));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);
  const auto stats = store.stats();
  EXPECT_EQ(stats.saves, 1u);
  EXPECT_EQ(stats.load_hits, 1u);
  EXPECT_EQ(stats.load_rejects, 0u);
}

TEST(DiskStore, RejectsCorruptEntries) {
  const auto dir = fresh_dir("rd_store_corrupt");
  pipeline::DiskStore store(dir);
  const std::string payload(1000, 'p');
  const auto key = util::Sha1::hex(payload);
  ASSERT_TRUE(store.save(key, payload));
  const auto path = dir / (key + ".rdp");
  ASSERT_TRUE(std::filesystem::is_regular_file(path));
  const auto original_size = std::filesystem::file_size(path);

  const auto rewrite = [&](auto mutate) {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Truncated mid-payload.
  rewrite([&](std::string& b) { b.resize(original_size - 7); });
  EXPECT_FALSE(store.load(key).has_value());
  // Truncated mid-header.
  ASSERT_TRUE(store.save(key, payload));
  rewrite([](std::string& b) { b.resize(10); });
  EXPECT_FALSE(store.load(key).has_value());
  // A flipped payload bit fails the checksum.
  ASSERT_TRUE(store.save(key, payload));
  rewrite([](std::string& b) { b[b.size() - 3] ^= 0x40; });
  EXPECT_FALSE(store.load(key).has_value());
  // Bad magic.
  ASSERT_TRUE(store.save(key, payload));
  rewrite([](std::string& b) { b[0] = 'X'; });
  EXPECT_FALSE(store.load(key).has_value());
  // A future store version is rejected, not misread.
  ASSERT_TRUE(store.save(key, payload));
  rewrite([](std::string& b) {
    b[4] = static_cast<char>(pipeline::DiskStore::kStoreVersion + 1);
  });
  EXPECT_FALSE(store.load(key).has_value());
  // Trailing bytes beyond the declared length.
  ASSERT_TRUE(store.save(key, payload));
  rewrite([](std::string& b) { b += "extra"; });
  EXPECT_FALSE(store.load(key).has_value());

  EXPECT_EQ(store.stats().load_rejects, 6u);
  // The healthy copy still loads.
  ASSERT_TRUE(store.save(key, payload));
  EXPECT_TRUE(store.load(key).has_value());
}

// --- ParseCache + DiskStore -------------------------------------------------

TEST(ParseCacheStore, RestartServesEntirelyFromDisk) {
  const auto dir = fresh_dir("rd_store_restart");
  const auto texts = enterprise_texts();

  pipeline::DiskStore store_a(dir);
  pipeline::ParseCache cold;
  cold.attach_store(&store_a);
  for (const auto& text : texts) cold.parse(text);
  const auto cold_stats = cold.stats();
  EXPECT_EQ(cold_stats.misses, cold_stats.entries);
  EXPECT_EQ(cold_stats.disk_hits, 0u);
  EXPECT_EQ(store_a.stats().saves, cold_stats.entries);

  // "Restart": a fresh cache and store over the same directory (a new
  // process lifetime). Every parse must come back from disk.
  pipeline::DiskStore store_b(dir);
  pipeline::ParseCache warm;
  warm.attach_store(&store_b);
  std::vector<std::shared_ptr<const config::ParseResult>> results;
  for (const auto& text : texts) results.push_back(warm.parse(text));
  const auto warm_stats = warm.stats();
  EXPECT_EQ(warm_stats.misses, 0u) << "restart must not reparse";
  EXPECT_EQ(warm_stats.disk_hits, warm_stats.entries);
  EXPECT_EQ(warm_stats.disk_rejects, 0u);

  // And the thawed results build the same model as direct parses.
  std::vector<config::RouterConfig> thawed;
  for (const auto& r : results) thawed.push_back(r->config);
  std::vector<config::RouterConfig> reference;
  for (const auto& text : texts) {
    reference.push_back(config::parse_config(text).config);
  }
  EXPECT_EQ(pipeline::network_signature(model::Network::build(
                std::move(thawed))),
            pipeline::network_signature(model::Network::build(
                std::move(reference))));
}

TEST(ParseCacheStore, CorruptEntryFallsBackToColdParse) {
  const auto dir = fresh_dir("rd_store_fallback");
  const std::string text =
      "hostname victim\n"
      "interface Ethernet0\n"
      " ip address 10.1.2.3 255.255.255.0\n";
  {
    pipeline::DiskStore store(dir);
    pipeline::ParseCache cache;
    cache.attach_store(&store);
    cache.parse(text);
  }
  // Flip one byte inside the stored payload (past the 36-byte header).
  const auto path = dir / (util::Sha1::hex(text) + ".rdp");
  ASSERT_TRUE(std::filesystem::is_regular_file(path));
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(40);
    f.write(&byte, 1);
  }
  pipeline::DiskStore store(dir);
  pipeline::ParseCache cache;
  cache.attach_store(&store);
  const auto result = cache.parse(text);  // must not crash, must be correct
  EXPECT_EQ(result->config.hostname, "victim");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "corruption falls back to a cold parse";
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(store.stats().load_rejects, 1u);
  // The cold parse overwrote the bad entry; a third lifetime disk-hits.
  pipeline::ParseCache healed;
  healed.attach_store(&store);
  healed.parse(text);
  EXPECT_EQ(healed.stats().disk_hits, 1u);
}

TEST(ParseCacheStore, ByteCapEvictsLruAndStoreRefills) {
  const auto dir = fresh_dir("rd_store_lru");
  pipeline::DiskStore store(dir);
  pipeline::ParseCache cache;
  cache.attach_store(&store);

  std::vector<std::string> texts;
  for (int i = 0; i < 4; ++i) {
    texts.push_back("hostname lru-" + std::to_string(i) + "\n" +
                    std::string(200, '!').insert(0, "! pad ") + "\n");
  }
  // Cap at roughly two entries' charged bytes.
  cache.set_byte_limit(2 * texts[0].size() + 10);
  for (const auto& text : texts) cache.parse(text);
  auto stats = cache.stats();
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, stats.byte_limit);
  EXPECT_LE(stats.entries, 2u);

  // texts[0] was evicted (least recently used); re-parsing it is a miss
  // for the memory cache but a hit for the store — no reparse.
  cache.parse(texts[0]);
  stats = cache.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_LE(stats.bytes, stats.byte_limit);

  // Touch order matters: re-parse texts[2] (resident), then insert a new
  // text; texts[3] (now least recent) goes, texts[2] stays.
  cache.set_byte_limit(0);  // lift the cap...
  cache.clear();
  cache.set_byte_limit(2 * texts[0].size() + 10);
  cache.parse(texts[2]);
  cache.parse(texts[3]);
  cache.parse(texts[2]);  // touch: texts[2] most recent
  cache.parse(texts[1]);  // evicts texts[3]
  cache.parse(texts[2]);  // still resident: a memory hit
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
}

TEST(ParseCacheStore, ConcurrentHammerKeepsAccountingConsistent) {
  const auto dir = fresh_dir("rd_store_hammer");
  pipeline::DiskStore store(dir);
  pipeline::ParseCache cache;
  cache.attach_store(&store);
  cache.set_byte_limit(1 << 16);  // small enough to force evictions

  std::vector<std::string> texts;
  for (int i = 0; i < 24; ++i) {
    texts.push_back("hostname hammer-" + std::to_string(i) +
                    "\ninterface Ethernet0\n ip address 10.9." +
                    std::to_string(i) + ".1 255.255.255.0\n" +
                    std::string(4096, '!') + "\n");
  }

  util::ThreadPool pool(8);
  constexpr std::size_t kCalls = 800;
  pool.run_indexed(kCalls, [&](std::size_t i) {
    const auto& text = texts[(i * 7) % texts.size()];
    const auto result = cache.parse(text);
    ASSERT_NE(result, nullptr);
    ASSERT_EQ(result->config.hostname,
              "hammer-" + std::to_string((i * 7) % texts.size()));
  });

  const auto stats = cache.stats();
  // Every call is exactly one of: memory hit, cold-parse insert, disk-hit
  // insert. Lost races are folded into hits; nothing is double-counted.
  EXPECT_EQ(stats.hits + stats.misses + stats.disk_hits, kCalls);
  EXPECT_LE(stats.bytes, stats.byte_limit);
  EXPECT_EQ(stats.disk_rejects, 0u);
  const auto store_stats = store.stats();
  EXPECT_EQ(store_stats.load_rejects, 0u);
  EXPECT_EQ(store_stats.save_failures, 0u);
}

}  // namespace
}  // namespace rd
