#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/archetype.h"
#include "analysis/filters.h"
#include "analysis/roles.h"
#include "anonymize/anonymizer.h"
#include "config/writer.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "graph/process_graph.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd {
namespace {

/// End-to-end: generate a network, write its configs to disk as
/// config1..configN, read them back, and run the entire pipeline — exactly
/// the paper's workflow over an anonymized data-set directory.
TEST(Integration, FullPipelineFromDisk) {
  synth::ManagedEnterpriseParams p;
  p.regions = 2;
  p.spokes_per_region = 12;
  p.ebgp_spoke_rate = 0.2;
  const auto net = synth::make_managed_enterprise(p);

  const auto dir =
      std::filesystem::temp_directory_path() / "rd_integration_dir";
  std::filesystem::remove_all(dir);
  synth::emit_network(net.configs, dir);
  const auto configs = synth::load_network(dir);
  std::filesystem::remove_all(dir);
  ASSERT_EQ(configs.size(), net.configs.size());

  const auto network = model::Network::build(configs);
  EXPECT_GT(network.links().size(), 0u);
  EXPECT_GT(network.processes().size(), network.router_count());

  const auto pg = graph::ProcessGraph::build(network);
  EXPECT_EQ(pg.vertices().size(),
            network.processes().size() + 2 * network.router_count());

  const auto ig = graph::InstanceGraph::build(network);
  EXPECT_GT(ig.set.instances.size(), 2u);
  EXPECT_FALSE(ig.edges.empty());

  const auto structure = graph::extract_address_structure(network);
  EXPECT_FALSE(structure.roots.empty());

  const auto pathway = graph::compute_pathway(network, ig, 0);
  EXPECT_FALSE(pathway.nodes.empty());

  const auto roles = analysis::classify_roles(network, ig.set);
  EXPECT_TRUE(roles.uses_bgp);

  const auto cls = analysis::classify_design(network, ig.set);
  EXPECT_EQ(cls.archetype, analysis::DesignArchetype::kUnclassifiable);
}

/// The anonymization equivalence property (the paper's core §4 requirement):
/// analyzing anonymized configs yields the same structural results as
/// analyzing the originals.
TEST(Integration, AnonymizationPreservesAnalysis) {
  synth::ManagedEnterpriseParams p;
  p.regions = 2;
  p.spokes_per_region = 10;
  p.igp_edge_rate = 0.2;
  const auto net = synth::make_managed_enterprise(p);

  std::vector<config::RouterConfig> plain;
  std::vector<config::RouterConfig> anonymized;
  anonymize::Anonymizer anonymizer(20260705);
  for (const auto& cfg : net.configs) {
    const auto text = config::write_config(cfg);
    plain.push_back(config::parse_config(text, cfg.hostname).config);
    anonymized.push_back(
        config::parse_config(anonymizer.anonymize(text), "anon").config);
  }

  const auto net_plain = model::Network::build(std::move(plain));
  const auto net_anon = model::Network::build(std::move(anonymized));

  // Identical link-level topology.
  ASSERT_EQ(net_anon.links().size(), net_plain.links().size());
  ASSERT_EQ(net_anon.interfaces().size(), net_plain.interfaces().size());
  for (std::size_t i = 0; i < net_plain.links().size(); ++i) {
    EXPECT_EQ(net_anon.links()[i].interfaces.size(),
              net_plain.links()[i].interfaces.size());
    EXPECT_EQ(net_anon.links()[i].subnet.length(),
              net_plain.links()[i].subnet.length());
    EXPECT_EQ(net_anon.links()[i].external_facing,
              net_plain.links()[i].external_facing);
  }

  // Identical routing structure.
  EXPECT_EQ(net_anon.processes().size(), net_plain.processes().size());
  EXPECT_EQ(net_anon.igp_adjacencies().size(),
            net_plain.igp_adjacencies().size());
  EXPECT_EQ(net_anon.bgp_sessions().size(), net_plain.bgp_sessions().size());
  EXPECT_EQ(net_anon.redistribution_edges().size(),
            net_plain.redistribution_edges().size());

  // Identical instance partition sizes.
  const auto inst_plain = graph::compute_instances(net_plain);
  const auto inst_anon = graph::compute_instances(net_anon);
  EXPECT_EQ(inst_anon.instance_of, inst_plain.instance_of);

  // Identical role classification (Table 1 rows survive anonymization).
  const auto roles_plain = analysis::classify_roles(net_plain, inst_plain);
  const auto roles_anon = analysis::classify_roles(net_anon, inst_anon);
  EXPECT_EQ(roles_anon.igp_instances, roles_plain.igp_instances);
  EXPECT_EQ(roles_anon.ebgp_intra_sessions, roles_plain.ebgp_intra_sessions);
  EXPECT_EQ(roles_anon.ebgp_inter_sessions, roles_plain.ebgp_inter_sessions);

  // Identical filter statistics (Figure 11 survives anonymization).
  const auto filters_plain = analysis::gather_filter_stats(net_plain);
  const auto filters_anon = analysis::gather_filter_stats(net_anon);
  EXPECT_EQ(filters_anon.total_applied_rules,
            filters_plain.total_applied_rules);
  EXPECT_DOUBLE_EQ(filters_anon.internal_fraction(),
                   filters_plain.internal_fraction());

  // Address-space structure: same root-block count and sizes (values are
  // permuted prefix-preservingly).
  const auto s_plain = graph::extract_address_structure(net_plain);
  const auto s_anon = graph::extract_address_structure(net_anon);
  EXPECT_EQ(s_anon.roots.size(), s_plain.roots.size());
}

/// The paper's Figure 2 configlet analyzed as a one-router network.
TEST(Integration, Figure2AsNetwork) {
  const auto network = test::network_of({std::string(test::kFigure2Config)});
  // Three processes: ospf 64, ospf 128, bgp 64780.
  ASSERT_EQ(network.processes().size(), 3u);
  const auto instances = graph::compute_instances(network);
  EXPECT_EQ(instances.instances.size(), 3u);

  // The BGP neighbor 66.253.160.68 is not in the data set: external session.
  ASSERT_EQ(network.bgp_sessions().size(), 1u);
  EXPECT_TRUE(network.bgp_sessions()[0].external());

  // Its half-empty /30 (Hssi2/0) is external-facing.
  bool hssi_external = false;
  for (const auto& itf : network.interfaces()) {
    if (itf.name == "Hssi2/0") hssi_external = itf.external_facing;
  }
  EXPECT_TRUE(hssi_external);

  // Both OSPF instances redistribute from the local RIB (connected).
  const auto ig = graph::InstanceGraph::build(network);
  const auto roles = analysis::classify_roles(network, ig.set);
  EXPECT_EQ(roles.ebgp_inter_sessions, 1u);
}

/// Large-scale sanity: the tier-2 archetype's staging instances are visible
/// end-to-end from emitted text.
TEST(Integration, Tier2StagingInstancesFromText) {
  synth::Tier2Params p;
  p.edge_routers = 25;
  p.staging_per_edge = 2;
  const auto net = synth::make_tier2_isp(p);
  const auto network = model::Network::build(synth::reparse(net.configs));
  const auto instances = graph::compute_instances(network);
  std::size_t staging = 0;
  for (const auto& inst : instances.instances) {
    if (config::is_conventional_igp(inst.protocol) &&
        inst.router_count() == 1) {
      ++staging;
    }
  }
  EXPECT_GE(staging, 40u);  // ~2 per edge router
}

}  // namespace
}  // namespace rd
