// Tests for the model core's memory layer (DESIGN.md §12): the bump arena
// and the fleet-wide string interner, including the concurrency contract
// the parallel pipeline relies on — symbols and views stay valid across
// rehashes, and reads are safe from many threads once writers quiesce.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "model/network.h"
#include "synth/archetypes.h"
#include "util/arena.h"
#include "util/interner.h"

namespace rd {
namespace {

// --- arena ------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  util::Arena arena;
  auto* a = static_cast<char*>(arena.allocate(3, 1));
  auto* b = static_cast<std::uint64_t*>(
      arena.allocate(sizeof(std::uint64_t), alignof(std::uint64_t)));
  auto* c = static_cast<char*>(arena.allocate(5, 1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::uint64_t), 0u);
  std::memset(a, 'a', 3);
  *b = 0x0123456789abcdefULL;
  std::memset(c, 'c', 5);
  EXPECT_EQ(a[0], 'a');
  EXPECT_EQ(*b, 0x0123456789abcdefULL);
  EXPECT_EQ(c[4], 'c');
}

TEST(Arena, GrowsAcrossBlocksWithoutMovingOldData) {
  util::Arena arena;
  std::vector<std::string_view> copies;
  std::vector<std::string> originals;
  for (int i = 0; i < 4000; ++i) {
    originals.push_back("router-" + std::to_string(i));
  }
  for (const auto& s : originals) copies.push_back(arena.copy_string(s));
  EXPECT_GT(arena.block_count(), 1u);  // must have spilled past one block
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(copies[i], originals[i]);  // old blocks never move
  }
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, ResetReusesLargestBlock) {
  util::Arena arena;
  for (int i = 0; i < 4000; ++i) {
    arena.copy_string("some-interface-name-" + std::to_string(i));
  }
  const std::size_t reserved_before = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);     // keeps only the largest block
  EXPECT_GT(arena.bytes_reserved(), 0u);  // ... but does keep it
  EXPECT_LE(arena.bytes_reserved(), reserved_before);
  // The retained block is immediately reusable.
  const std::string_view again = arena.copy_string("after-reset");
  EXPECT_EQ(again, "after-reset");
}

TEST(Arena, LargeAllocationGetsOwnBlock) {
  util::Arena arena;
  const std::string big(4u << 20, 'x');  // 4 MiB > max block size
  const std::string_view copy = arena.copy_string(big);
  EXPECT_EQ(copy.size(), big.size());
  EXPECT_EQ(copy, big);
}

// --- interner ---------------------------------------------------------------

TEST(Interner, InternIsIdempotentAndDense) {
  util::Interner interner;
  const auto a = interner.intern("GigabitEthernet0/0");
  const auto b = interner.intern("Serial1/0");
  const auto a2 = interner.intern("GigabitEthernet0/0");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, 0u);  // symbols are dense in first-intern order
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.view(a), "GigabitEthernet0/0");
  EXPECT_EQ(interner.view(b), "Serial1/0");
}

TEST(Interner, FindMissesWithoutInterning) {
  util::Interner interner;
  interner.intern("present");
  EXPECT_EQ(interner.find("absent"), util::kNoSymbol);
  EXPECT_EQ(interner.size(), 1u);  // find() never inserts
  EXPECT_NE(interner.find("present"), util::kNoSymbol);
}

TEST(Interner, SymbolsAndViewsSurviveRehash) {
  // Start tiny so the table rehashes many times, and keep the views taken
  // before each rehash — the contract is that neither symbols nor views
  // are invalidated by growth.
  util::Interner interner(2);
  std::vector<util::Symbol> symbols;
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 10000; ++i) {
    originals.push_back("name-" + std::to_string(i));
  }
  for (const auto& s : originals) {
    symbols.push_back(interner.intern(s));
    views.push_back(interner.view(symbols.back()));
  }
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(symbols[i], static_cast<util::Symbol>(i));
    EXPECT_EQ(views[i], originals[i]);
    EXPECT_EQ(interner.find(originals[i]), symbols[i]);
  }
}

TEST(Interner, CollidingNamesStayDistinct) {
  // Adversarial shape for open addressing: long shared prefixes and short
  // names that land in neighboring slots. Every distinct string must get a
  // distinct symbol regardless of probe collisions.
  util::Interner interner(2);
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) {
    names.push_back(std::string(200, 'x') + std::to_string(i));
    std::string shorty(1, static_cast<char>('a' + i % 26));
    shorty += std::to_string(i);
    names.push_back(shorty);
  }
  std::vector<util::Symbol> symbols;
  for (const auto& n : names) symbols.push_back(interner.intern(n));
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] != names[j]) {
        EXPECT_NE(symbols[i], symbols[j]);
      }
    }
    EXPECT_EQ(interner.view(symbols[i]), names[i]);
  }
}

TEST(Interner, ConcurrentReadersAfterQuiescence) {
  // The pipeline's thread model: one thread interns while building the
  // model, then analysis workers share the table read-only. Hammer
  // find()/view() from 8 threads and check every thread sees the same
  // symbols the writer produced.
  util::Interner interner;
  std::vector<std::string> names;
  std::vector<util::Symbol> expected;
  for (int i = 0; i < 2000; ++i) {
    names.push_back("rtr-" + std::to_string(i) + "/Gi0/" + std::to_string(i));
    expected.push_back(interner.intern(names.back()));
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < names.size(); ++i) {
          if (interner.find(names[i]) != expected[i]) ++mismatches[t];
          if (interner.view(expected[i]) != names[i]) ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

// --- the model's name table -------------------------------------------------

TEST(NetworkNames, RoutersAndInterfacesAreInterned) {
  synth::TextbookEnterpriseParams p;
  const auto net = synth::make_textbook_enterprise(p);
  const auto network = model::Network::build(net.configs);
  ASSERT_GT(network.router_count(), 0u);
  for (std::size_t r = 0; r < network.router_count(); ++r) {
    const auto id = static_cast<model::RouterId>(r);
    const auto& router = network.routers()[r];
    // hostname round-trips through the symbol table...
    EXPECT_EQ(network.names().view(network.router_symbol(id)),
              router.hostname);
    // ...and find_router resolves it back to the same id.
    EXPECT_EQ(network.find_router(router.hostname), id);
  }
  for (const auto& itf : network.interfaces()) {
    ASSERT_NE(itf.name_symbol, util::kNoSymbol) << itf.name;
    EXPECT_EQ(network.names().view(itf.name_symbol), itf.name);
  }
  EXPECT_EQ(network.find_router("no-such-router"), model::kInvalidId);
}

}  // namespace
}  // namespace rd
