// Differential serial-vs-parallel harness: the parallel pipeline must be
// byte-identical to the serial reference at every thread count, for every
// synth archetype and several seeds. Identity is checked through three
// serializations — the model signature JSON (pipeline::network_signature),
// the re-emitted per-router configuration text, and the instance-graph DOT —
// plus the full fleet-analysis reports. A `Stress.`-prefixed repeated-run
// suite hunts nondeterminism flakes (filter with `ctest -R Stress` or
// `--gtest_filter=Stress.*`).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/writer.h"
#include "graph/dot.h"
#include "graph/instances.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"

namespace rd {
namespace {

std::vector<std::string> texts_of(const synth::SynthNetwork& net) {
  std::vector<std::string> texts;
  texts.reserve(net.configs.size());
  for (const auto& cfg : net.configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

/// Every serialization the differential check compares.
struct PipelineOutput {
  std::string signature;   // model JSON (network_signature)
  std::string configs;     // re-emitted router configs, concatenated
  std::string dot;         // instance-graph DOT
  std::string report;      // fleet-analysis report JSON
};

PipelineOutput output_of(const std::string& name,
                         const model::Network& network) {
  PipelineOutput out;
  out.signature = pipeline::network_signature(network);
  for (const auto& cfg : network.routers()) {
    out.configs += config::write_config(cfg);
    out.configs += '\n';
  }
  out.dot = graph::to_dot(network, graph::InstanceGraph::build(network));
  out.report = pipeline::analyze_network(name, network).json;
  return out;
}

/// Deliberately small parameter sets: the differential suite covers every
/// archetype generator at several seeds and 3 thread counts, so per-network
/// cost must stay low.
std::vector<synth::SynthNetwork> archetype_networks(std::uint64_t seed) {
  std::vector<synth::SynthNetwork> nets;

  synth::BackboneParams bb;
  bb.seed = seed;
  bb.core_routers = 4;
  bb.access_routers = 12;
  bb.external_peers = 20;
  nets.push_back(synth::make_backbone(bb));

  synth::TextbookEnterpriseParams te;
  te.seed = seed;
  te.routers = 16;
  te.igp_instances = 2;
  nets.push_back(synth::make_textbook_enterprise(te));

  synth::Tier2Params t2;
  t2.seed = seed;
  t2.core_routers = 3;
  t2.edge_routers = 8;
  nets.push_back(synth::make_tier2_isp(t2));

  synth::ManagedEnterpriseParams me;
  me.seed = seed;
  me.regions = 2;
  me.spokes_per_region = 6;
  me.igp_edge_rate = 0.2;
  me.ebgp_spoke_rate = 0.2;
  nets.push_back(synth::make_managed_enterprise(me));

  synth::NoBgpParams nb;
  nb.seed = seed;
  nb.routers = 8;
  nb.edge = synth::NoBgpParams::Edge::kRip;
  nets.push_back(synth::make_no_bgp_enterprise(nb));

  synth::MergedHybridParams mh;
  mh.seed = seed;
  mh.ospf_side_routers = 6;
  mh.eigrp_side_routers = 6;
  nets.push_back(synth::make_merged_hybrid(mh));

  return nets;
}

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class ParallelPipelineDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelPipelineDifferential, MatchesSerialAcrossArchetypes) {
  const auto seed = GetParam();
  for (const auto& net : archetype_networks(seed)) {
    const auto texts = texts_of(net);
    const auto serial = output_of(
        net.name, pipeline::build_network_serial(texts));
    for (const auto threads : kThreadCounts) {
      pipeline::Options options;
      options.threads = threads;
      const auto parallel = output_of(
          net.name, pipeline::build_network_parallel(texts, options));
      const auto label = net.archetype + " seed " + std::to_string(seed) +
                         " threads " + std::to_string(threads);
      EXPECT_EQ(parallel.signature, serial.signature) << label;
      EXPECT_EQ(parallel.configs, serial.configs) << label;
      EXPECT_EQ(parallel.dot, serial.dot) << label;
      EXPECT_EQ(parallel.report, serial.report) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelPipelineDifferential,
                         ::testing::Values(1u, 7u, 42u));

TEST(ParallelPipeline, Net15CaseStudyMatchesSerial) {
  const auto net15 = synth::make_net15();
  const auto texts = texts_of(net15);
  const auto serial =
      output_of(net15.name, pipeline::build_network_serial(texts));
  for (const auto threads : kThreadCounts) {
    pipeline::Options options;
    options.threads = threads;
    const auto parallel = output_of(
        net15.name, pipeline::build_network_parallel(texts, options));
    EXPECT_EQ(parallel.signature, serial.signature) << threads;
    EXPECT_EQ(parallel.dot, serial.dot) << threads;
    EXPECT_EQ(parallel.report, serial.report) << threads;
  }
}

TEST(ParallelPipeline, FleetReportsMergeInIndexOrder) {
  std::vector<pipeline::FleetInput> inputs;
  for (const auto& net : archetype_networks(11)) {
    inputs.push_back({net.name, texts_of(net)});
  }
  const auto serial = pipeline::analyze_fleet_serial(inputs);
  ASSERT_EQ(serial.size(), inputs.size());
  for (const auto threads : kThreadCounts) {
    pipeline::Options options;
    options.threads = threads;
    const auto parallel = pipeline::analyze_fleet_parallel(inputs, options);
    ASSERT_EQ(parallel.size(), serial.size()) << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto label =
          inputs[i].name + " threads " + std::to_string(threads);
      EXPECT_EQ(parallel[i].name, serial[i].name) << label;
      EXPECT_EQ(parallel[i].archetype, serial[i].archetype) << label;
      EXPECT_EQ(parallel[i].routers, serial[i].routers) << label;
      EXPECT_EQ(parallel[i].links, serial[i].links) << label;
      EXPECT_EQ(parallel[i].instances, serial[i].instances) << label;
      EXPECT_EQ(parallel[i].consistency_findings,
                serial[i].consistency_findings)
          << label;
      EXPECT_EQ(parallel[i].lint_findings, serial[i].lint_findings) << label;
      EXPECT_EQ(parallel[i].internet_reaching_instances,
                serial[i].internet_reaching_instances)
          << label;
      EXPECT_EQ(parallel[i].json, serial[i].json) << label;
      EXPECT_EQ(parallel[i].instance_graph_dot, serial[i].instance_graph_dot)
          << label;
    }
  }
}

TEST(ParallelPipeline, SharedPoolAcrossCallsStaysDeterministic) {
  util::ThreadPool pool(8);
  const auto net = archetype_networks(3)[3];  // managed enterprise
  const auto texts = texts_of(net);
  const auto baseline =
      pipeline::network_signature(pipeline::build_network_serial(texts));
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(pipeline::network_signature(
                  pipeline::build_network_parallel(texts, pool)),
              baseline)
        << round;
  }
}

// --- Stress tier (filter with -R Stress / --gtest_filter=Stress.*) ---------

TEST(Stress, RepeatedParallelRunsOverManagedEnterpriseAreStable) {
  synth::ManagedEnterpriseParams params;
  params.seed = 9;
  params.regions = 3;
  params.spokes_per_region = 12;
  params.igp_edge_rate = 0.15;
  params.ebgp_spoke_rate = 0.1;
  const auto net = synth::make_managed_enterprise(params);
  const auto texts = texts_of(net);

  const auto baseline = output_of(
      net.name, pipeline::build_network_serial(texts));
  util::ThreadPool pool(8);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const auto network = pipeline::build_network_parallel(texts, pool);
    ASSERT_EQ(pipeline::network_signature(network), baseline.signature)
        << "nondeterminism at iteration " << iteration;
    // The full analysis report is heavier; spot-check it periodically.
    if (iteration % 10 == 0) {
      ASSERT_EQ(output_of(net.name, network).report, baseline.report)
          << "iteration " << iteration;
    }
  }
}

TEST(Stress, RepeatedParallelFleetRunsAreStable) {
  std::vector<pipeline::FleetInput> inputs;
  for (const auto& net : archetype_networks(21)) {
    inputs.push_back({net.name, texts_of(net)});
  }
  const auto baseline = pipeline::analyze_fleet_serial(inputs);
  util::ThreadPool pool(8);
  for (int iteration = 0; iteration < 50; ++iteration) {
    const auto reports = pipeline::analyze_fleet_parallel(inputs, pool);
    ASSERT_EQ(reports.size(), baseline.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
      ASSERT_EQ(reports[i].json, baseline[i].json)
          << inputs[i].name << " iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace rd
