// ParseCache: content-addressed memoization of per-router parses. Covers
// hit/miss accounting (deterministic at one thread), identical-text dedup
// (one entry, one shared result), correctness of cached results against
// direct parses, and a concurrent differential matrix at 1/2/8 threads.
// Also pins the SHA-1 implementation under the cache to the RFC 3174 test
// vectors — the x86 SHA-NI fast path and the portable path must agree.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "config/writer.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "synth/archetypes.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

std::vector<std::string> texts_of(const synth::SynthNetwork& net) {
  std::vector<std::string> texts;
  texts.reserve(net.configs.size());
  for (const auto& cfg : net.configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

TEST(Sha1, Rfc3174Vectors) {
  EXPECT_EQ(util::Sha1::hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(util::Sha1::hex("abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(util::Sha1::hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(util::Sha1::hex(std::string(1000000, 'a')),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalUpdatesMatchOneShot) {
  std::string data;
  for (int i = 0; i < 5000; ++i) data += static_cast<char>('a' + i % 26);
  const auto expected = util::Sha1::hash(data);
  // Chunk sizes straddle the 64-byte block boundary from both sides.
  for (const std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 1000u}) {
    util::Sha1 sha;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      sha.update(std::string_view(data).substr(off, chunk));
    }
    EXPECT_EQ(sha.digest(), expected) << "chunk " << chunk;
  }
}

TEST(ParseCache, MissThenHitAccounting) {
  pipeline::ParseCache cache;
  const std::string text = "hostname r1\ninterface Ethernet0\n";

  const auto first = cache.parse(text);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  const auto second = cache.parse(text);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // Same content key -> the very same memoized object.
  EXPECT_EQ(first.get(), second.get());
}

TEST(ParseCache, DistinctTextsGetDistinctEntries) {
  pipeline::ParseCache cache;
  const auto a = cache.parse("hostname a\n");
  const auto b = cache.parse("hostname b\n");
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->config.hostname, "a");
  EXPECT_EQ(b->config.hostname, "b");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ParseCache, IdenticalTextsDedupAcrossRouters) {
  // Two routers shipping byte-identical configs (it happens in real fleets:
  // cloned spoke templates) cost one parse, not two.
  pipeline::ParseCache cache;
  const std::string text = "hostname spoke\ninterface Serial0\n shutdown\n";
  std::vector<std::shared_ptr<const config::ParseResult>> parses;
  for (int i = 0; i < 4; ++i) parses.push_back(cache.parse(text));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.entries, 1u);
  for (const auto& p : parses) EXPECT_EQ(p.get(), parses.front().get());
}

TEST(ParseCache, CachedResultsMatchDirectParses) {
  synth::ManagedEnterpriseParams params;
  params.seed = 5;
  params.regions = 2;
  params.spokes_per_region = 6;
  const auto texts = texts_of(synth::make_managed_enterprise(params));

  pipeline::ParseCache cache;
  for (int round = 0; round < 2; ++round) {  // second round is all hits
    for (const auto& text : texts) {
      const auto cached = cache.parse(text);
      const auto direct = config::parse_config(text);
      EXPECT_EQ(config::write_config(cached->config),
                config::write_config(direct.config));
      EXPECT_EQ(cached->diagnostics.size(), direct.diagnostics.size());
    }
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses + stats.hits, 2 * texts.size());
  EXPECT_EQ(stats.entries, stats.misses);
}

TEST(ParseCache, ClearResetsEntriesAndCounters) {
  pipeline::ParseCache cache;
  cache.parse("hostname r1\n");
  cache.parse("hostname r1\n");
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// The model built through the cache must be byte-identical to the serial
// cache-free reference at every thread count, warm or cold.
TEST(ParseCache, CachedBuildMatchesSerialAtEveryThreadCount) {
  synth::ManagedEnterpriseParams params;
  params.seed = 17;
  params.regions = 2;
  params.spokes_per_region = 8;
  const auto texts = texts_of(synth::make_managed_enterprise(params));
  const auto reference =
      pipeline::network_signature(pipeline::build_network_serial(texts));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    pipeline::ParseCache cache;
    util::ThreadPool pool(threads);
    for (int round = 0; round < 3; ++round) {
      const auto network = pipeline::build_network_cached(texts, cache, pool);
      EXPECT_EQ(pipeline::network_signature(network), reference)
          << "threads " << threads << " round " << round;
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, 3 * texts.size())
        << "threads " << threads;
    // Misses are counted at winning insert, so they reconcile with the
    // entry count exactly even when racing parsers duplicate work.
    EXPECT_EQ(stats.entries, stats.misses) << "threads " << threads;
    EXPECT_LE(stats.entries, texts.size()) << "threads " << threads;
  }
}

// Hammer one identical text from eight threads: whatever the race outcome,
// the ledger must reconcile — one entry, one miss, everything else a hit,
// and any discarded parse visible only in duplicate_parses.
TEST(ParseCache, DuplicateParsesReconcileWithEntries) {
  const std::string text = "hostname racer\ninterface Serial0\n";
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 50;
  pipeline::ParseCache cache;
  for (std::size_t round = 0; round < kRounds; ++round) {
    cache.clear();
    util::ThreadPool pool(kThreads);
    std::vector<std::shared_ptr<const config::ParseResult>> results(kThreads);
    util::parallel_for(pool, kThreads,
                       [&](std::size_t i) { results[i] = cache.parse(text); });
    for (std::size_t i = 1; i < kThreads; ++i) {
      EXPECT_EQ(results[i], results[0]);  // everyone shares the winner
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, kThreads - 1);
    EXPECT_EQ(stats.hits + stats.misses, kThreads);
    EXPECT_LT(stats.duplicate_parses, kThreads);  // winner never discards
  }
}

TEST(Stress, ConcurrentCacheParsesStayDeterministic) {
  synth::ManagedEnterpriseParams params;
  params.seed = 23;
  params.regions = 2;
  params.spokes_per_region = 10;
  const auto texts = texts_of(synth::make_managed_enterprise(params));
  const auto reference =
      pipeline::network_signature(pipeline::build_network_serial(texts));

  // One shared cache hammered by repeated 8-way builds: exercises the
  // racing-parser path (both parse, first insert wins) under TSan.
  pipeline::ParseCache cache;
  util::ThreadPool pool(8);
  for (int round = 0; round < 25; ++round) {
    const auto network = pipeline::build_network_cached(texts, cache, pool);
    ASSERT_EQ(pipeline::network_signature(network), reference)
        << "round " << round;
  }
}

}  // namespace
}  // namespace rd
