#include <gtest/gtest.h>

#include "analysis/pathway_diversity.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

TEST(PathwayDiversity, UniformInstanceHasOneShape) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"});
  const auto ig = graph::InstanceGraph::build(net);
  const auto diversity = analyze_pathway_diversity(net, ig);
  EXPECT_EQ(diversity.routers, 2u);
  EXPECT_EQ(diversity.distinct_shapes(), 1u);
  EXPECT_DOUBLE_EQ(diversity.top2_coverage(), 1.0);
}

TEST(PathwayDiversity, BorderAndSpokeDiffer) {
  // The border (in both OSPF and BGP) has a different pathway shape than
  // the pure-OSPF spoke.
  const auto net = network_of(
      {"hostname border\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n",
       "hostname spoke\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"});
  const auto ig = graph::InstanceGraph::build(net);
  const auto diversity = analyze_pathway_diversity(net, ig);
  EXPECT_EQ(diversity.distinct_shapes(), 2u);
}

TEST(PathwaySignature, EncodesDepthProtocolAndExternal) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n"});
  const auto ig = graph::InstanceGraph::build(net);
  const auto pathway = graph::compute_pathway(net, ig, 0);
  EXPECT_EQ(pathway_signature(ig.set, pathway), "0:bgp|ext");
}

TEST(PathwayDiversity, TextbookIsFarSimplerThanManaged) {
  synth::TextbookEnterpriseParams tp;
  tp.routers = 40;
  const auto textbook = model::Network::build(
      synth::reparse(synth::make_textbook_enterprise(tp).configs));
  const auto ig_t = graph::InstanceGraph::build(textbook);
  const auto d_textbook = analyze_pathway_diversity(textbook, ig_t);

  synth::ManagedEnterpriseParams mp;
  mp.regions = 3;
  mp.spokes_per_region = 12;
  mp.extra_igp_processes = 2.0;
  const auto managed = model::Network::build(
      synth::reparse(synth::make_managed_enterprise(mp).configs));
  const auto ig_m = graph::InstanceGraph::build(managed);
  const auto d_managed = analyze_pathway_diversity(managed, ig_m);

  EXPECT_LE(d_textbook.distinct_shapes(), 3u);
  EXPECT_GT(d_managed.distinct_shapes(), d_textbook.distinct_shapes() * 2);
  EXPECT_GT(d_textbook.top2_coverage(), 0.9);
}

}  // namespace
}  // namespace rd::analysis
