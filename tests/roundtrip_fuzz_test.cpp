// Model-level round-trip fuzzing: generate random RouterConfig models —
// covering corners the archetype generators never produce — and assert
// parse(write(config)) == config on the modeled fields.
//
// The fuzz volume is dialable from the environment so CI tiers can crank it
// up without editing source:
//   RD_FUZZ_SEEDS  — number of parameterized seed groups (default 8)
//   RD_FUZZ_ITERS  — configs generated per seed group (default 25)
//   RD_FUZZ_SCALE  — multiplier on the generated config's section-count
//                    caps: interfaces, stanzas, ACLs, ... (default 1)

#include <gtest/gtest.h>

#include <cstdlib>

#include "config/parser.h"
#include "config/writer.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rd::config {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(util::trim(raw), parsed) || parsed == 0) {
    return fallback;
  }
  return parsed;
}

// Caps the random section counts scale against; read once.
const std::uint64_t kScale = env_u64("RD_FUZZ_SCALE", 1);

ip::Ipv4Address random_address(util::Rng& rng) {
  return ip::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
}

ip::Prefix random_prefix(util::Rng& rng, int min_len = 0, int max_len = 32) {
  return ip::Prefix(random_address(rng),
                    static_cast<int>(rng.range(min_len, max_len)));
}

std::string random_name(util::Rng& rng) {
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-_";
  std::string name;
  const auto length = 1 + rng.below(12);
  for (std::uint64_t i = 0; i < length; ++i) {
    name += kChars[rng.below(sizeof(kChars) - 1)];
  }
  // Must not collide with IOS keywords or parse as a number; prefixing
  // makes it safely user-specific.
  return "X" + name;
}

InterfaceConfig random_interface(util::Rng& rng, int index) {
  InterfaceConfig itf;
  const char* types[] = {"Serial",   "FastEthernet", "Ethernet",
                         "Loopback", "ATM",          "POS"};
  itf.name = std::string(types[rng.below(std::size(types))]) +
             std::to_string(index) + "/" + std::to_string(rng.below(4));
  itf.point_to_point = rng.chance(0.3);
  if (rng.chance(0.85)) {
    itf.address = {random_address(rng),
                   ip::Netmask::from_length(
                       static_cast<int>(rng.range(8, 32)))};
    const auto n_secondary = rng.below(3);
    for (std::uint64_t s = 0; s < n_secondary; ++s) {
      itf.secondary_addresses.push_back(
          {random_address(rng),
           ip::Netmask::from_length(static_cast<int>(rng.range(8, 30)))});
    }
  }
  if (rng.chance(0.4)) itf.description = random_name(rng);
  if (rng.chance(0.3)) itf.bandwidth_kbps = 64 << rng.below(8);
  if (rng.chance(0.3)) itf.access_group_in = std::to_string(rng.below(199));
  if (rng.chance(0.2)) itf.access_group_out = std::to_string(rng.below(199));
  if (rng.chance(0.2)) itf.ospf_cost = 1 + rng.below(1000);
  if (rng.chance(0.1)) itf.isis = true;
  if (rng.chance(0.1)) itf.shutdown = true;
  if (rng.chance(0.3)) {
    itf.extra_lines.push_back("frame-relay interface-dlci " +
                              std::to_string(16 + rng.below(900)));
  }
  return itf;
}

AclRule random_rule(util::Rng& rng) {
  AclRule rule;
  rule.action = rng.chance(0.5) ? FilterAction::kPermit : FilterAction::kDeny;
  rule.extended = rng.chance(0.5);
  if (rule.extended) {
    const char* protos[] = {"ip", "tcp", "udp", "icmp", "pim", "gre"};
    rule.protocol = protos[rng.below(std::size(protos))];
    rule.any_source = rng.chance(0.4);
    if (!rule.any_source) rule.source = random_prefix(rng);
    rule.any_destination = rng.chance(0.4);
    if (!rule.any_destination) rule.destination = random_prefix(rng);
    if (rng.chance(0.4)) {
      rule.destination_port = static_cast<std::uint16_t>(rng.below(65536));
    }
  } else {
    rule.any_source = rng.chance(0.2);
    if (!rule.any_source) rule.source = random_prefix(rng);
    rule.any_destination = true;
  }
  return rule;
}

RouterStanza random_stanza(util::Rng& rng, bool& used_rip) {
  RouterStanza stanza;
  const auto which = rng.below(5);
  switch (which) {
    case 0:
      stanza.protocol = RoutingProtocol::kOspf;
      stanza.process_id = 1 + rng.below(65000);
      break;
    case 1:
      stanza.protocol = RoutingProtocol::kEigrp;
      stanza.process_id = 1 + rng.below(65000);
      break;
    case 2:
      if (used_rip) {
        stanza.protocol = RoutingProtocol::kOspf;
        stanza.process_id = 1 + rng.below(65000);
      } else {
        stanza.protocol = RoutingProtocol::kRip;
        used_rip = true;
      }
      break;
    default:
      stanza.protocol = RoutingProtocol::kBgp;
      stanza.process_id = 1 + rng.below(65000);
      break;
  }
  const auto n_networks = rng.below(4);
  for (std::uint64_t i = 0; i < n_networks; ++i) {
    NetworkStatement ns;
    ns.address = random_address(rng);
    ns.mask = ip::Netmask::from_length(static_cast<int>(rng.range(1, 30)));
    if (stanza.protocol == RoutingProtocol::kOspf) ns.area = rng.below(100);
    stanza.networks.push_back(ns);
  }
  if (stanza.protocol == RoutingProtocol::kBgp) {
    const auto n_neighbors = rng.below(4);
    for (std::uint64_t i = 0; i < n_neighbors; ++i) {
      BgpNeighbor nbr;
      nbr.address = random_address(rng);
      nbr.remote_as = 1 + rng.below(65000);
      if (rng.chance(0.3)) nbr.distribute_list_in = std::to_string(rng.below(99));
      if (rng.chance(0.3)) nbr.route_map_out = random_name(rng);
      if (rng.chance(0.2)) nbr.prefix_list_in = random_name(rng);
      if (rng.chance(0.2)) nbr.update_source = "Loopback0";
      nbr.next_hop_self = rng.chance(0.2);
      nbr.route_reflector_client = rng.chance(0.2);
      stanza.neighbors.push_back(std::move(nbr));
    }
    if (rng.chance(0.4)) {
      AggregateAddress aggregate;
      aggregate.address = random_address(rng);
      aggregate.mask =
          ip::Netmask::from_length(static_cast<int>(rng.range(8, 24)));
      aggregate.summary_only = rng.chance(0.5);
      stanza.aggregates.push_back(aggregate);
    }
  }
  const auto n_redists = rng.below(3);
  for (std::uint64_t i = 0; i < n_redists; ++i) {
    Redistribute redist;
    const auto kind = rng.below(3);
    if (kind == 0) {
      redist.source = RedistributeSource::kConnected;
    } else if (kind == 1) {
      redist.source = RedistributeSource::kStatic;
    } else {
      redist.source = RedistributeSource::kProtocol;
      redist.protocol = rng.chance(0.5) ? RoutingProtocol::kOspf
                                        : RoutingProtocol::kBgp;
      redist.process_id = 1 + rng.below(65000);
    }
    if (rng.chance(0.4)) redist.route_map = random_name(rng);
    if (rng.chance(0.4)) redist.metric = rng.below(1000);
    if (rng.chance(0.3)) redist.metric_type = 1 + rng.below(2);
    redist.subnets = rng.chance(0.5);
    stanza.redistributes.push_back(std::move(redist));
  }
  if (rng.chance(0.3)) {
    DistributeList dl;
    dl.acl = std::to_string(rng.below(99));
    dl.inbound = rng.chance(0.5);
    if (rng.chance(0.3)) dl.interface = "Serial0/0";
    stanza.distribute_lists.push_back(std::move(dl));
  }
  if (rng.chance(0.3)) stanza.router_id = random_address(rng);
  if (rng.chance(0.2)) stanza.passive_default = true;
  if (rng.chance(0.3)) stanza.passive_interfaces.push_back("Ethernet0/0");
  if (rng.chance(0.2)) stanza.default_metric = 1 + rng.below(100);
  return stanza;
}

RouterConfig random_config(std::uint64_t seed) {
  util::Rng rng(seed);
  RouterConfig cfg;
  cfg.hostname = random_name(rng);
  const auto n_interfaces = 1 + rng.below(8 * kScale);
  for (std::uint64_t i = 0; i < n_interfaces; ++i) {
    cfg.interfaces.push_back(random_interface(rng, static_cast<int>(i)));
  }
  bool used_rip = false;
  const auto n_stanzas = rng.below(5 * kScale);
  for (std::uint64_t i = 0; i < n_stanzas; ++i) {
    cfg.router_stanzas.push_back(random_stanza(rng, used_rip));
  }
  const auto n_acls = rng.below(4 * kScale);
  for (std::uint64_t a = 0; a < n_acls; ++a) {
    AccessList acl;
    acl.named = rng.chance(0.3);
    acl.id = acl.named ? random_name(rng)
                       : std::to_string(1 + rng.below(199) + 200 * a);
    if (acl.named) acl.extended_block = rng.chance(0.5);
    const auto n_rules = 1 + rng.below(6);
    for (std::uint64_t i = 0; i < n_rules; ++i) {
      auto rule = random_rule(rng);
      // Named standard blocks reject extended syntax in IOS; our writer
      // would still round-trip, but keep the model realistic.
      if (acl.named && !acl.extended_block) rule = [&] {
        AclRule standard;
        standard.action = rule.action;
        standard.any_source = rule.any_source;
        standard.source = rule.source;
        return standard;
      }();
      acl.rules.push_back(std::move(rule));
    }
    cfg.access_lists.push_back(std::move(acl));
  }
  const auto n_pls = rng.below(3 * kScale);
  for (std::uint64_t p = 0; p < n_pls; ++p) {
    PrefixList pl;
    pl.name = random_name(rng);
    const auto n_entries = 1 + rng.below(4);
    for (std::uint64_t i = 0; i < n_entries; ++i) {
      PrefixListEntry entry;
      entry.sequence = static_cast<std::uint32_t>(5 * (i + 1));
      entry.action =
          rng.chance(0.7) ? FilterAction::kPermit : FilterAction::kDeny;
      entry.prefix = random_prefix(rng, 0, 28);
      if (rng.chance(0.4)) {
        entry.le = entry.prefix.length() +
                   static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(33 - entry.prefix.length())));
      }
      pl.entries.push_back(entry);
    }
    cfg.prefix_lists.push_back(std::move(pl));
  }
  if (rng.chance(0.4)) {
    AsPathAccessList ap;
    ap.id = std::to_string(1 + rng.below(99));
    ap.entries.push_back({FilterAction::kPermit, "^$"});
    cfg.as_path_lists.push_back(std::move(ap));
  }
  const auto n_maps = rng.below(3 * kScale);
  for (std::uint64_t m = 0; m < n_maps; ++m) {
    RouteMap rm;
    rm.name = random_name(rng);
    const auto n_clauses = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < n_clauses; ++i) {
      RouteMapClause clause;
      clause.sequence = static_cast<std::uint32_t>(10 * (i + 1));
      clause.action =
          rng.chance(0.7) ? FilterAction::kPermit : FilterAction::kDeny;
      if (rng.chance(0.5)) {
        clause.match_ip_address_acls.push_back(
            std::to_string(1 + rng.below(99)));
      }
      if (rng.chance(0.2)) clause.match_prefix_lists.push_back(random_name(rng));
      if (rng.chance(0.2)) clause.match_as_paths.push_back("7");
      if (rng.chance(0.3)) clause.match_tag = rng.below(1000);
      if (rng.chance(0.3)) clause.set_tag = rng.below(1000);
      if (rng.chance(0.2)) clause.set_metric = rng.below(1000);
      if (rng.chance(0.2)) clause.set_local_preference = rng.below(500);
      rm.clauses.push_back(std::move(clause));
    }
    cfg.route_maps.push_back(std::move(rm));
  }
  const auto n_statics = rng.below(5 * kScale);
  for (std::uint64_t i = 0; i < n_statics; ++i) {
    StaticRoute route;
    route.destination = random_address(rng);
    route.mask = ip::Netmask::from_length(static_cast<int>(rng.range(0, 32)));
    if (rng.chance(0.8)) {
      route.next_hop = random_address(rng);
    } else {
      route.next_hop = std::string("Serial0/0");
    }
    if (rng.chance(0.3)) route.administrative_distance = 1 + rng.below(254);
    cfg.static_routes.push_back(std::move(route));
  }
  return cfg;
}

class RoundTripFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripFuzz, ParseOfWriteIsIdentity) {
  const int iters = static_cast<int>(env_u64("RD_FUZZ_ITERS", 25));
  for (int i = 0; i < iters; ++i) {
    const auto seed =
        static_cast<std::uint64_t>(GetParam()) * 1000 + static_cast<std::uint64_t>(i);
    const auto cfg = random_config(seed);
    const auto text = write_config(cfg);
    const auto result = parse_config(text, cfg.hostname);
    EXPECT_TRUE(result.diagnostics.empty())
        << "seed " << seed << ": "
        << (result.diagnostics.empty() ? ""
                                       : result.diagnostics[0].message);
    const auto& reparsed = result.config;
    EXPECT_EQ(reparsed.hostname, cfg.hostname) << seed;
    EXPECT_EQ(reparsed.interfaces, cfg.interfaces) << seed;
    EXPECT_EQ(reparsed.router_stanzas, cfg.router_stanzas) << seed;
    EXPECT_EQ(reparsed.access_lists, cfg.access_lists) << seed;
    EXPECT_EQ(reparsed.prefix_lists, cfg.prefix_lists) << seed;
    EXPECT_EQ(reparsed.as_path_lists, cfg.as_path_lists) << seed;
    EXPECT_EQ(reparsed.route_maps, cfg.route_maps) << seed;
    EXPECT_EQ(reparsed.static_routes, cfg.static_routes) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RoundTripFuzz,
    ::testing::Range(0, static_cast<int>(env_u64("RD_FUZZ_SEEDS", 8))));

}  // namespace
}  // namespace rd::config
