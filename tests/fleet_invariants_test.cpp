// Fleet-wide invariants: properties every network of the synthetic fleet
// must satisfy. These act as a regression net over the generators AND
// demonstrate the §8.1 audit checks passing on a well-formed fleet.

#include <gtest/gtest.h>

#include "analysis/ibgp.h"
#include "analysis/ospf_areas.h"
#include "analysis/rules.h"
#include "analysis/whatif.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "model/network.h"
#include "synth/emit.h"
#include "synth/fleet.h"

namespace rd {
namespace {

class FleetInvariants : public ::testing::Test {
 protected:
  struct Entry {
    std::string name;
    model::Network network;
    graph::InstanceSet instances;
  };

  static void SetUpTestSuite() {
    const auto fleet = synth::generate_fleet(42);
    entries_ = new std::vector<Entry>();
    for (const auto& net : fleet.networks) {
      Entry entry{net.name,
                  model::Network::build(synth::reparse(net.configs)),
                  {}};
      entry.instances = graph::compute_instances(entry.network);
      entries_->push_back(std::move(entry));
    }
  }
  static void TearDownTestSuite() {
    delete entries_;
    entries_ = nullptr;
  }
  static std::vector<Entry>* entries_;
};

std::vector<FleetInvariants::Entry>* FleetInvariants::entries_ = nullptr;

TEST_F(FleetInvariants, InstancePartitionIsConsistent) {
  for (const auto& entry : *entries_) {
    ASSERT_EQ(entry.instances.instance_of.size(),
              entry.network.processes().size())
        << entry.name;
    std::size_t total = 0;
    for (const auto& instance : entry.instances.instances) {
      total += instance.processes.size();
      EXPECT_FALSE(instance.routers.empty()) << entry.name;
    }
    EXPECT_EQ(total, entry.network.processes().size()) << entry.name;
  }
}

TEST_F(FleetInvariants, EveryLinkHasConsistentInterfaces) {
  for (const auto& entry : *entries_) {
    for (const auto& link : entry.network.links()) {
      ASSERT_FALSE(link.interfaces.empty()) << entry.name;
      for (const auto i : link.interfaces) {
        const auto& itf = entry.network.interfaces()[i];
        ASSERT_TRUE(itf.subnet.has_value()) << entry.name;
        EXPECT_EQ(*itf.subnet, link.subnet) << entry.name;
      }
    }
  }
}

TEST_F(FleetInvariants, NoOrphanOspfAreasAnywhere) {
  for (const auto& entry : *entries_) {
    const auto report =
        analysis::analyze_ospf_areas(entry.network, entry.instances);
    EXPECT_EQ(report.total_orphan_areas(), 0u) << entry.name;
  }
}

TEST_F(FleetInvariants, NoIbgpSignalingHolesAnywhere) {
  // Private AS numbers are reused across compartments (multiple
  // components per AS is normal); what must never happen is a signaling
  // hole *inside* a session-connected component.
  for (const auto& entry : *entries_) {
    for (const auto& as_entry :
         analysis::analyze_ibgp(entry.network, entry.instances)) {
      EXPECT_EQ(as_entry.disconnected_pairs, 0u)
          << entry.name << " AS " << as_entry.as_number;
    }
  }
}

TEST_F(FleetInvariants, AddressStructureCoversAllSubnets) {
  for (const auto& entry : *entries_) {
    const auto structure = graph::extract_address_structure(entry.network);
    const auto roots = structure.root_blocks();
    for (const auto& subnet : entry.network.interface_subnets()) {
      bool covered = false;
      for (const auto& root : roots) {
        covered = covered || root.contains(subnet);
      }
      EXPECT_TRUE(covered) << entry.name << " " << subnet.to_string();
    }
    // The recovered plan is drastically smaller than the raw subnet list.
    if (entry.network.interface_subnets().size() > 50) {
      EXPECT_LT(roots.size(),
                entry.network.interface_subnets().size() / 4)
          << entry.name;
    }
  }
}

TEST_F(FleetInvariants, ExternalFacingImpliesNoResolvedPeer) {
  for (const auto& entry : *entries_) {
    for (const auto& link : entry.network.links()) {
      if (link.subnet.length() != 30 || link.external_facing) continue;
      // Internal /30s must have both usable addresses present.
      EXPECT_EQ(link.interfaces.size(), 2u)
          << entry.name << " " << link.subnet.to_string();
    }
  }
}

TEST_F(FleetInvariants, ArticulationAnalysisRunsEverywhere) {
  // Not an invariant on the count (hub-and-spoke designs legitimately have
  // cut routers) — but the analysis must succeed on every instance shape
  // the fleet produces, and cut routers must belong to their instance.
  for (const auto& entry : *entries_) {
    const auto cuts = analysis::instance_articulation_routers(
        entry.network, entry.instances);
    for (const auto& cut : cuts) {
      const auto& routers =
          entry.instances.instances[cut.instance].routers;
      EXPECT_TRUE(std::find(routers.begin(), routers.end(), cut.router) !=
                  routers.end())
          << entry.name;
    }
  }
}

TEST_F(FleetInvariants, NoErrorSeverityDesignRuleFindings) {
  // Warnings and info findings are expected (the generators deliberately
  // leave §8-style design smells in place), but an error-severity finding
  // means a generator emitted a broken network — the same contract the
  // example demos rely on to exit 0.
  const auto engine = analysis::RuleEngine::with_default_rules();
  for (const auto& entry : *entries_) {
    const auto result = engine.run(entry.network);
    EXPECT_EQ(result.errors, 0u) << entry.name;
    if (result.errors != 0) {
      for (const auto& f : result.findings) {
        if (f.severity == analysis::Severity::kError) {
          ADD_FAILURE() << entry.name << ": " << f.rule_id << " "
                        << f.router_name << " " << f.subject << ": "
                        << f.detail;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rd
