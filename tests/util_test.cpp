#include <gtest/gtest.h>

#include <clocale>
#include <set>
#include <string>

#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace rd::util {
namespace {

// --- strings ----------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \r\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitChar) {
  const auto parts = split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", '.').size(), 1u);
}

TEST(Strings, SplitWhitespace) {
  const auto parts = split_ws("  ip   address\t10.0.0.1  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "ip");
  EXPECT_EQ(parts[1], "address");
  EXPECT_EQ(parts[2], "10.0.0.1");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitLines) {
  const auto lines = split_lines("a\nb\r\n\nc");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "c");
}

TEST(Strings, SplitLinesTrailingNewline) {
  EXPECT_EQ(split_lines("a\n").size(), 1u);
  EXPECT_EQ(split_lines("").size(), 0u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("interface Serial0", "interface"));
  EXPECT_FALSE(starts_with("int", "interface"));
  EXPECT_TRUE(ends_with("config1", "1"));
  EXPECT_FALSE(ends_with("1", "config1"));
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("OSPF", "ospf"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("ospf", "ospf2"));
}

TEST(Strings, ToLowerAndJoin) {
  EXPECT_EQ(to_lower("FastEthernet"), "fastethernet");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, CaseFoldingIsLocaleIndependent) {
  // Case folding must be ASCII-only: std::tolower honors LC_CTYPE, under
  // which e.g. tr_TR maps 'I' to dotless i, breaking keyword matching.
  // Flip to a non-"C" locale if one is installed (minimal containers often
  // have only "C"/"POSIX" — the ASCII assertions still pin the contract).
  const std::string saved = std::setlocale(LC_CTYPE, nullptr);
  for (const char* name : {"tr_TR.UTF-8", "tr_TR", "en_US.UTF-8", "C.UTF-8"}) {
    if (std::setlocale(LC_CTYPE, name) != nullptr) break;
  }
  EXPECT_TRUE(iequals("INTERFACE", "interface"));
  EXPECT_TRUE(iequals("Ip", "iP"));
  EXPECT_EQ(to_lower("ROUTER-ID_42"), "router-id_42");
  // Non-ASCII bytes pass through untouched in both directions.
  EXPECT_EQ(to_lower("caf\xc3\xa9 \xc3\x89"), "caf\xc3\xa9 \xc3\x89");
  EXPECT_FALSE(iequals("\xc3\x89", "\xc3\xa9"));
  std::setlocale(LC_CTYPE, saved.c_str());
}

TEST(Strings, ParseU32) {
  std::uint32_t v = 0;
  EXPECT_TRUE(parse_u32("42", v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(parse_u32("4294967295", v));
  EXPECT_FALSE(parse_u32("4294967296", v));
  EXPECT_FALSE(parse_u32("", v));
  EXPECT_FALSE(parse_u32("-1", v));
  EXPECT_FALSE(parse_u32("1x", v));
}

TEST(Strings, IsAllDigits) {
  EXPECT_TRUE(is_all_digits("0123"));
  EXPECT_FALSE(is_all_digits(""));
  EXPECT_FALSE(is_all_digits("12a"));
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowIsBounded) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedDistribution) {
  Rng rng(11);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted({3.0, 1.0})];
  EXPECT_NEAR(counts[0] / 10000.0, 0.75, 0.03);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng a(42);
  const auto x1 = a.fork("x").next();
  const auto y1 = a.fork("y").next();
  EXPECT_NE(x1, y1);
  // Forking does not perturb the parent.
  Rng b(42);
  b.fork("x");
  EXPECT_EQ(a.next(), b.next());
  // Same label -> same child stream.
  Rng c(42);
  EXPECT_EQ(c.fork("x").next(), x1);
}

TEST(Rng, LogNormalPositive) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.log_normal(1.0, 1.0), 0.0);
}

// --- stats ------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const auto s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryOddMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0, 4.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].value, 4.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, CdfAtThresholds) {
  const auto points = cdf_at({1.0, 2.0, 3.0, 4.0}, {0.5, 2.0, 10.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].fraction, 0.0);
  EXPECT_DOUBLE_EQ(points[1].fraction, 0.5);
  EXPECT_DOUBLE_EQ(points[2].fraction, 1.0);
}

TEST(Stats, BucketHistogram) {
  const auto buckets = bucket_histogram({5.0, 15.0, 25.0, 1000.0}, {10.0, 20.0},
                                        {"<10", "20", ">20"});
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[2].fraction, 0.5);
}

TEST(Stats, Quantile) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

// --- table ------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "count"});
  t.add_row({"ospf", "12"});
  t.add_row({"eigrp", "7"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("ospf"), std::string::npos);
  EXPECT_NE(s.find("12 |"), std::string::npos);  // right-aligned numeric
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("x"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_int(-42), "-42");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.421, 1), "42.1%");
}

}  // namespace
}  // namespace rd::util
