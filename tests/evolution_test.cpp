#include <gtest/gtest.h>

#include "analysis/evolution.h"
#include "config/parser.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

TEST(Evolution, IdenticalSnapshotsShowNoChange) {
  synth::TextbookEnterpriseParams p;
  p.routers = 12;
  const auto net = synth::make_textbook_enterprise(p);
  const auto before = model::Network::build(synth::reparse(net.configs));
  const auto after = model::Network::build(synth::reparse(net.configs));
  const auto diff = diff_designs(before, after);
  EXPECT_FALSE(diff.design_changed());
  EXPECT_TRUE(diff.added_routers.empty());
  EXPECT_TRUE(diff.removed_routers.empty());
  EXPECT_EQ(diff.routers_with_policy_changes, 0u);
  EXPECT_EQ(diff.instances_before, diff.instances_after);
}

TEST(Evolution, DetectsAddedAndRemovedRouters) {
  const auto before =
      network_of({"hostname a\n", "hostname b\n", "hostname c\n"});
  const auto after =
      network_of({"hostname a\n", "hostname c\n", "hostname d\n"});
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.added_routers, std::vector<std::string>{"d"});
  EXPECT_EQ(diff.removed_routers, std::vector<std::string>{"b"});
  EXPECT_TRUE(diff.design_changed());
}

TEST(Evolution, DetectsPolicyChange) {
  const auto before = network_of(
      {"hostname a\naccess-list 10 permit 10.0.0.0 0.255.255.255\n"});
  const auto after = network_of(
      {"hostname a\naccess-list 10 deny 10.0.0.0 0.255.255.255\n"});
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.routers_with_policy_changes, 1u);
  EXPECT_TRUE(diff.design_changed());
}

TEST(Evolution, DetectsProcessChange) {
  const auto before = network_of({"hostname a\nrouter ospf 1\n"});
  const auto after = network_of({"hostname a\nrouter eigrp 9\n"});
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.routers_with_process_changes, 1u);
  ASSERT_EQ(diff.appeared_instances.size(), 1u);
  ASSERT_EQ(diff.disappeared_instances.size(), 1u);
  EXPECT_NE(diff.appeared_instances[0].find("eigrp"), std::string::npos);
  EXPECT_NE(diff.disappeared_instances[0].find("ospf"), std::string::npos);
}

TEST(Evolution, DetectsInterfaceAndStaticChanges) {
  const auto before = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"});
  const auto after = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " shutdown\n"
       "ip route 10.5.0.0 255.255.0.0 10.0.0.9\n"});
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.routers_with_interface_changes, 1u);
  EXPECT_EQ(diff.routers_with_static_route_changes, 1u);
}

TEST(Evolution, InstanceGrowthVisible) {
  // A merger: the second snapshot glues a new OSPF island onto the design.
  const auto before = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto after = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n",
       "hostname z\ninterface FastEthernet0/0\n"
       " ip address 10.9.0.1 255.255.255.0\n"
       "router eigrp 7\n network 10.9.0.0 0.0.255.255\n"});
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.instances_before, 1u);
  EXPECT_EQ(diff.instances_after, 2u);
  EXPECT_EQ(diff.added_routers, std::vector<std::string>{"z"});
}

TEST(Evolution, DecommissioningSpokesShrinksTopology) {
  synth::ManagedEnterpriseParams p;
  p.regions = 2;
  p.spokes_per_region = 10;
  const auto net = synth::make_managed_enterprise(p);
  const auto before = model::Network::build(synth::reparse(net.configs));
  // Remove the last three routers (spokes).
  std::vector<config::RouterConfig> fewer(net.configs.begin(),
                                          net.configs.end() - 3);
  const auto after = model::Network::build(synth::reparse(fewer));
  const auto diff = diff_designs(before, after);
  EXPECT_EQ(diff.removed_routers.size(), 3u);
  EXPECT_LT(diff.links_after, diff.links_before);
}

}  // namespace
}  // namespace rd::analysis
