#include <gtest/gtest.h>

#include "analysis/reachability.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::pfx;

// --- basic propagation ----------------------------------------------------------

TEST(Reachability, IgpInstanceOriginatesCoveredSubnets) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  EXPECT_TRUE(analysis.instance_has_route_to(0, addr("10.1.0.55")));
  EXPECT_FALSE(analysis.instance_has_route_to(0, addr("10.2.0.1")));
}

TEST(Reachability, RedistributionMovesRoutesAcrossInstances) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  // Identify the EIGRP instance.
  std::uint32_t eigrp = instances.instances[0].protocol ==
                                config::RoutingProtocol::kEigrp
                            ? 0u
                            : 1u;
  EXPECT_TRUE(analysis.instance_has_route_to(eigrp, addr("10.1.0.5")));
  // One-way redistribution: OSPF does not learn EIGRP's subnets.
  EXPECT_FALSE(
      analysis.instance_has_route_to(1u - eigrp, addr("10.2.0.5")));
}

TEST(Reachability, RouteMapFiltersRedistribution) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.3.0.1 255.255.255.0\n"
       "interface FastEthernet1/0\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.3.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1 route-map ONLY1\n"
       "access-list 4 permit 10.1.0.0 0.0.255.255\n"
       "route-map ONLY1 permit 10\n"
       " match ip address 4\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  std::uint32_t eigrp = instances.instances[0].protocol ==
                                config::RoutingProtocol::kEigrp
                            ? 0u
                            : 1u;
  EXPECT_TRUE(analysis.instance_has_route_to(eigrp, addr("10.1.0.5")));
  EXPECT_FALSE(analysis.instance_has_route_to(eigrp, addr("10.3.0.5")));
}

TEST(Reachability, StaticRoutesViaRedistributeStatic) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute static\n"
       "ip route 172.20.0.0 255.255.0.0 10.1.0.254\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  EXPECT_TRUE(analysis.instance_has_route_to(0, addr("172.20.3.4")));
}

TEST(Reachability, ExternalSessionInjectsFilteredRoutes) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n"
       " neighbor 10.9.0.2 remote-as 701\n"
       " neighbor 10.9.0.2 distribute-list 44 in\n"
       "access-list 44 permit 171.5.0.0 0.0.255.255\n"});
  const auto instances = graph::compute_instances(net);
  ReachabilityAnalysis::Options options;
  options.external_prefixes = {pfx("171.5.0.0/16"), pfx("8.8.0.0/16")};
  const auto analysis = ReachabilityAnalysis::run(net, instances, options);
  EXPECT_TRUE(analysis.instance_has_route_to(0, addr("171.5.1.1")));
  EXPECT_FALSE(analysis.instance_has_route_to(0, addr("8.8.8.8")));
  // The default route is not permitted by ACL 44.
  EXPECT_FALSE(analysis.instance_reaches_internet(0));
}

TEST(Reachability, UnfilteredExternalSessionGetsDefault) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n neighbor 10.9.0.2 remote-as 701\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  EXPECT_TRUE(analysis.instance_reaches_internet(0));
}

TEST(Reachability, AnnouncedExternallyRespectsOutFilters) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n"
       " network 10.1.0.0 mask 255.255.255.0\n"
       " network 10.2.0.0 mask 255.255.255.0\n"
       " neighbor 10.9.0.2 remote-as 701\n"
       " neighbor 10.9.0.2 distribute-list 45 out\n"
       "access-list 45 permit 10.1.0.0 0.0.255.255\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  bool announced_101 = false;
  bool announced_102 = false;
  for (const auto& route : analysis.announced_externally()) {
    if (route.prefix == pfx("10.1.0.0/24")) announced_101 = true;
    if (route.prefix == pfx("10.2.0.0/24")) announced_102 = true;
  }
  EXPECT_TRUE(announced_101);
  EXPECT_FALSE(announced_102);
}

TEST(Reachability, TagsCarriedThroughRedistribution) {
  // net5's trick: set a tag at injection, match it later.
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "interface FastEthernet1/0\n ip address 10.3.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1 route-map SETTAG\n"
       "router rip\n network 10.3.0.0 0.0.255.255\n"
       " redistribute eigrp 9 route-map NEEDTAG\n"
       "route-map SETTAG permit 10\n"
       " set tag 77\n"
       "route-map NEEDTAG permit 10\n"
       " match tag 77\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  std::uint32_t rip = 99;
  for (std::uint32_t i = 0; i < instances.instances.size(); ++i) {
    if (instances.instances[i].protocol == config::RoutingProtocol::kRip) {
      rip = i;
    }
  }
  ASSERT_NE(rip, 99u);
  // OSPF's subnet reached RIP because the tag matched en route...
  EXPECT_TRUE(analysis.instance_has_route_to(rip, addr("10.1.0.5")));
  // ...but EIGRP's own (untagged) subnet did not.
  EXPECT_FALSE(analysis.instance_has_route_to(rip, addr("10.2.0.5")));
}

TEST(Reachability, FixpointTerminates) {
  // Mutual redistribution must not loop forever.
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute eigrp 9\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  EXPECT_LT(analysis.iterations_used(), 64u);
  EXPECT_TRUE(analysis.instance_has_route_to(0, addr("10.2.0.5")));
  EXPECT_TRUE(analysis.instance_has_route_to(1, addr("10.1.0.5")));
}

TEST(Reachability, AggregateAddressOriginatesSummary) {
  // §3.1: border routers craft summary routes. The /16 aggregate appears
  // once a contained /24 is in the BGP instance, and is announced out.
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.2.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n"
       " network 10.1.2.0 mask 255.255.255.0\n"
       " aggregate-address 10.1.0.0 255.255.0.0 summary-only\n"
       " neighbor 10.9.0.2 remote-as 701\n"
       " neighbor 10.9.0.2 distribute-list 45 out\n"
       "access-list 45 permit 10.1.0.0 0.0.0.0\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  bool aggregate_present = false;
  for (const auto& route : analysis.instance_routes(0)) {
    if (route.prefix == pfx("10.1.0.0/16")) aggregate_present = true;
  }
  EXPECT_TRUE(aggregate_present);
  bool aggregate_announced = false;
  for (const auto& route : analysis.announced_externally()) {
    if (route.prefix == pfx("10.1.0.0/16")) aggregate_announced = true;
  }
  EXPECT_TRUE(aggregate_announced);
}

TEST(Reachability, AggregateWithoutContributorStaysSilent) {
  const auto net = network_of(
      {"hostname a\n"
       "router bgp 65000\n"
       " aggregate-address 10.1.0.0 255.255.0.0\n"});
  const auto instances = graph::compute_instances(net);
  const auto analysis = ReachabilityAnalysis::run(net, instances);
  EXPECT_TRUE(analysis.instance_routes(0).empty());
}

TEST(Reachability, RemovingFiltersNeverShrinksReachability) {
  // Monotonicity property: the same network with every route filter
  // stripped must hold a superset of routes in every instance.
  const auto net15 = synth::make_net15();
  auto stripped_configs = synth::reparse(net15.configs);
  for (auto& cfg : stripped_configs) {
    for (auto& stanza : cfg.router_stanzas) {
      stanza.distribute_lists.clear();
      for (auto& nbr : stanza.neighbors) {
        nbr.distribute_list_in.reset();
        nbr.distribute_list_out.reset();
        nbr.prefix_list_in.reset();
        nbr.prefix_list_out.reset();
        nbr.route_map_in.reset();
        nbr.route_map_out.reset();
      }
      for (auto& redist : stanza.redistributes) redist.route_map.reset();
    }
  }
  const auto filtered = model::Network::build(synth::reparse(net15.configs));
  const auto open = model::Network::build(std::move(stripped_configs));
  const auto instances_filtered = graph::compute_instances(filtered);
  const auto instances_open = graph::compute_instances(open);
  ASSERT_EQ(instances_filtered.instances.size(),
            instances_open.instances.size());

  ReachabilityAnalysis::Options options;
  const auto plan = synth::net15_plan();
  options.external_prefixes = {plan.ab0, plan.external_left,
                               plan.external_right};
  const auto reach_filtered =
      ReachabilityAnalysis::run(filtered, instances_filtered, options);
  const auto reach_open =
      ReachabilityAnalysis::run(open, instances_open, options);
  for (std::uint32_t i = 0; i < instances_filtered.instances.size(); ++i) {
    for (const auto& route : reach_filtered.instance_routes(i)) {
      EXPECT_TRUE(reach_open.instance_holds(i, route))
          << "instance " << i << " lost " << route.prefix.to_string();
    }
  }
  // And the open network really is more reachable somewhere (the default
  // route now gets in).
  bool strictly_more = false;
  for (std::uint32_t i = 0; i < instances_open.instances.size(); ++i) {
    if (reach_open.instance_routes(i).size() >
        reach_filtered.instance_routes(i).size()) {
      strictly_more = true;
    }
  }
  EXPECT_TRUE(strictly_more);
}

// --- the net15 case study (Figure 12 / Table 2) -----------------------------------

class Net15Reachability : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto net15 = synth::make_net15();
    network_ = new model::Network(
        model::Network::build(synth::reparse(net15.configs)));
    instances_ = new graph::InstanceSet(graph::compute_instances(*network_));
    ReachabilityAnalysis::Options options;
    const auto plan = synth::net15_plan();
    options.external_prefixes = {plan.ab0, plan.external_left,
                                 plan.external_right};
    analysis_ = new ReachabilityAnalysis(
        ReachabilityAnalysis::run(*network_, *instances_, options));
  }
  static void TearDownTestSuite() {
    delete analysis_;
    delete instances_;
    delete network_;
    analysis_ = nullptr;
    instances_ = nullptr;
    network_ = nullptr;
  }

  static std::uint32_t ospf_instance_containing(ip::Ipv4Address a) {
    for (std::uint32_t i = 0; i < instances_->instances.size(); ++i) {
      const auto& inst = instances_->instances[i];
      if (inst.protocol != config::RoutingProtocol::kOspf) continue;
      for (const auto p : inst.processes) {
        for (const auto itf :
             network_->processes()[p].covered_interfaces) {
          if (network_->interfaces()[itf].subnet &&
              network_->interfaces()[itf].subnet->contains(a)) {
            return i;
          }
        }
      }
    }
    ADD_FAILURE() << "no OSPF instance contains " << a.to_string();
    return 0;
  }

  static model::Network* network_;
  static graph::InstanceSet* instances_;
  static ReachabilityAnalysis* analysis_;
};

model::Network* Net15Reachability::network_ = nullptr;
graph::InstanceSet* Net15Reachability::instances_ = nullptr;
ReachabilityAnalysis* Net15Reachability::analysis_ = nullptr;

TEST_F(Net15Reachability, HasSixInstances) {
  EXPECT_EQ(instances_->instances.size(), 6u);
}

TEST_F(Net15Reachability, NoInternetAtLargeReachability) {
  // Paper: "There is no default route permitted" — no instance reaches the
  // Internet at large.
  for (std::uint32_t i = 0; i < instances_->instances.size(); ++i) {
    EXPECT_FALSE(analysis_->instance_reaches_internet(i)) << i;
  }
}

TEST_F(Net15Reachability, SharedServicesBlockReachableFromBothSites) {
  const auto plan = synth::net15_plan();
  const auto left = ospf_instance_containing(
      ip::Ipv4Address(plan.ab2.network().value() + 257));
  const auto right = ospf_instance_containing(
      ip::Ipv4Address(plan.ab4.network().value() + 257));
  EXPECT_TRUE(analysis_->instance_has_route_to(
      left, ip::Ipv4Address(plan.ab0.network().value() + 1)));
  EXPECT_TRUE(analysis_->instance_has_route_to(
      right, ip::Ipv4Address(plan.ab0.network().value() + 1)));
}

TEST_F(Net15Reachability, SitesMutuallyUnreachable) {
  // Paper: packets from AB2 cannot reach AB4 at all, or vice versa
  // (A2 ∩ A5 = A2 ∩ A3 = A4 ∩ A1 = ∅).
  const auto plan = synth::net15_plan();
  const auto ab2_host = ip::Ipv4Address(plan.ab2.network().value() + 257);
  const auto ab4_host = ip::Ipv4Address(plan.ab4.network().value() + 257);
  const auto left = ospf_instance_containing(ab2_host);
  const auto right = ospf_instance_containing(ab4_host);
  EXPECT_NE(left, right);
  EXPECT_FALSE(analysis_->instance_has_route_to(left, ab4_host));
  EXPECT_FALSE(analysis_->instance_has_route_to(right, ab2_host));
  EXPECT_FALSE(
      analysis_->two_way_reachable(left, ab2_host, right, ab4_host));
}

TEST_F(Net15Reachability, HostBlocksAnnouncedOutward) {
  // Paper: "routes to the hosts connected to the network (AB2 and AB4) are
  // allowed out."
  const auto plan = synth::net15_plan();
  bool ab2_out = false;
  bool ab4_out = false;
  for (const auto& route : analysis_->announced_externally()) {
    if (plan.ab2.contains(route.prefix)) ab2_out = true;
    if (plan.ab4.contains(route.prefix)) ab4_out = true;
  }
  EXPECT_TRUE(ab2_out);
  EXPECT_TRUE(ab4_out);
}

TEST_F(Net15Reachability, ExternalRouteLoadIsBounded) {
  // Paper §6.2: the ingress filters bound the number of external routes the
  // OSPF instances must carry.
  const auto plan = synth::net15_plan();
  const auto left = ospf_instance_containing(
      ip::Ipv4Address(plan.ab2.network().value() + 257));
  EXPECT_LE(analysis_->external_route_count(left), 8u);
}

}  // namespace
}  // namespace rd::analysis
