// Tests for rd::obs (DESIGN.md §10): the trace file is valid JSON in the
// Chrome trace-event shape, spans nest correctly, counters hold the
// determinism contract (byte-identical across 1/2/8 threads), and the
// pipeline report's "metrics" section is stable across runs and engines.
//
// The registry is process-global state, so every test starts from
// Registry::reset() with both switches off and restores that on exit.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "config/writer.h"
#include "obs/obs.h"
#include "pipeline/pipeline.h"
#include "synth/archetypes.h"
#include "util/json.h"

namespace {

using namespace rd;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_and_reset(); }
  void TearDown() override { disarm_and_reset(); }

  static void disarm_and_reset() {
    obs::Registry::instance().set_tracing(false);
    obs::Registry::instance().set_counting(false);
    obs::Registry::instance().reset();
  }
};

std::vector<std::string> small_network_texts() {
  synth::TextbookEnterpriseParams params;
  params.routers = 8;
  std::vector<std::string> texts;
  for (const auto& cfg : synth::make_textbook_enterprise(params).configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

TEST_F(ObsTest, CounterIsGatedAndPointerStable) {
  auto& c = obs::counter("test.gated");
  c.add(5);
  EXPECT_EQ(c.value(), 0u) << "counting off: add must be a no-op";

  obs::Registry::instance().set_counting(true);
  c.add(5);
  c.add();
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(&c, &obs::counter("test.gated"))
      << "same name must return the same counter";

  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u) << "reset zeroes values";
  EXPECT_EQ(&c, &obs::counter("test.gated")) << "reset keeps identities";
}

TEST_F(ObsTest, GaugeTracksLastAndMax) {
  obs::Registry::instance().set_counting(true);
  auto& g = obs::gauge("test.depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.last(), 3u);
  EXPECT_EQ(g.max(), 7u);
  g.add(10);
  EXPECT_EQ(g.last(), 13u);
  EXPECT_EQ(g.max(), 13u);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  {
    obs::Span span("test.disabled", "test");
    span.arg("n", 1);
    EXPECT_FALSE(span.armed());
  }
  EXPECT_EQ(obs::Registry::instance().event_count(), 0u);
  EXPECT_EQ(obs::Registry::instance().trace_json().find("test.disabled"),
            std::string::npos);
}

TEST_F(ObsTest, TraceIsValidChromeTraceJson) {
  obs::Registry::instance().set_tracing(true);
  obs::Registry::instance().set_counting(true);
  obs::counter("test.events").add(3);
  {
    obs::Span outer("test.outer", "test");
    outer.arg("items", 42);
    outer.label("network \"a\"\\b");  // exercises string escaping
    obs::Span inner("test.inner", "test");
  }
  std::thread([] { obs::Span span("test.worker", "test"); }).join();
  obs::Registry::instance().set_tracing(false);

  const auto doc = util::Json::parse(obs::Registry::instance().trace_json());
  ASSERT_TRUE(doc.has_value()) << "trace must parse as JSON";
  const auto* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t complete = 0, metadata = 0, counters = 0, workers = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto* event = events->at(i);
    const auto* ph = event->get("ph");
    ASSERT_NE(ph, nullptr);
    const std::string phase = *ph->if_string();
    if (phase == "X") {
      ++complete;
      EXPECT_GE(event->get("dur")->number_or(-1.0), 0.0);
      if (*event->get("name")->if_string() == "test.worker") ++workers;
    } else if (phase == "M") {
      ++metadata;
    } else if (phase == "C") {
      ++counters;
    }
  }
  EXPECT_EQ(complete, 3u) << "outer, inner, worker";
  EXPECT_EQ(workers, 1u);
  EXPECT_GE(metadata, 2u) << "thread-name metadata for both threads";
  EXPECT_GE(counters, 2u) << "final counter values + peak RSS";
}

TEST_F(ObsTest, SpansNestWithDepthAndContainment) {
  obs::Registry::instance().set_tracing(true);
  {
    obs::Span outer("test.parent", "test");
    obs::Span inner("test.child", "test");
  }
  obs::Registry::instance().set_tracing(false);

  const auto doc = util::Json::parse(obs::Registry::instance().trace_json());
  ASSERT_TRUE(doc.has_value());
  const auto* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);

  double parent_ts = -1, parent_dur = -1, child_ts = -1, child_dur = -1;
  long long parent_depth = -1, child_depth = -1;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto* event = events->at(i);
    const auto* name = event->get("name");
    if (name == nullptr || name->if_string() == nullptr) continue;
    if (*name->if_string() == "test.parent") {
      parent_ts = event->get("ts")->number_or(-1);
      parent_dur = event->get("dur")->number_or(-1);
      parent_depth = event->get("args")->get("depth")->int_or(-1);
    } else if (*name->if_string() == "test.child") {
      child_ts = event->get("ts")->number_or(-1);
      child_dur = event->get("dur")->number_or(-1);
      child_depth = event->get("args")->get("depth")->int_or(-1);
    }
  }
  ASSERT_GE(parent_ts, 0.0);
  ASSERT_GE(child_ts, 0.0);
  EXPECT_EQ(parent_depth, 0);
  EXPECT_EQ(child_depth, 1) << "child nests one level under parent";
  // The ns -> µs conversion keeps three decimals, so containment holds
  // exactly up to double-parsing noise.
  EXPECT_GE(child_ts, parent_ts - 0.001);
  EXPECT_LE(child_ts + child_dur, parent_ts + parent_dur + 0.001);
}

TEST_F(ObsTest, CountersByteIdenticalAcrossThreadCounts) {
  const auto texts = small_network_texts();
  std::vector<pipeline::FleetInput> inputs;
  inputs.push_back({"net-a", texts});
  inputs.push_back({"net-b", texts});

  std::vector<std::string> snapshots;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    disarm_and_reset();
    obs::Registry::instance().set_counting(true);
    pipeline::Options options;
    options.threads = threads;
    const auto reports = pipeline::analyze_fleet_parallel(inputs, options);
    ASSERT_EQ(reports.size(), 2u);
    snapshots.push_back(obs::Registry::instance().counters_json());
  }
  EXPECT_EQ(snapshots[0], snapshots[1])
      << "counters must count logical events, not scheduling";
  EXPECT_EQ(snapshots[0], snapshots[2]);
  EXPECT_NE(snapshots[0].find("parse.routers"), std::string::npos);
  EXPECT_NE(snapshots[0].find("rules.findings"), std::string::npos);
  EXPECT_NE(snapshots[0].find("reachability.routes"), std::string::npos);
}

TEST_F(ObsTest, MetricsSectionStableAcrossRunsAndEngines) {
  const auto texts = small_network_texts();

  // Serial vs parallel, twice each: the report (metrics section included)
  // must be byte-identical every time.
  const auto serial = pipeline::analyze_fleet_serial({{"net", texts}});
  ASSERT_EQ(serial.size(), 1u);
  const auto again = pipeline::analyze_fleet_serial({{"net", texts}});
  EXPECT_EQ(serial[0].json, again[0].json);
  pipeline::Options options;
  options.threads = 4;
  const auto parallel = pipeline::analyze_fleet_parallel({{"net", texts}},
                                                         options);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_EQ(serial[0].json, parallel[0].json);

  // And the section actually carries the deterministic counts.
  const auto doc = util::Json::parse(serial[0].json);
  ASSERT_TRUE(doc.has_value());
  const auto* metrics = doc->get("metrics");
  ASSERT_NE(metrics, nullptr) << "report must have a metrics section";
  const auto* counters = metrics->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get("parse.routers")->int_or(-1), 8);
  EXPECT_GE(counters->get("rules.evaluated")->int_or(-1), 1);
  EXPECT_GE(counters->get("reachability.iterations")->int_or(-1), 1);
  EXPECT_GE(counters->get("model.links")->int_or(-1), 1);

  // The metrics section reports per-network values computed locally, so it
  // stays identical whether or not the global switches were ever flipped.
  disarm_and_reset();
  obs::Registry::instance().set_counting(true);
  const auto counted = pipeline::analyze_fleet_serial({{"net", texts}});
  EXPECT_EQ(serial[0].json, counted[0].json);
}

TEST_F(ObsTest, CountersJsonIsNameSortedAndCompact) {
  obs::Registry::instance().set_counting(true);
  obs::counter("zz.last").add(2);
  obs::counter("aa.first").add(1);
  // The registry outlives tests, so other counters may be present (at 0
  // after reset); assert shape and ordering, not the exact document.
  const auto json = obs::Registry::instance().counters_json();
  const auto first = json.find("\"aa.first\":1");
  const auto last = json.find("\"zz.last\":2");
  ASSERT_NE(first, std::string::npos) << json;
  ASSERT_NE(last, std::string::npos) << json;
  EXPECT_LT(first, last) << "name-sorted";
  EXPECT_EQ(json.find(' '), std::string::npos) << "compact";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(ObsTest, PeakRssIsReported) {
#if defined(__linux__)
  EXPECT_GT(obs::Registry::peak_rss_kb(), 0u);
#else
  SUCCEED();
#endif
}

}  // namespace
