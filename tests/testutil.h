#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/ast.h"
#include "config/parser.h"
#include "ip/ipv4.h"
#include "model/network.h"

namespace rd::test {

/// Parse a config snippet, asserting nothing about diagnostics.
inline config::RouterConfig parse(std::string_view text,
                                  std::string_view name = "test") {
  return config::parse_config(text, name).config;
}

/// Build a model::Network from config texts.
inline model::Network network_of(std::vector<std::string> texts) {
  std::vector<config::RouterConfig> configs;
  configs.reserve(texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    configs.push_back(
        config::parse_config(texts[i], "cfg" + std::to_string(i)).config);
  }
  return model::Network::build(std::move(configs));
}

inline ip::Prefix pfx(std::string_view text) {
  return *ip::Prefix::parse(text);
}

inline ip::Ipv4Address addr(std::string_view text) {
  return *ip::Ipv4Address::parse(text);
}

/// The paper's Figure 2 configlet (router R2), verbatim except that the
/// wildcarded access-list line 30 uses the standard one-address form the
/// paper prints.
inline constexpr std::string_view kFigure2Config = R"(interface Ethernet0
 ip address 66.251.75.144 255.255.255.128
 ip access-group 143 in
!
interface Serial1/0.5 point-to-point
 ip address 66.253.32.85 255.255.255.252
 ip access-group 143 in
 frame-relay interface-dlci 28
!
interface Hssi2/0 point-to-point
 ip address 66.253.160.67 255.255.255.252
!
router ospf 64
 redistribute connected metric-type 1 subnets
 redistribute bgp 64780 metric 1 subnets
 network 66.251.75.128 0.0.0.127 area 0
!
router ospf 128
 redistribute connected metric-type 1 subnets
 network 66.253.32.84 0.0.0.3 area 11
 distribute-list 44 in Serial1/0.5
 distribute-list 45 out
!
router bgp 64780
 redistribute ospf 64 match route-map 8aTzlvBrbaW
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 distribute-list 4 in
 neighbor 66.253.160.68 distribute-list 3 out
!
access-list 143 deny 134.161.0.0 0.0.255.255
access-list 143 permit any
route-map 8aTzlvBrbaW deny 10
 match ip address 4
route-map 8aTzlvBrbaW permit 20
 match ip address 7
ip route 10.235.240.71 255.255.0.0 10.234.12.7
)";

}  // namespace rd::test
