#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/consistency.h"
#include "synth/emit.h"
#include "synth/fleet.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

bool has(const std::vector<ConsistencyFinding>& findings,
         ConsistencyKind kind) {
  return std::any_of(
      findings.begin(), findings.end(),
      [&](const ConsistencyFinding& f) { return f.kind == kind; });
}

TEST(Consistency, CleanNetworkHasNoFindings) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"});
  EXPECT_TRUE(check_consistency(net).empty());
}

TEST(Consistency, DuplicateAddressAcrossRouters) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n",
       "hostname b\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"});
  const auto findings = check_consistency(net);
  ASSERT_TRUE(has(findings, ConsistencyKind::kDuplicateAddress));
  EXPECT_NE(findings[0].detail.find("10.0.0.1"), std::string::npos);
}

TEST(Consistency, DuplicateViaSecondaryAddress) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n",
       "hostname b\ninterface FastEthernet0/0\n"
       " ip address 10.9.0.1 255.255.255.0\n"
       " ip address 10.0.0.1 255.255.255.0 secondary\n"});
  EXPECT_TRUE(has(check_consistency(net),
                  ConsistencyKind::kDuplicateAddress));
}

TEST(Consistency, MaskMismatchOnOneWire) {
  // One side believes the wire is a /30, the other a /24.
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.0\n"});
  const auto findings = check_consistency(net);
  ASSERT_TRUE(has(findings, ConsistencyKind::kMaskMismatch));
}

TEST(Consistency, OneSidedInternalSession) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router bgp 65002\n"});  // b never configures the session back
  EXPECT_TRUE(has(check_consistency(net),
                  ConsistencyKind::kOneSidedBgpSession));
}

TEST(Consistency, AsnMismatchDetected) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.2 remote-as 65009\n",  // wrong AS
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"});
  const auto findings = check_consistency(net);
  EXPECT_TRUE(has(findings, ConsistencyKind::kAsnMismatch));
}

TEST(Consistency, TrueExternalSessionNotFlagged) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n"});
  EXPECT_FALSE(has(check_consistency(net),
                   ConsistencyKind::kAsnMismatch));
  EXPECT_FALSE(has(check_consistency(net),
                   ConsistencyKind::kOneSidedBgpSession));
}

TEST(Consistency, KindNames) {
  EXPECT_EQ(to_string(ConsistencyKind::kDuplicateAddress),
            "duplicate-address");
  EXPECT_EQ(to_string(ConsistencyKind::kAsnMismatch), "asn-mismatch");
}

TEST(Consistency, FleetIsConsistentByConstruction) {
  // The generators never emit duplicate addresses, mask mismatches, or
  // one-sided internal sessions — verified over a few representative
  // networks (the fleet invariants suite covers the rest of the pipeline).
  const auto fleet = synth::generate_fleet(42);
  std::size_t checked = 0;
  for (const auto& net : fleet.networks) {
    if (net.configs.size() > 150) continue;  // keep the test fast
    const auto network = model::Network::build(synth::reparse(net.configs));
    const auto findings = check_consistency(network);
    EXPECT_TRUE(findings.empty())
        << net.name << ": " << findings.size() << " findings, first: "
        << (findings.empty() ? "" : findings[0].detail);
    ++checked;
  }
  EXPECT_GE(checked, 10u);
}

}  // namespace
}  // namespace rd::analysis
