// Tests for secondary-address modeling and IS-IS interface association.

#include <gtest/gtest.h>

#include "config/writer.h"
#include "graph/address_space.h"
#include "graph/instances.h"
#include "model/network.h"
#include "testutil.h"

namespace rd::model {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::pfx;

// --- secondary addresses -----------------------------------------------------------

TEST(SecondaryAddresses, RecordedOnModelInterface) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip address 10.2.0.1 255.255.255.0 secondary\n"});
  ASSERT_EQ(net.interfaces().size(), 1u);
  const auto& itf = net.interfaces()[0];
  EXPECT_EQ(itf.secondary_addresses.size(), 1u);
  EXPECT_EQ(itf.secondary_subnets.size(), 1u);
  EXPECT_EQ(itf.secondary_subnets[0], pfx("10.2.0.0/24"));
}

TEST(SecondaryAddresses, CountTowardInternality) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip address 10.2.0.1 255.255.255.0 secondary\n"});
  EXPECT_TRUE(net.address_is_internal(addr("10.2.0.99")));
  EXPECT_TRUE(net.address_is_internal(addr("10.1.0.99")));
  EXPECT_FALSE(net.address_is_internal(addr("10.3.0.1")));
}

TEST(SecondaryAddresses, AppearInInterfaceSubnets) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip address 10.1.1.1 255.255.255.0 secondary\n"});
  const auto subnets = net.interface_subnets();
  ASSERT_EQ(subnets.size(), 2u);
  // And the address structure joins them into one block.
  const auto structure = graph::extract_address_structure(net);
  EXPECT_EQ(structure.root_blocks(),
            (std::vector<ip::Prefix>{pfx("10.1.0.0/23")}));
}

TEST(SecondaryAddresses, SecondaryOwnershipPreventsExternalMarking) {
  // The /30's missing side is owned by b as a *secondary* address: the
  // link is internal.
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 172.16.0.1 255.255.255.252\n"
       " ip address 10.0.0.2 255.255.255.252 secondary\n"});
  // a's /30 has .2 owned (as secondary) -> internal.
  for (const auto& link : net.links()) {
    if (link.subnet == pfx("10.0.0.0/30")) {
      EXPECT_FALSE(link.external_facing);
    }
  }
}

TEST(SecondaryAddresses, NetworkStatementCoversViaSecondary) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 192.168.0.1 255.255.255.0\n"
       " ip address 10.5.0.1 255.255.255.0 secondary\n"
       "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"});
  ASSERT_EQ(net.processes().size(), 1u);
  EXPECT_EQ(net.processes()[0].covered_interfaces.size(), 1u);
}

// --- IS-IS ---------------------------------------------------------------------------

TEST(Isis, InterfaceAssociation) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       " ip router isis\n"
       "interface FastEthernet0/1\n"
       " ip address 10.2.0.1 255.255.255.0\n"
       "router isis\n"});
  ASSERT_EQ(net.processes().size(), 1u);
  EXPECT_EQ(net.processes()[0].protocol, config::RoutingProtocol::kIsis);
  ASSERT_EQ(net.processes()[0].covered_interfaces.size(), 1u);
  EXPECT_EQ(net.interfaces()[net.processes()[0].covered_interfaces[0]].name,
            "FastEthernet0/0");
}

TEST(Isis, AdjacencyAcrossLink) {
  auto isis_router = [](const std::string& host, const std::string& address) {
    return "hostname " + host +
           "\ninterface Serial0/0 point-to-point\n ip address " + address +
           " 255.255.255.252\n ip router isis\nrouter isis\n";
  };
  const auto net = network_of(
      {isis_router("a", "10.0.0.1"), isis_router("b", "10.0.0.2")});
  EXPECT_EQ(net.igp_adjacencies().size(), 1u);
  const auto instances = graph::compute_instances(net);
  ASSERT_EQ(instances.instances.size(), 1u);
  EXPECT_EQ(instances.instances[0].router_count(), 2u);
  EXPECT_EQ(instances.instances[0].protocol, config::RoutingProtocol::kIsis);
}

TEST(Isis, RoundTripsThroughWriter) {
  const std::string text =
      "hostname a\n"
      "interface FastEthernet0/0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip router isis\n"
      "router isis\n";
  const auto cfg = rd::test::parse(text, "a");
  EXPECT_TRUE(cfg.interfaces[0].isis);
  const auto reparsed =
      config::parse_config(config::write_config(cfg), "a").config;
  EXPECT_EQ(reparsed.interfaces, cfg.interfaces);
  EXPECT_EQ(reparsed.router_stanzas, cfg.router_stanzas);
}

}  // namespace
}  // namespace rd::model
