#include <gtest/gtest.h>

#include <algorithm>

#include "graph/address_space.h"
#include "testutil.h"

namespace rd::graph {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::pfx;

std::vector<ip::Prefix> roots_of(std::vector<ip::Prefix> subnets) {
  return extract_address_structure(std::move(subnets)).root_blocks();
}

TEST(AddressStructure, EmptyInput) {
  const auto s = extract_address_structure(std::vector<ip::Prefix>{});
  EXPECT_TRUE(s.nodes.empty());
  EXPECT_TRUE(s.roots.empty());
}

TEST(AddressStructure, SingleSubnetIsItsOwnRoot) {
  const auto roots = roots_of({pfx("10.0.0.0/24")});
  EXPECT_EQ(roots, (std::vector<ip::Prefix>{pfx("10.0.0.0/24")}));
}

TEST(AddressStructure, JoinsRunOfSlash30s) {
  // A run of /30s from one block plan joins into the covering block.
  std::vector<ip::Prefix> subnets;
  for (std::uint32_t i = 0; i < 16; ++i) {
    subnets.push_back(ip::Prefix(ip::Ipv4Address(0x0A000000u + i * 4), 30));
  }
  const auto roots = roots_of(subnets);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], pfx("10.0.0.0/26"));
}

TEST(AddressStructure, SeparatePlansStaySeparate) {
  const auto roots = roots_of({pfx("10.1.0.0/24"), pfx("10.1.1.0/24"),
                               pfx("192.168.7.0/24"), pfx("192.168.6.0/24")});
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0], pfx("10.1.0.0/23"));
  EXPECT_EQ(roots[1], pfx("192.168.6.0/23"));
}

TEST(AddressStructure, HalfUsedRuleBlocksSparseJoin) {
  // Two /24s eight blocks apart: any covering block would be < half used.
  const auto roots = roots_of({pfx("10.0.0.0/24"), pfx("10.0.8.0/24")});
  EXPECT_EQ(roots.size(), 2u);
}

TEST(AddressStructure, TreeHasConsistentParentChildLinks) {
  std::vector<ip::Prefix> subnets;
  for (std::uint32_t i = 0; i < 8; ++i) {
    subnets.push_back(ip::Prefix(ip::Ipv4Address(0x0A000000u + i * 256), 24));
  }
  const auto s = extract_address_structure(subnets);
  for (std::uint32_t n = 0; n < s.nodes.size(); ++n) {
    for (const auto child : s.nodes[n].children) {
      EXPECT_EQ(s.nodes[child].parent, static_cast<std::int32_t>(n));
      EXPECT_TRUE(s.nodes[n].block.contains(s.nodes[child].block));
    }
  }
  // Roots have no parent.
  for (const auto r : s.roots) EXPECT_EQ(s.nodes[r].parent, -1);
}

TEST(AddressStructure, LeavesAreInputSubnets) {
  const std::vector<ip::Prefix> input{pfx("10.0.0.0/24"), pfx("10.0.1.0/24")};
  const auto s = extract_address_structure(input);
  std::vector<ip::Prefix> leaves;
  for (const auto& node : s.nodes) {
    if (node.leaf) leaves.push_back(node.block);
  }
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(leaves, input);
}

TEST(AddressStructure, NestedInputSubnetsBecomeChildren) {
  const auto s = extract_address_structure(
      std::vector<ip::Prefix>{pfx("10.0.0.0/16"), pfx("10.0.5.0/24")});
  ASSERT_EQ(s.roots.size(), 1u);
  EXPECT_EQ(s.nodes[s.roots[0]].block, pfx("10.0.0.0/16"));
  ASSERT_EQ(s.nodes[s.roots[0]].children.size(), 1u);
  EXPECT_TRUE(s.nodes[s.roots[0]].leaf);  // the /16 is itself an input
}

TEST(AddressStructure, RootContaining) {
  const auto s = extract_address_structure(
      std::vector<ip::Prefix>{pfx("10.0.0.0/24"), pfx("192.168.0.0/24")});
  EXPECT_EQ(s.root_containing(addr("10.0.0.55")), 0);
  EXPECT_EQ(s.root_containing(addr("192.168.0.1")), 1);
  EXPECT_EQ(s.root_containing(addr("8.8.8.8")), -1);
}

TEST(AddressStructure, DuplicatesCollapse) {
  const auto roots = roots_of({pfx("10.0.0.0/24"), pfx("10.0.0.0/24")});
  EXPECT_EQ(roots.size(), 1u);
}

// --- instance-block association (paper §3.4 first use) -------------------------

TEST(BlocksPerInstance, AssociatesCoveredSubnets) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.1.1.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n",
       "hostname b\n"
       "interface FastEthernet0/0\n ip address 192.168.0.1 255.255.255.0\n"
       "router ospf 1\n network 192.168.0.0 0.0.255.255 area 0\n"});
  const auto instances = compute_instances(net);
  const auto structure = extract_address_structure(net);
  const auto blocks = blocks_per_instance(net, instances, structure);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].size(), 1u);
  EXPECT_EQ(blocks[1].size(), 1u);
  EXPECT_NE(blocks[0][0], blocks[1][0]);
}

// --- missing-router detection (paper §3.4 second use) ---------------------------

TEST(MissingRouter, DetectsHoleInInternalBlock) {
  // Six /30s from one block plan, five fully populated, one half-populated
  // (the missing router). The heuristic should flag the orphan interface.
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    const std::string base = "10.0.0." + std::to_string(i * 4);
    const std::string a = "10.0.0." + std::to_string(i * 4 + 1);
    const std::string b = "10.0.0." + std::to_string(i * 4 + 2);
    texts.push_back("hostname a" + std::to_string(i) +
                    "\ninterface Serial0/0 point-to-point\n ip address " + a +
                    " 255.255.255.252\n");
    if (i != 5) {  // the 6th peer's config is "missing from the data set"
      texts.push_back("hostname b" + std::to_string(i) +
                      "\ninterface Serial0/0 point-to-point\n ip address " +
                      b + " 255.255.255.252\n");
    }
  }
  const auto net = network_of(texts);
  const auto structure = extract_address_structure(net);
  const auto suspects = detect_missing_routers(net, structure, 0.8);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(net.interfaces()[suspects[0].interface].address->to_string(),
            "10.0.0.21");
  EXPECT_GE(suspects[0].internal_fraction, 0.8);
}

TEST(MissingRouter, TrueEdgeBlockNotFlagged) {
  // External-facing interfaces drawn from their own block (as the paper
  // says many networks do) should not be flagged.
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    texts.push_back(
        "hostname e" + std::to_string(i) +
        "\ninterface Serial0/0 point-to-point\n ip address 66.0.0." +
        std::to_string(i * 4 + 1) + " 255.255.255.252\n");
  }
  const auto net = network_of(texts);
  const auto structure = extract_address_structure(net);
  EXPECT_TRUE(detect_missing_routers(net, structure, 0.8).empty());
}

}  // namespace
}  // namespace rd::graph
