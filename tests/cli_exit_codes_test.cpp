// Every example CLI honors the exit-code contract's error leg: feeding a
// truncated configuration file where a config directory belongs must exit 2
// (usage / I/O error) — not 0, not 1, and especially not an uncaught
// std::filesystem_error turning into std::terminate (exit 134). Also pins
// the unified --threads parsing: out-of-range and non-numeric values exit 2
// on every CLI that takes the flag.
//
// The binaries are found via RD_EXAMPLES_BIN_DIR, injected by CMake.

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#if defined(_WIN32)
#error "this test suite assumes POSIX wait-status decoding"
#endif
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

/// Runs `<bin-dir>/<tool> <args>` with stdout/stderr discarded and returns
/// the tool's exit code, or -1 when it did not exit normally (signal,
/// abort) — the failure mode this suite exists to rule out.
int run_tool(const std::string& tool, const std::string& args) {
  const std::string command = std::string(RD_EXAMPLES_BIN_DIR) + "/" + tool +
                              " " + args + " >/dev/null 2>/dev/null";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// Like run_tool, but captures stderr into `stderr_out` (for the legs that
/// assert on diagnostic text, not just the exit code).
int run_tool_stderr(const std::string& tool, const std::string& args,
                    const std::string& stderr_file, std::string* stderr_out) {
  const std::string command = std::string(RD_EXAMPLES_BIN_DIR) + "/" + tool +
                              " " + args + " >/dev/null 2>" + stderr_file;
  const int status = std::system(command.c_str());
  std::ifstream in(stderr_file);
  std::ostringstream text;
  text << in.rdbuf();
  *stderr_out = text.str();
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class CliExitCodesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rd_cli_exit_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    truncated_ = (dir_ / "truncated-config").string();
    std::ofstream out(truncated_);
    // A config cut off mid-statement — a plain file, not the directory
    // every tool expects.
    out << "hostname torn-router\ninterface FastEth";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::string truncated_;
};

TEST_F(CliExitCodesTest, TruncatedConfigFileExitsTwoEverywhere) {
  EXPECT_EQ(run_tool("quickstart", truncated_), 2);
  EXPECT_EQ(run_tool("audit_network", truncated_), 2);
  EXPECT_EQ(run_tool("reachability_query", truncated_), 2);
  EXPECT_EQ(run_tool("export_design", truncated_), 2);
  EXPECT_EQ(run_tool("rdlint", truncated_), 2);
  EXPECT_EQ(run_tool("pathway_report", truncated_ + " some-router"), 2);
  EXPECT_EQ(run_tool("diff_snapshots", truncated_ + " " + truncated_), 2);
  EXPECT_EQ(run_tool("diff_snapshots", "--series " + truncated_ + " " +
                                           truncated_),
            2);
  EXPECT_EQ(run_tool("anonymize_configs",
                     truncated_ + " " + (dir_ / "anon-out").string()),
            2);
  // generate_network reads no configs; its I/O error leg is an output
  // directory that is actually a file.
  EXPECT_EQ(run_tool("generate_network", "enterprise " + truncated_), 2);
}

TEST_F(CliExitCodesTest, NonexistentPathExitsTwo) {
  const std::string gone = (dir_ / "does-not-exist").string();
  EXPECT_EQ(run_tool("quickstart", gone), 2);
  EXPECT_EQ(run_tool("audit_network", gone), 2);
  EXPECT_EQ(run_tool("rdlint", gone), 2);
  EXPECT_EQ(run_tool("reachability_query", gone), 2);
}

TEST_F(CliExitCodesTest, BadThreadsValueExitsTwo) {
  for (const char* tool : {"audit_network", "rdlint"}) {
    EXPECT_EQ(run_tool(tool, "--threads 0"), 2) << tool;
    EXPECT_EQ(run_tool(tool, "--threads 1025"), 2) << tool;
    EXPECT_EQ(run_tool(tool, "--threads abc"), 2) << tool;
    EXPECT_EQ(run_tool(tool, "--threads"), 2) << tool;
  }
}

TEST_F(CliExitCodesTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_tool("generate_network", "bogus-archetype " +
                                             (dir_ / "out").string()),
            2);
  EXPECT_EQ(run_tool("rdlint", "--format yaml"), 2);
  EXPECT_EQ(run_tool("audit_network", "--trace"), 2);
  EXPECT_EQ(run_tool("rdlint", "--trace"), 2);
}

TEST_F(CliExitCodesTest, GoodInvocationsStillExitZero) {
  // The guarded mains must not change the success leg: --help is exit 0.
  EXPECT_EQ(run_tool("audit_network", "--help"), 0);
  EXPECT_EQ(run_tool("rdlint", "--help"), 0);
  EXPECT_EQ(run_tool("rdd", "--help"), 0);
  EXPECT_EQ(run_tool("rdctl", "--help"), 0);
}

TEST_F(CliExitCodesTest, DaemonAndClientUsageErrorsExitTwo) {
  // rdd: missing fleet, missing listener, malformed --fleet spec, and a
  // fleet directory that is actually a file are all usage/I-O errors.
  EXPECT_EQ(run_tool("rdd", "--socket " + (dir_ / "s.sock").string()), 2);
  EXPECT_EQ(run_tool("rdd", "--fleet corp=" + dir_.string()), 2);
  EXPECT_EQ(run_tool("rdd", "--socket " + (dir_ / "s.sock").string() +
                                " --fleet corp"),
            2);
  EXPECT_EQ(run_tool("rdd", "--socket " + (dir_ / "s.sock").string() +
                                " --fleet corp=" + truncated_),
            2);
  EXPECT_EQ(run_tool("rdd", "--tcp 99999 --fleet corp=" + dir_.string()), 2);

  // rdctl: no op, no transport, both transports, dead socket.
  EXPECT_EQ(run_tool("rdctl", "--socket " + (dir_ / "s.sock").string()), 2);
  EXPECT_EQ(run_tool("rdctl", "ping"), 2);
  EXPECT_EQ(run_tool("rdctl", "--socket x --tcp 7440 ping"), 2);
  EXPECT_EQ(run_tool("rdctl",
                     "--socket " + (dir_ / "no-daemon.sock").string() +
                         " ping"),
            2);
}

TEST_F(CliExitCodesTest, ClientConnectFailureExplainsItselfOnStderr) {
  const std::string err_file = (dir_ / "rdctl-stderr").string();
  std::string err;

  // No daemon was ever at this path: exit 2 with the errno text and a hint
  // at the likely cause, not a bare "cannot connect".
  EXPECT_EQ(run_tool_stderr("rdctl",
                            "--socket " + (dir_ / "never.sock").string() +
                                " ping",
                            err_file, &err),
            2);
  EXPECT_NE(err.find("cannot connect"), std::string::npos) << err;
  EXPECT_NE(err.find("is rdd running?"), std::string::npos) << err;
  EXPECT_NE(err.find(std::strerror(ENOENT)), std::string::npos) << err;

  // A stale socket file — a daemon bound here once and died without
  // unlinking. connect(2) refuses; the message must name that errno.
  const std::string stale = (dir_ / "stale.sock").string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(stale.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, stale.c_str(), stale.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  ::close(fd);  // the file stays behind, but nobody is listening
  EXPECT_EQ(run_tool_stderr("rdctl", "--socket " + stale + " ping", err_file,
                            &err),
            2);
  EXPECT_NE(err.find("is rdd running?"), std::string::npos) << err;
  EXPECT_NE(err.find(std::strerror(ECONNREFUSED)), std::string::npos) << err;
}

TEST_F(CliExitCodesTest, SimulateConvergenceFlagParsing) {
  // --seed/--until go through cli::parse_u64_flag: trailing garbage,
  // overflow, and a missing value are all usage errors, never silent
  // truncation.
  EXPECT_EQ(run_tool("simulate_convergence", "--seed abc"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", "--seed 12x"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", "--seed -1"), 2);
  EXPECT_EQ(run_tool("simulate_convergence",
                     "--seed 99999999999999999999999999"),
            2);
  EXPECT_EQ(run_tool("simulate_convergence", "--seed"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", "--until 10h"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", "--until"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", "--threads abc"), 2);
  EXPECT_EQ(run_tool("simulate_convergence", truncated_), 2);
  EXPECT_EQ(run_tool("simulate_convergence",
                     (dir_ / "does-not-exist").string()),
            2);
  EXPECT_EQ(run_tool("simulate_convergence", "--help"), 0);
  // rdctl shares the flag parser for the daemon-side simulate op.
  EXPECT_EQ(run_tool("rdctl", "--tcp 1 --seed abc simulate"), 2);
  EXPECT_EQ(run_tool("rdctl", "--tcp 1 --until 10h simulate"), 2);
}

}  // namespace
