#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/reachability.h"
#include "analysis/vulnerability.h"
#include "analysis/whatif.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

std::string chain_router(int index, bool left_link, bool right_link) {
  // Router i with /30s to i-1 (10.0.0.(4i)/30) and i+1 (10.0.0.(4i+4)/30),
  // all covered by OSPF.
  std::string text = "hostname r" + std::to_string(index) + "\n";
  if (left_link) {
    text += "interface Serial0/0 point-to-point\n ip address 10.0.0." +
            std::to_string(4 * index + 2) + " 255.255.255.252\n";
  }
  if (right_link) {
    text += "interface Serial0/1 point-to-point\n ip address 10.0.0." +
            std::to_string(4 * index + 5) + " 255.255.255.252\n";
  }
  text += "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n";
  return text;
}

/// A 5-router OSPF chain r0 - r1 - r2 - r3 - r4.
model::Network chain_network() {
  std::vector<std::string> texts;
  for (int i = 0; i < 5; ++i) {
    texts.push_back(chain_router(i, i > 0, i < 4));
  }
  return network_of(texts);
}

TEST(WithoutRouters, RemovesConfigs) {
  const auto net = chain_network();
  const auto after = without_routers(net, {1, 3});
  EXPECT_EQ(after.router_count(), 3u);
  EXPECT_EQ(after.routers()[0].hostname, "r0");
  EXPECT_EQ(after.routers()[1].hostname, "r2");
  EXPECT_EQ(after.routers()[2].hostname, "r4");
}

TEST(SimulateFailure, MiddleOfChainFragmentsInstance) {
  const auto net = chain_network();
  const auto baseline = graph::compute_instances(net);
  ASSERT_EQ(baseline.instances.size(), 1u);
  const auto impact = simulate_router_failure(net, baseline, {2});
  EXPECT_EQ(impact.instances_before, 1u);
  EXPECT_EQ(impact.instances_after, 2u);
  ASSERT_EQ(impact.fragmented_instances.size(), 1u);
  EXPECT_TRUE(impact.disconnects_something());
}

TEST(SimulateFailure, EndOfChainIsHarmless) {
  const auto net = chain_network();
  const auto baseline = graph::compute_instances(net);
  const auto impact = simulate_router_failure(net, baseline, {0});
  EXPECT_EQ(impact.instances_after, 1u);
  EXPECT_TRUE(impact.fragmented_instances.empty());
  EXPECT_FALSE(impact.disconnects_something());
}

TEST(SimulateFailure, SoleRedistributorSeversPair) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1\n"});
  const auto baseline = graph::compute_instances(net);
  const auto impact = simulate_router_failure(net, baseline, {0});
  EXPECT_EQ(impact.severed_instance_pairs, 1u);
  EXPECT_TRUE(impact.disconnects_something());
}

TEST(Articulation, ChainMiddleRoutersAreCutVertices) {
  const auto net = chain_network();
  const auto instances = graph::compute_instances(net);
  const auto cuts = instance_articulation_routers(net, instances);
  // r1, r2, r3 are articulation points of the 5-chain.
  ASSERT_EQ(cuts.size(), 3u);
  std::vector<model::RouterId> routers;
  for (const auto& cut : cuts) routers.push_back(cut.router);
  std::sort(routers.begin(), routers.end());
  EXPECT_EQ(routers, (std::vector<model::RouterId>{1, 2, 3}));
}

TEST(Articulation, RingHasNoCutVertices) {
  // A 4-ring: every router has two disjoint paths to every other.
  std::vector<std::string> texts;
  for (int i = 0; i < 4; ++i) {
    const int left = ((i + 3) % 4) * 4;   // link id shared with predecessor
    const int right = i * 4;
    std::string text = "hostname ring" + std::to_string(i) + "\n";
    text += "interface Serial0/0 point-to-point\n ip address 10.0.0." +
            std::to_string(left + 2) + " 255.255.255.252\n";
    text += "interface Serial0/1 point-to-point\n ip address 10.0.0." +
            std::to_string(right + 1) + " 255.255.255.252\n";
    text += "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n";
    texts.push_back(text);
  }
  const auto net = network_of(texts);
  const auto instances = graph::compute_instances(net);
  ASSERT_EQ(instances.instances.size(), 1u);
  ASSERT_EQ(instances.instances[0].router_count(), 4u);
  EXPECT_TRUE(instance_articulation_routers(net, instances).empty());
}

TEST(Articulation, HubAndSpokeHubIsTheCut) {
  std::vector<std::string> texts;
  std::string hub = "hostname hub\n";
  for (int s = 0; s < 4; ++s) {
    hub += "interface Serial0/" + std::to_string(s) +
           " point-to-point\n ip address 10.0.0." + std::to_string(4 * s + 1) +
           " 255.255.255.252\n";
    texts.push_back("hostname spoke" + std::to_string(s) +
                    "\ninterface Serial0/0 point-to-point\n ip address "
                    "10.0.0." +
                    std::to_string(4 * s + 2) +
                    " 255.255.255.252\nrouter ospf 1\n network 10.0.0.0 "
                    "0.0.255.255 area 0\n");
  }
  hub += "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n";
  texts.insert(texts.begin(), hub);
  const auto net = network_of(texts);
  const auto instances = graph::compute_instances(net);
  const auto cuts = instance_articulation_routers(net, instances);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(net.routers()[cuts[0].router].hostname, "hub");
}

TEST(Articulation, IbgpMeshHasNoCuts) {
  // Three routers in an IBGP full mesh over a shared LAN.
  std::vector<std::string> texts;
  for (int i = 0; i < 3; ++i) {
    std::string text = "hostname b" + std::to_string(i) +
                       "\ninterface FastEthernet0/0\n ip address 10.0.0." +
                       std::to_string(i + 1) + " 255.255.255.0\n";
    text += "router bgp 65000\n";
    for (int j = 0; j < 3; ++j) {
      if (j != i) {
        text += " neighbor 10.0.0." + std::to_string(j + 1) +
                " remote-as 65000\n";
      }
    }
    texts.push_back(text);
  }
  const auto net = network_of(texts);
  const auto instances = graph::compute_instances(net);
  ASSERT_EQ(instances.instances.size(), 1u);
  EXPECT_TRUE(instance_articulation_routers(net, instances).empty());
}

TEST(SoleRedistribution, FindsSingletons) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       " redistribute ospf 1\n"});
  const auto graph = graph::InstanceGraph::build(net);
  const auto sole = sole_redistribution_routers(net, graph);
  ASSERT_EQ(sole.size(), 1u);
  EXPECT_EQ(sole[0], 0u);
}

TEST(SimulateFailure, ReachabilityUnderFailureScenario) {
  // The §3.1 question: "what destinations will be reachable from a
  // particular router under any given failure scenario". An OSPF island
  // learns an EIGRP island's routes through one redistribution router;
  // failing it removes those destinations from the survivors' RIBs.
  const auto net = network_of(
      {"hostname ospf-a\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n",
       "hostname bridge\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "interface Serial0/1 point-to-point\n"
       " ip address 10.1.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
       " redistribute eigrp 9\n"
       "router eigrp 9\n network 10.1.0.0 0.0.255.255\n",
       "hostname eigrp-c\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.2 255.255.255.252\n"
       "interface FastEthernet0/0\n"
       " ip address 10.1.5.1 255.255.255.0\n"
       "router eigrp 9\n"
       " network 10.1.0.0 0.0.255.255\n"});
  const auto instances = graph::compute_instances(net);
  const auto reach_before = ReachabilityAnalysis::run(net, instances);
  const auto dest = rd::test::addr("10.1.5.9");
  // Before: the OSPF instance holds the EIGRP LAN.
  const auto ospf_instance = instances.instance_of[0];  // ospf-a's process
  EXPECT_TRUE(reach_before.instance_has_route_to(ospf_instance, dest));

  // Fail the bridge and recompute.
  const auto after = without_routers(net, {1});
  const auto instances_after = graph::compute_instances(after);
  const auto reach_after = ReachabilityAnalysis::run(after, instances_after);
  // ospf-a survives as router 0 of the rebuilt network.
  const auto instance_after = instances_after.instance_of[0];
  EXPECT_FALSE(reach_after.instance_has_route_to(instance_after, dest));
}

TEST(SimulateFailure, Net5SixBorderFailureSeversCompartment) {
  // The paper's §5.1 question: the 445-router compartment is severed from
  // its BGP instance only if all 6 redundant borders fail.
  const auto net5 = synth::make_net5();
  const auto network = model::Network::build(synth::reparse(net5.configs));
  const auto baseline = graph::compute_instances(network);

  // Find the 6-router redundancy group.
  const auto graph = graph::InstanceGraph::build(network);
  std::vector<model::RouterId> six;
  for (const auto& entry : redistribution_redundancy(network, graph)) {
    if (entry.connecting_routers.size() == 6) {
      six = entry.connecting_routers;
      break;
    }
  }
  ASSERT_EQ(six.size(), 6u);

  // Failing five of the six leaves the pair connected...
  const std::vector<model::RouterId> five(six.begin(), six.end() - 1);
  const auto partial = simulate_router_failure(network, baseline, five);
  EXPECT_EQ(partial.severed_instance_pairs, 0u);
  // ...failing all six severs it.
  const auto total = simulate_router_failure(network, baseline, six);
  EXPECT_GE(total.severed_instance_pairs, 1u);
}

}  // namespace
}  // namespace rd::analysis
