#include <gtest/gtest.h>

#include "analysis/reachability.h"
#include "analysis/router_rib.h"
#include "graph/instances.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::pfx;

TEST(AdministrativeDistance, StandardRanking) {
  EXPECT_EQ(administrative_distance(RouteSource::kConnected), 0u);
  EXPECT_EQ(administrative_distance(RouteSource::kStatic), 1u);
  EXPECT_EQ(administrative_distance(RouteSource::kEbgp), 20u);
  EXPECT_EQ(administrative_distance(RouteSource::kEigrp), 90u);
  EXPECT_EQ(administrative_distance(RouteSource::kOspf), 110u);
  EXPECT_EQ(administrative_distance(RouteSource::kRip), 120u);
  EXPECT_EQ(administrative_distance(RouteSource::kIbgp), 200u);
}

TEST(AdministrativeDistance, Names) {
  EXPECT_EQ(to_string(RouteSource::kConnected), "connected");
  EXPECT_EQ(to_string(RouteSource::kIbgp), "ibgp");
}

RouterRibAnalysis analyze(const model::Network& network) {
  const auto instances = graph::compute_instances(network);
  const auto reach = ReachabilityAnalysis::run(network, instances);
  return RouterRibAnalysis::run(network, instances, reach);
}

TEST(RouterRib, ConnectedBeatsEverything) {
  // The router's own LAN is both connected and OSPF-originated; the RIB
  // must select the connected source (paper Figure 3 route selection).
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto analysis = analyze(net);
  ASSERT_EQ(analysis.rib(0).size(), 1u);
  EXPECT_EQ(analysis.rib(0)[0].source, RouteSource::kConnected);
  EXPECT_EQ(analysis.rib(0)[0].prefix, pfx("10.1.0.0/24"));
}

TEST(RouterRib, OspfRouteFromNeighborSelected) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n",
       "hostname b\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "interface FastEthernet0/0\n"
       " ip address 10.5.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"});
  const auto analysis = analyze(net);
  // Router a learns b's LAN via OSPF.
  EXPECT_TRUE(analysis.router_can_reach(0, addr("10.5.0.9")));
  bool found = false;
  for (const auto& route : analysis.rib(0)) {
    if (route.prefix == pfx("10.5.0.0/24")) {
      EXPECT_EQ(route.source, RouteSource::kOspf);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RouterRib, StaticBeatsIgp) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"
       "ip route 10.5.0.0 255.255.255.0 10.0.0.2\n",
       "hostname b\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "interface FastEthernet0/0\n"
       " ip address 10.5.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"});
  const auto analysis = analyze(net);
  for (const auto& route : analysis.rib(0)) {
    if (route.prefix == pfx("10.5.0.0/24")) {
      EXPECT_EQ(route.source, RouteSource::kStatic);
    }
  }
}

TEST(RouterRib, EigrpBeatsOspf) {
  // Both protocols offer the same prefix on one router; EIGRP (AD 90) wins
  // over OSPF (AD 110).
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.2.0.0 0.0.255.255 area 0\n"
       " redistribute eigrp 9\n"
       "router eigrp 9\n network 10.1.0.0 0.0.255.255\n"});
  const auto analysis = analyze(net);
  for (const auto& route : analysis.rib(0)) {
    if (route.prefix == pfx("10.1.0.0/24")) {
      // Connected wins actually — the interface is local. Check instead
      // that the RIB is consistent: connected for local subnets.
      EXPECT_EQ(route.source, RouteSource::kConnected);
    }
  }
}

TEST(RouterRib, ProcessLoadEqualsInstanceRoutes) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " network 10.2.0.0 0.0.255.255 area 0\n"});
  const auto instances = graph::compute_instances(net);
  const auto reach = ReachabilityAnalysis::run(net, instances);
  const auto analysis = RouterRibAnalysis::run(net, instances, reach);
  EXPECT_EQ(analysis.process_load(0), 2u);
}

TEST(RouterRib, ExternalRoutesFlag) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n neighbor 10.9.0.2 remote-as 701\n"});
  const auto analysis = analyze(net);
  const auto externals = analysis.routers_with_external_routes();
  ASSERT_EQ(externals.size(), 1u);  // the default route arrived unfiltered
  EXPECT_EQ(externals[0], 0u);
}

TEST(RouterRib, RibSizesVector) {
  const auto net = network_of({"hostname a\n", "hostname b\n"});
  const auto analysis = analyze(net);
  EXPECT_EQ(analysis.rib_sizes(), (std::vector<std::size_t>{0, 0}));
}

TEST(RouterRib, EbgpProcessClassifiedEbgp) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n"
       " network 10.9.0.0 mask 255.255.255.252\n"
       " neighbor 10.9.0.2 remote-as 701\n"});
  const auto analysis = analyze(net);
  bool saw_ebgp = false;
  for (const auto& route : analysis.rib(0)) {
    if (route.source == RouteSource::kEbgp) saw_ebgp = true;
  }
  EXPECT_TRUE(saw_ebgp);
}

}  // namespace
}  // namespace rd::analysis
