#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "config/lexer.h"
#include "config/parser.h"
#include "testutil.h"

namespace rd::config {
namespace {

std::vector<rd::config::Line> lex_lines(std::string_view text) {
  // Tests inspect lines only; keep the storage alive alongside them.
  static std::vector<std::unique_ptr<rd::config::Lexed>> keep;
  keep.push_back(std::make_unique<rd::config::Lexed>(rd::config::lex(text)));
  return keep.back()->lines;
}


using rd::test::kFigure2Config;
using rd::test::parse;

// --- lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesAndTracksIndent) {
  const auto lines = lex_lines("interface Ethernet0\n ip address 1.2.3.4 "
                         "255.255.255.0\n!\nrouter ospf 1\n");
  ASSERT_EQ(lines.size(), 3u);  // comment dropped
  EXPECT_EQ(lines[0].indent, 0);
  EXPECT_EQ(lines[0].tokens[0], "interface");
  EXPECT_EQ(lines[1].indent, 1);
  EXPECT_EQ(lines[1].tokens.size(), 4u);  // ip address <addr> <mask>
  EXPECT_EQ(lines[2].tokens[2], "1");
}

TEST(Lexer, DropsBlankAndCommentLines) {
  const auto lines = lex_lines("\n  \n! a comment\n   ! another\nend\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].raw, "end");
}

TEST(Lexer, TracksLineNumbers) {
  const auto lines = lex_lines("a\n!\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].number, 1u);
  EXPECT_EQ(lines[1].number, 3u);
}

TEST(Lexer, CountsCommandLines) {
  EXPECT_EQ(count_command_lines("a\n!\nb\n\nc\n"), 3u);
  EXPECT_EQ(count_command_lines(""), 0u);
}

// --- parser: the paper's Figure 2 configlet ---------------------------------

TEST(ParserFigure2, ParsesWholeConfiglet) {
  const auto result = parse_config(kFigure2Config, "R2");
  EXPECT_TRUE(result.diagnostics.empty());
  const auto& cfg = result.config;
  EXPECT_EQ(cfg.interfaces.size(), 3u);
  EXPECT_EQ(cfg.router_stanzas.size(), 3u);
  EXPECT_EQ(cfg.access_lists.size(), 1u);
  EXPECT_EQ(cfg.route_maps.size(), 1u);
  EXPECT_EQ(cfg.static_routes.size(), 1u);
}

TEST(ParserFigure2, InterfaceDetails) {
  const auto cfg = parse(kFigure2Config);
  const auto* eth = cfg.find_interface("Ethernet0");
  ASSERT_NE(eth, nullptr);
  ASSERT_TRUE(eth->address.has_value());
  EXPECT_EQ(eth->address->address.to_string(), "66.251.75.144");
  EXPECT_EQ(eth->address->mask.length(), 25);
  EXPECT_EQ(eth->access_group_in, "143");
  EXPECT_FALSE(eth->point_to_point);

  const auto* serial = cfg.find_interface("Serial1/0.5");
  ASSERT_NE(serial, nullptr);
  EXPECT_TRUE(serial->point_to_point);
  EXPECT_EQ(serial->address->mask.length(), 30);
  // The frame-relay line is preserved verbatim.
  ASSERT_EQ(serial->extra_lines.size(), 1u);
  EXPECT_EQ(serial->extra_lines[0], "frame-relay interface-dlci 28");

  EXPECT_EQ(cfg.find_interface("Hssi2/0")->hardware_type(), "Hssi");
}

TEST(ParserFigure2, OspfStanzas) {
  const auto cfg = parse(kFigure2Config);
  const auto& ospf64 = cfg.router_stanzas[0];
  EXPECT_EQ(ospf64.protocol, RoutingProtocol::kOspf);
  EXPECT_EQ(ospf64.process_id, 64u);
  ASSERT_EQ(ospf64.redistributes.size(), 2u);
  EXPECT_EQ(ospf64.redistributes[0].source, RedistributeSource::kConnected);
  EXPECT_EQ(ospf64.redistributes[0].metric_type, 1u);
  EXPECT_TRUE(ospf64.redistributes[0].subnets);
  EXPECT_EQ(ospf64.redistributes[1].source, RedistributeSource::kProtocol);
  EXPECT_EQ(ospf64.redistributes[1].protocol, RoutingProtocol::kBgp);
  EXPECT_EQ(ospf64.redistributes[1].process_id, 64780u);
  EXPECT_EQ(ospf64.redistributes[1].metric, 1u);
  ASSERT_EQ(ospf64.networks.size(), 1u);
  EXPECT_EQ(ospf64.networks[0].prefix().to_string(), "66.251.75.128/25");
  EXPECT_EQ(ospf64.networks[0].area, 0u);

  const auto& ospf128 = cfg.router_stanzas[1];
  EXPECT_EQ(ospf128.process_id, 128u);
  EXPECT_EQ(ospf128.networks[0].area, 11u);
  ASSERT_EQ(ospf128.distribute_lists.size(), 2u);
  EXPECT_EQ(ospf128.distribute_lists[0].acl, "44");
  EXPECT_TRUE(ospf128.distribute_lists[0].inbound);
  EXPECT_EQ(ospf128.distribute_lists[0].interface, "Serial1/0.5");
  EXPECT_FALSE(ospf128.distribute_lists[1].inbound);
}

TEST(ParserFigure2, BgpStanza) {
  const auto cfg = parse(kFigure2Config);
  const auto& bgp = cfg.router_stanzas[2];
  EXPECT_EQ(bgp.protocol, RoutingProtocol::kBgp);
  EXPECT_EQ(bgp.process_id, 64780u);
  ASSERT_EQ(bgp.redistributes.size(), 1u);
  EXPECT_EQ(bgp.redistributes[0].protocol, RoutingProtocol::kOspf);
  EXPECT_EQ(bgp.redistributes[0].process_id, 64u);
  EXPECT_EQ(bgp.redistributes[0].route_map, "8aTzlvBrbaW");
  ASSERT_EQ(bgp.neighbors.size(), 1u);
  const auto& nbr = bgp.neighbors[0];
  EXPECT_EQ(nbr.address.to_string(), "66.253.160.68");
  EXPECT_EQ(nbr.remote_as, 12762u);
  EXPECT_EQ(nbr.distribute_list_in, "4");
  EXPECT_EQ(nbr.distribute_list_out, "3");
}

TEST(ParserFigure2, AccessListAndRouteMap) {
  const auto cfg = parse(kFigure2Config);
  const auto* acl = cfg.find_access_list("143");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->rules.size(), 2u);
  EXPECT_EQ(acl->rules[0].action, FilterAction::kDeny);
  EXPECT_EQ(acl->rules[0].source.to_string(), "134.161.0.0/16");
  EXPECT_TRUE(acl->rules[1].any_source);
  EXPECT_EQ(acl->rules[1].action, FilterAction::kPermit);

  const auto* rm = cfg.find_route_map("8aTzlvBrbaW");
  ASSERT_NE(rm, nullptr);
  ASSERT_EQ(rm->clauses.size(), 2u);
  EXPECT_EQ(rm->clauses[0].action, FilterAction::kDeny);
  EXPECT_EQ(rm->clauses[0].sequence, 10u);
  EXPECT_EQ(rm->clauses[0].match_ip_address_acls,
            std::vector<std::string>{"4"});
  EXPECT_EQ(rm->clauses[1].action, FilterAction::kPermit);
  EXPECT_EQ(rm->clauses[1].sequence, 20u);
}

TEST(ParserFigure2, StaticRoute) {
  const auto cfg = parse(kFigure2Config);
  const auto& route = cfg.static_routes[0];
  EXPECT_EQ(route.destination.to_string(), "10.235.240.71");
  EXPECT_EQ(route.mask.length(), 16);
  EXPECT_EQ(std::get<ip::Ipv4Address>(route.next_hop).to_string(),
            "10.234.12.7");
  EXPECT_EQ(route.prefix().to_string(), "10.235.0.0/16");
}

// --- parser: general behaviour ----------------------------------------------

TEST(Parser, Hostname) {
  EXPECT_EQ(parse("hostname core-7\n").hostname, "core-7");
  // Falls back to the source-file name.
  EXPECT_EQ(config::parse_config("end\n", "config9").config.hostname,
            "config9");
}

TEST(Parser, SecondaryAddresses) {
  const auto cfg = parse(
      "interface Ethernet0\n"
      " ip address 10.0.0.1 255.255.255.0\n"
      " ip address 10.0.1.1 255.255.255.0 secondary\n");
  ASSERT_EQ(cfg.interfaces.size(), 1u);
  EXPECT_EQ(cfg.interfaces[0].address->address.to_string(), "10.0.0.1");
  ASSERT_EQ(cfg.interfaces[0].secondary_addresses.size(), 1u);
  EXPECT_EQ(cfg.interfaces[0].secondary_addresses[0].address.to_string(),
            "10.0.1.1");
}

TEST(Parser, InterfaceAttributes) {
  const auto cfg = parse(
      "interface Serial0/0\n"
      " description uplink to hub\n"
      " bandwidth 1544\n"
      " ip ospf cost 200\n"
      " shutdown\n");
  const auto& itf = cfg.interfaces[0];
  EXPECT_EQ(itf.description, "uplink to hub");
  EXPECT_EQ(itf.bandwidth_kbps, 1544u);
  EXPECT_EQ(itf.ospf_cost, 200u);
  EXPECT_TRUE(itf.shutdown);
  EXPECT_FALSE(itf.address.has_value());
}

TEST(Parser, BgpNetworkWithMask) {
  const auto cfg = parse(
      "router bgp 65000\n"
      " network 10.64.0.0 mask 255.192.0.0\n");
  ASSERT_EQ(cfg.router_stanzas[0].networks.size(), 1u);
  EXPECT_EQ(cfg.router_stanzas[0].networks[0].prefix().to_string(),
            "10.64.0.0/10");
}

TEST(Parser, ClassfulNetworkStatement) {
  const auto cfg = parse(
      "router rip\n"
      " network 10.0.0.0\n"
      " network 192.168.4.0\n");
  const auto& stanza = cfg.router_stanzas[0];
  EXPECT_EQ(stanza.protocol, RoutingProtocol::kRip);
  EXPECT_FALSE(stanza.process_id.has_value());
  EXPECT_EQ(stanza.networks[0].prefix().to_string(), "10.0.0.0/8");
  EXPECT_EQ(stanza.networks[1].prefix().to_string(), "192.168.4.0/24");
}

TEST(Parser, EigrpAndIgrp) {
  const auto cfg = parse("router eigrp 100\nrouter igrp 7\n");
  EXPECT_EQ(cfg.router_stanzas[0].protocol, RoutingProtocol::kEigrp);
  EXPECT_EQ(cfg.router_stanzas[1].protocol, RoutingProtocol::kIgrp);
}

TEST(Parser, PassiveInterfaces) {
  const auto cfg = parse(
      "router ospf 1\n"
      " passive-interface default\n"
      " passive-interface Ethernet0\n");
  EXPECT_TRUE(cfg.router_stanzas[0].passive_default);
  EXPECT_EQ(cfg.router_stanzas[0].passive_interfaces,
            std::vector<std::string>{"Ethernet0"});
}

TEST(Parser, NeighborAttributesMergeByAddress) {
  const auto cfg = parse(
      "router bgp 65000\n"
      " neighbor 10.0.0.2 remote-as 65001\n"
      " neighbor 10.0.0.2 update-source Loopback0\n"
      " neighbor 10.0.0.2 next-hop-self\n"
      " neighbor 10.0.0.2 route-reflector-client\n"
      " neighbor 10.0.0.2 route-map FOO in\n"
      " neighbor 10.0.0.6 remote-as 65002\n");
  const auto& stanza = cfg.router_stanzas[0];
  ASSERT_EQ(stanza.neighbors.size(), 2u);
  EXPECT_EQ(stanza.neighbors[0].remote_as, 65001u);
  EXPECT_EQ(stanza.neighbors[0].update_source, "Loopback0");
  EXPECT_TRUE(stanza.neighbors[0].next_hop_self);
  EXPECT_TRUE(stanza.neighbors[0].route_reflector_client);
  EXPECT_EQ(stanza.neighbors[0].route_map_in, "FOO");
  EXPECT_EQ(stanza.neighbors[1].remote_as, 65002u);
}

TEST(Parser, ExtendedAclRules) {
  const auto cfg = parse(
      "access-list 101 permit tcp any host 10.0.0.5 eq 80\n"
      "access-list 101 deny udp 10.1.0.0 0.0.255.255 any eq 1434\n"
      "access-list 101 deny pim any any\n"
      "access-list 101 permit ip any any\n");
  const auto* acl = cfg.find_access_list("101");
  ASSERT_NE(acl, nullptr);
  ASSERT_EQ(acl->rules.size(), 4u);
  EXPECT_TRUE(acl->rules[0].extended);
  EXPECT_EQ(acl->rules[0].protocol, "tcp");
  EXPECT_TRUE(acl->rules[0].any_source);
  EXPECT_FALSE(acl->rules[0].any_destination);
  EXPECT_EQ(acl->rules[0].destination.to_string(), "10.0.0.5/32");
  EXPECT_EQ(acl->rules[0].destination_port, 80u);
  EXPECT_EQ(acl->rules[1].source.to_string(), "10.1.0.0/16");
  EXPECT_EQ(acl->rules[1].destination_port, 1434u);
  EXPECT_EQ(acl->rules[2].protocol, "pim");
  EXPECT_TRUE(acl->rules[3].any_source);
  EXPECT_TRUE(acl->rules[3].any_destination);
}

TEST(Parser, StandardAclHostForm) {
  const auto cfg = parse("access-list 10 permit host 10.0.0.9\n");
  EXPECT_EQ(cfg.access_lists[0].rules[0].source.to_string(), "10.0.0.9/32");
}

TEST(Parser, StandardAclBareAddressIsHostMatch) {
  const auto cfg = parse("access-list 10 permit 10.0.0.9\n");
  EXPECT_EQ(cfg.access_lists[0].rules[0].source.to_string(), "10.0.0.9/32");
}

TEST(Parser, AclRemarksIgnored) {
  const auto cfg = parse(
      "access-list 10 remark management hosts follow\n"
      "access-list 10 permit any\n");
  ASSERT_EQ(cfg.access_lists.size(), 1u);
  EXPECT_EQ(cfg.access_lists[0].rules.size(), 1u);
}

TEST(Parser, RouteMapSetClauses) {
  const auto cfg = parse(
      "route-map RM permit 10\n"
      " match tag 7\n"
      " set tag 9\n"
      " set metric 120\n"
      " set local-preference 200\n");
  const auto& clause = cfg.route_maps[0].clauses[0];
  EXPECT_EQ(clause.match_tag, 7u);
  EXPECT_EQ(clause.set_tag, 9u);
  EXPECT_EQ(clause.set_metric, 120u);
  EXPECT_EQ(clause.set_local_preference, 200u);
}

TEST(Parser, StaticRouteWithInterfaceNextHop) {
  const auto cfg = parse("ip route 0.0.0.0 0.0.0.0 Serial0/0 250\n");
  const auto& route = cfg.static_routes[0];
  EXPECT_EQ(std::get<std::string>(route.next_hop), "Serial0/0");
  EXPECT_EQ(route.administrative_distance, 250u);
  EXPECT_EQ(route.prefix().to_string(), "0.0.0.0/0");
}

TEST(Parser, SkipsHousekeepingWithoutDiagnostics) {
  const auto result = parse_config(
      "version 12.2\n"
      "service timestamps log uptime\n"
      "no ip domain-lookup\n"
      "ip classless\n"
      "enable secret 5 xyz\n"
      "snmp-server community public RO\n"
      "line vty 0 4\n"
      " password 7 abc\n"
      " login\n"
      "end\n");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.config.line_count, 10u);
}

TEST(Parser, DiagnosesUnknownCommands) {
  const auto result = parse_config("frobnicate everything\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 1u);
  EXPECT_NE(result.diagnostics[0].message.find("frobnicate"),
            std::string::npos);
}

TEST(Parser, DiagnosesMalformedButContinues) {
  const auto result = parse_config(
      "interface Ethernet0\n"
      " ip address 999.0.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.0.0.255 area 0\n");
  EXPECT_FALSE(result.diagnostics.empty());
  EXPECT_EQ(result.config.interfaces.size(), 1u);
  EXPECT_EQ(result.config.router_stanzas.size(), 1u);
  EXPECT_EQ(result.config.router_stanzas[0].networks.size(), 1u);
}

TEST(Parser, OrphanSubCommandDiagnosed) {
  const auto result = parse_config(" ip address 10.0.0.1 255.255.255.0\n");
  EXPECT_EQ(result.diagnostics.size(), 1u);
  EXPECT_TRUE(result.config.interfaces.empty());
}

TEST(Parser, UnknownProtocolSkipsBlock) {
  const auto result = parse_config(
      "router banyan 3\n"
      " network 10.0.0.0\n"
      "router ospf 1\n");
  EXPECT_EQ(result.config.router_stanzas.size(), 1u);
  EXPECT_EQ(result.config.router_stanzas[0].protocol, RoutingProtocol::kOspf);
}

TEST(Parser, MultipleInstancesOfSameProtocol) {
  // The paper's R2 runs two OSPF processes; process ids are router-local.
  const auto cfg = parse("router ospf 64\nrouter ospf 128\n");
  ASSERT_EQ(cfg.router_stanzas.size(), 2u);
  EXPECT_EQ(cfg.router_stanzas[0].process_id, 64u);
  EXPECT_EQ(cfg.router_stanzas[1].process_id, 128u);
}

TEST(Parser, LineCountMatchesFigure4Definition) {
  // Comments and blanks are excluded, everything else counts.
  const auto result = parse_config("hostname x\n!\n\ninterface Ethernet0\n"
                                   " shutdown\n!\nend\n");
  EXPECT_EQ(result.config.line_count, 4u);
}

}  // namespace
}  // namespace rd::config
