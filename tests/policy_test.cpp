#include <gtest/gtest.h>

#include "model/policy.h"
#include "testutil.h"

namespace rd::model {
namespace {

using rd::test::addr;
using rd::test::parse;
using rd::test::pfx;

config::AccessList standard_acl() {
  return parse("access-list 10 deny 10.5.0.0 0.0.255.255\n"
               "access-list 10 permit 10.0.0.0 0.255.255.255\n")
      .access_lists[0];
}

TEST(AclRouteFilter, FirstMatchWins) {
  const auto acl = standard_acl();
  EXPECT_FALSE(acl_permits_route(acl, {pfx("10.5.1.0/24"), {}}));
  EXPECT_TRUE(acl_permits_route(acl, {pfx("10.6.0.0/16"), {}}));
}

TEST(AclRouteFilter, ImplicitDeny) {
  const auto acl = standard_acl();
  EXPECT_FALSE(acl_permits_route(acl, {pfx("192.168.0.0/16"), {}}));
}

TEST(AclRouteFilter, MatchesOnNetworkAddress) {
  // A route filter matches the route's network number, so a /8 whose
  // network address is inside the clause matches even if the route covers
  // more space.
  const auto acl = parse("access-list 10 permit 10.0.0.0 0.0.0.255\n")
                       .access_lists[0];
  EXPECT_TRUE(acl_permits_route(acl, {pfx("10.0.0.0/8"), {}}));
  EXPECT_FALSE(acl_permits_route(acl, {pfx("10.1.0.0/16"), {}}));
}

TEST(AclRouteFilter, PermitAny) {
  const auto acl = parse("access-list 10 permit any\n").access_lists[0];
  EXPECT_TRUE(acl_permits_route(acl, {pfx("0.0.0.0/0"), {}}));
  EXPECT_TRUE(acl_permits_route(acl, {pfx("203.0.113.0/24"), {}}));
}

TEST(AclPacketFilter, StandardMatchesSourceOnly) {
  const auto acl = standard_acl();
  EXPECT_FALSE(
      acl_permits_packet(acl, addr("10.5.0.9"), addr("192.168.1.1")));
  EXPECT_TRUE(acl_permits_packet(acl, addr("10.9.0.9"), addr("8.8.8.8")));
}

TEST(AclPacketFilter, ExtendedMatchesDestinationAndPort) {
  const auto acl = parse(
      "access-list 101 permit tcp any host 10.0.0.5 eq 80\n"
      "access-list 101 deny ip any any\n")
      .access_lists[0];
  EXPECT_TRUE(
      acl_permits_packet(acl, addr("1.1.1.1"), addr("10.0.0.5"), 80, "tcp"));
  EXPECT_FALSE(
      acl_permits_packet(acl, addr("1.1.1.1"), addr("10.0.0.5"), 22, "tcp"));
  EXPECT_FALSE(
      acl_permits_packet(acl, addr("1.1.1.1"), addr("10.0.0.6"), 80, "tcp"));
}

TEST(AclPacketFilter, PortlessPacketSkipsPortRule) {
  const auto acl = parse(
      "access-list 101 permit tcp any any eq 80\n"
      "access-list 101 permit icmp any any\n")
      .access_lists[0];
  // No port info: the port-specific clause cannot match; the icmp one does.
  EXPECT_TRUE(
      acl_permits_packet(acl, addr("1.1.1.1"), addr("2.2.2.2"), {}, "icmp"));
}

TEST(AclPacketFilter, UnspecifiedProtocolMatchesOnlyIpClauses) {
  // Regression: a packet with no protocol used to wildcard through
  // protocol-specific entries whenever the clause carried no port, so a
  // tcp-only ACL would pass it. It must match "ip" clauses only.
  const auto tcp_only = parse(
      "access-list 101 permit tcp any any\n")
      .access_lists[0];
  EXPECT_FALSE(acl_permits_packet(tcp_only, addr("1.1.1.1"), addr("2.2.2.2")));
  EXPECT_TRUE(acl_permits_packet(tcp_only, addr("1.1.1.1"), addr("2.2.2.2"),
                                 {}, "tcp"));
  const auto ip_any = parse(
      "access-list 102 deny tcp any any eq 1433\n"
      "access-list 102 permit ip any any\n")
      .access_lists[0];
  EXPECT_TRUE(acl_permits_packet(ip_any, addr("1.1.1.1"), addr("2.2.2.2")));
  // Unknown protocol names behave like the unspecified protocol.
  EXPECT_TRUE(acl_permits_packet(ip_any, addr("1.1.1.1"), addr("2.2.2.2"),
                                 {}, "eigrp"));
  EXPECT_FALSE(acl_permits_packet(tcp_only, addr("1.1.1.1"), addr("2.2.2.2"),
                                  {}, "eigrp"));
}

TEST(RouteMap, DenyClauseDrops) {
  const auto cfg = parse(
      "access-list 4 permit 10.5.0.0 0.0.255.255\n"
      "route-map RM deny 10\n"
      " match ip address 4\n"
      "route-map RM permit 20\n");
  const auto verdict = route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                          {pfx("10.5.0.0/16"), {}});
  EXPECT_FALSE(verdict.permitted);
}

TEST(RouteMap, FallThroughToPermit) {
  const auto cfg = parse(
      "access-list 4 permit 10.5.0.0 0.0.255.255\n"
      "route-map RM deny 10\n"
      " match ip address 4\n"
      "route-map RM permit 20\n");
  // The bare permit clause matches everything else.
  EXPECT_TRUE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                 {pfx("192.168.0.0/16"), {}})
                  .permitted);
}

TEST(RouteMap, ImplicitDenyAtEnd) {
  const auto cfg = parse(
      "access-list 4 permit 10.0.0.0 0.255.255.255\n"
      "route-map RM permit 10\n"
      " match ip address 4\n");
  EXPECT_FALSE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                  {pfx("192.168.0.0/16"), {}})
                   .permitted);
}

TEST(RouteMap, SetTagApplied) {
  const auto cfg = parse(
      "route-map RM permit 10\n"
      " set tag 6500\n");
  const auto verdict = route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                          {pfx("10.0.0.0/8"), {}});
  ASSERT_TRUE(verdict.permitted);
  EXPECT_EQ(verdict.route.tag, 6500u);
}

TEST(RouteMap, MatchTagFilters) {
  // net5's design: route selection keyed off tags carried by the IGP.
  const auto cfg = parse(
      "route-map RM permit 10\n"
      " match tag 7\n");
  EXPECT_TRUE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                 {pfx("10.0.0.0/8"), 7})
                  .permitted);
  EXPECT_FALSE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                  {pfx("10.0.0.0/8"), 8})
                   .permitted);
  EXPECT_FALSE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                  {pfx("10.0.0.0/8"), {}})
                   .permitted);
}

TEST(RouteMap, MultipleMatchAclsAreOrred) {
  const auto cfg = parse(
      "access-list 1 permit 10.0.0.0 0.255.255.255\n"
      "access-list 2 permit 192.168.0.0 0.0.255.255\n"
      "route-map RM permit 10\n"
      " match ip address 1 2\n");
  const auto* rm = cfg.find_route_map("RM");
  EXPECT_TRUE(route_map_evaluate(*rm, cfg, {pfx("10.1.0.0/16"), {}}).permitted);
  EXPECT_TRUE(
      route_map_evaluate(*rm, cfg, {pfx("192.168.5.0/24"), {}}).permitted);
  EXPECT_FALSE(
      route_map_evaluate(*rm, cfg, {pfx("172.16.0.0/12"), {}}).permitted);
}

TEST(RouteMap, UnresolvableAclMeansClauseNoMatch) {
  const auto cfg = parse(
      "route-map RM permit 10\n"
      " match ip address 4\n");
  // ACL 4 is undefined: the clause cannot match; implicit deny follows.
  EXPECT_FALSE(route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                  {pfx("10.0.0.0/8"), {}})
                   .permitted);
}

TEST(DistributeList, AbsentListPermits) {
  const auto cfg = parse("hostname a\n");
  EXPECT_TRUE(distribute_list_permits(cfg, "44", {pfx("10.0.0.0/8"), {}}));
}

TEST(DistributeList, ResolvedListFilters) {
  const auto cfg = parse("access-list 44 permit 10.0.0.0 0.255.255.255\n");
  EXPECT_TRUE(distribute_list_permits(cfg, "44", {pfx("10.0.0.0/8"), {}}));
  EXPECT_FALSE(
      distribute_list_permits(cfg, "44", {pfx("192.168.0.0/16"), {}}));
}

}  // namespace
}  // namespace rd::model
