// Robustness and cross-implementation property tests:
//   - the parser never crashes on mutated configuration text and always
//     produces a usable (possibly partial) model;
//   - the prefix trie agrees with a linear longest-prefix-match scan;
//   - anonymize -> parse -> analyze equals parse -> analyze across
//     archetypes (the paper's §4 requirement, swept);
//   - the pipeline tolerates truncated and interleaved files.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "anonymize/anonymizer.h"
#include "config/parser.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "ip/prefix_trie.h"
#include "model/network.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"
#include "util/rng.h"

namespace rd {
namespace {

// --- parser fuzz ------------------------------------------------------------------

std::string mutate(std::string text, util::Rng& rng) {
  if (text.empty()) return text;
  const auto kind = rng.below(4);
  const auto pos = rng.below(text.size());
  switch (kind) {
    case 0:  // flip a character
      text[pos] = static_cast<char>(32 + rng.below(95));
      break;
    case 1:  // delete a span
      text.erase(pos, rng.below(20) + 1);
      break;
    case 2:  // duplicate a span
      text.insert(pos, text.substr(pos, rng.below(30) + 1));
      break;
    default:  // truncate
      text.resize(pos);
      break;
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, NeverCrashesAndModelBuilds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  std::string text(test::kFigure2Config);
  for (int round = 0; round < 40; ++round) {
    text = mutate(std::move(text), rng);
    const auto result = config::parse_config(text, "fuzz");
    // Whatever came out must be consumable by the whole pipeline.
    const auto network = model::Network::build({result.config});
    const auto instances = graph::compute_instances(network);
    EXPECT_EQ(instances.instance_of.size(), network.processes().size());
    // And serializable: the writer must not crash on partial models.
    const auto text2 = config::write_config(result.config);
    EXPECT_FALSE(text2.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 12));

TEST(ParserRobustness, DeepIndentationAndLongLines) {
  std::string text = "interface Ethernet0\n";
  text += std::string(200, ' ') + "shutdown\n";
  text += "access-list 1 permit " + std::string(5000, '1') + "\n";
  const auto result = config::parse_config(text, "r");
  EXPECT_EQ(result.config.interfaces.size(), 1u);
}

TEST(ParserRobustness, BinaryGarbage) {
  std::string text;
  util::Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    text += static_cast<char>(rng.below(256));
  }
  const auto result = config::parse_config(text, "garbage");
  (void)result;  // must not crash; content is unspecified
}

TEST(ParserRobustness, EveryPrefixOfFigure2Parses) {
  const std::string text(test::kFigure2Config);
  for (std::size_t len = 0; len <= text.size(); len += 17) {
    const auto result = config::parse_config(text.substr(0, len), "prefix");
    const auto network = model::Network::build({result.config});
    (void)network;
  }
}

// --- trie vs linear LPM -------------------------------------------------------------

TEST(TrieProperty, AgreesWithLinearScan) {
  util::Rng rng(2024);
  ip::PrefixTrie<int> trie;
  std::vector<std::pair<ip::Prefix, int>> table;
  for (int i = 0; i < 500; ++i) {
    const ip::Prefix p(ip::Ipv4Address(static_cast<std::uint32_t>(rng.next())),
                       static_cast<int>(rng.below(33)));
    // Avoid duplicate prefixes with conflicting values.
    bool duplicate = false;
    for (const auto& [q, v] : table) duplicate = duplicate || q == p;
    if (duplicate) continue;
    trie.insert(p, i);
    table.emplace_back(p, i);
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const ip::Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    // Linear LPM.
    int best_len = -1;
    const int* best = nullptr;
    for (const auto& [p, v] : table) {
      if (p.contains(addr) && p.length() > best_len) {
        best_len = p.length();
        best = &v;
      }
    }
    const int* got = trie.longest_match(addr);
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, *best);
    }
  }
}

// --- anonymization equivalence across archetypes ------------------------------------

class AnonymizationSweep : public ::testing::TestWithParam<int> {};

TEST_P(AnonymizationSweep, AnalysisInvariant) {
  synth::SynthNetwork net;
  switch (GetParam()) {
    case 0: {
      synth::BackboneParams p;
      p.access_routers = 25;
      p.external_peers = 40;
      net = synth::make_backbone(p);
      break;
    }
    case 1: {
      synth::Tier2Params p;
      p.edge_routers = 20;
      net = synth::make_tier2_isp(p);
      break;
    }
    case 2: {
      synth::TextbookEnterpriseParams p;
      p.routers = 30;
      p.igp_instances = 2;
      p.border_routers = 2;
      net = synth::make_textbook_enterprise(p);
      break;
    }
    case 3:
      net = synth::make_net15();
      break;
    case 4: {
      synth::MergedHybridParams p;
      net = synth::make_merged_hybrid(p);
      break;
    }
    default:
      GTEST_FAIL();
  }
  anonymize::Anonymizer anonymizer(0xFEEDu + GetParam());
  std::vector<config::RouterConfig> plain;
  std::vector<config::RouterConfig> anon;
  for (const auto& cfg : net.configs) {
    const auto text = config::write_config(cfg);
    plain.push_back(config::parse_config(text, "p").config);
    anon.push_back(
        config::parse_config(anonymizer.anonymize(text), "a").config);
  }
  const auto net_plain = model::Network::build(std::move(plain));
  const auto net_anon = model::Network::build(std::move(anon));
  EXPECT_EQ(net_anon.links().size(), net_plain.links().size());
  EXPECT_EQ(net_anon.igp_adjacencies().size(),
            net_plain.igp_adjacencies().size());
  EXPECT_EQ(net_anon.bgp_sessions().size(), net_plain.bgp_sessions().size());
  std::size_t ext_plain = 0;
  std::size_t ext_anon = 0;
  for (const auto& link : net_plain.links()) ext_plain += link.external_facing;
  for (const auto& link : net_anon.links()) ext_anon += link.external_facing;
  EXPECT_EQ(ext_anon, ext_plain);
  EXPECT_EQ(graph::compute_instances(net_anon).instance_of,
            graph::compute_instances(net_plain).instance_of);
}

INSTANTIATE_TEST_SUITE_P(Archetypes, AnonymizationSweep,
                         ::testing::Range(0, 5));

// --- pipeline on odd inputs -----------------------------------------------------------

TEST(PipelineRobustness, EmptyNetwork) {
  const auto network = model::Network::build({});
  EXPECT_EQ(network.router_count(), 0u);
  const auto instances = graph::compute_instances(network);
  EXPECT_TRUE(instances.instances.empty());
  const auto ig = graph::InstanceGraph::build(network);
  EXPECT_TRUE(ig.edges.empty());
}

TEST(PipelineRobustness, DuplicateHostnames) {
  // Two files claiming the same hostname must still yield two routers.
  const auto network = test::network_of(
      {"hostname twin\nrouter ospf 1\n", "hostname twin\nrouter ospf 1\n"});
  EXPECT_EQ(network.router_count(), 2u);
  EXPECT_EQ(graph::compute_instances(network).instances.size(), 2u);
}

TEST(PipelineRobustness, SameAddressTwice) {
  // An address collision (config error / stale file) must not crash link
  // inference or session resolution.
  const auto network = test::network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n",
       "hostname b\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       "router bgp 65000\n neighbor 10.0.0.1 remote-as 65000\n"});
  EXPECT_EQ(network.links().size(), 1u);
  EXPECT_EQ(network.links()[0].interfaces.size(), 2u);
}

}  // namespace
}  // namespace rd
