#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "config/writer.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "synth/fleet.h"
#include "synth/plan.h"
#include "testutil.h"

namespace rd::synth {
namespace {

// --- AddressPlanner -----------------------------------------------------------

TEST(AddressPlanner, AllocatesSequentially) {
  AddressPlanner planner(rd::test::pfx("10.0.0.0/24"));
  EXPECT_EQ(planner.allocate(30).to_string(), "10.0.0.0/30");
  EXPECT_EQ(planner.allocate(30).to_string(), "10.0.0.4/30");
  EXPECT_EQ(planner.used(), 8u);
}

TEST(AddressPlanner, AlignsToBlockSize) {
  AddressPlanner planner(rd::test::pfx("10.0.0.0/16"));
  planner.allocate(30);                      // 10.0.0.0/30
  const auto big = planner.allocate(24);     // must skip to 10.0.1.0
  EXPECT_EQ(big.to_string(), "10.0.1.0/24");
}

TEST(AddressPlanner, ThrowsOnExhaustion) {
  AddressPlanner planner(rd::test::pfx("10.0.0.0/30"));
  planner.allocate(30);
  EXPECT_THROW(planner.allocate(30), std::length_error);
}

TEST(AddressPlanner, RejectsBadLength) {
  AddressPlanner planner(rd::test::pfx("10.0.0.0/24"));
  EXPECT_THROW(planner.allocate(16), std::length_error);  // wider than pool
}

// --- determinism ----------------------------------------------------------------

TEST(Synth, GeneratorsAreDeterministic) {
  ManagedEnterpriseParams p;
  p.seed = 9;
  p.regions = 2;
  p.spokes_per_region = 8;
  const auto a = make_managed_enterprise(p);
  const auto b = make_managed_enterprise(p);
  ASSERT_EQ(a.configs.size(), b.configs.size());
  for (std::size_t i = 0; i < a.configs.size(); ++i) {
    EXPECT_EQ(config::write_config(a.configs[i]),
              config::write_config(b.configs[i]));
  }
}

TEST(Synth, SeedChangesOutput) {
  ManagedEnterpriseParams p;
  p.regions = 2;
  p.spokes_per_region = 8;
  p.seed = 1;
  const auto a = make_managed_enterprise(p);
  p.seed = 2;
  const auto b = make_managed_enterprise(p);
  bool any_difference = a.configs.size() != b.configs.size();
  for (std::size_t i = 0; !any_difference && i < a.configs.size(); ++i) {
    any_difference = config::write_config(a.configs[i]) !=
                     config::write_config(b.configs[i]);
  }
  EXPECT_TRUE(any_difference);
}

// --- net5 calibration (paper §5.1 / §6.1) ------------------------------------------

class Net5Facts : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto net5 = make_net5();
    network_ = new model::Network(
        model::Network::build(reparse(net5.configs)));
    instances_ = new graph::InstanceSet(graph::compute_instances(*network_));
  }
  static void TearDownTestSuite() {
    delete instances_;
    delete network_;
    network_ = nullptr;
    instances_ = nullptr;
  }
  static model::Network* network_;
  static graph::InstanceSet* instances_;
};

model::Network* Net5Facts::network_ = nullptr;
graph::InstanceSet* Net5Facts::instances_ = nullptr;

TEST_F(Net5Facts, Has881Routers) {
  EXPECT_EQ(network_->router_count(), 881u);
}

TEST_F(Net5Facts, Has24RoutingInstances) {
  EXPECT_EQ(instances_->instances.size(), 24u);
}

TEST_F(Net5Facts, LargestInstanceHas445Routers) {
  std::size_t largest = 0;
  for (const auto& inst : instances_->instances) {
    largest = std::max(largest, inst.router_count());
  }
  EXPECT_EQ(largest, 445u);
}

TEST_F(Net5Facts, SmallestIgpInstanceIsOneRouter) {
  std::size_t smallest = 1u << 30;
  for (const auto& inst : instances_->instances) {
    if (config::is_conventional_igp(inst.protocol)) {
      smallest = std::min(smallest, inst.router_count());
    }
  }
  EXPECT_EQ(smallest, 1u);
}

TEST_F(Net5Facts, Has14InternalBgpAses) {
  std::set<std::uint32_t> ases;
  for (const auto& inst : instances_->instances) {
    if (inst.bgp_as) ases.insert(*inst.bgp_as);
  }
  EXPECT_EQ(ases.size(), 14u);
}

TEST_F(Net5Facts, Has16ExternalPeers) {
  std::size_t external = 0;
  for (const auto& session : network_->bgp_sessions()) {
    if (session.external()) ++external;
  }
  EXPECT_EQ(external, 16u);
}

TEST_F(Net5Facts, EigrpInstanceSizes445_64_32Present) {
  std::multiset<std::size_t> sizes;
  for (const auto& inst : instances_->instances) {
    if (inst.protocol == config::RoutingProtocol::kEigrp) {
      sizes.insert(inst.router_count());
    }
  }
  EXPECT_TRUE(sizes.contains(445));
  EXPECT_TRUE(sizes.contains(64));
  EXPECT_TRUE(sizes.contains(32));
}

TEST_F(Net5Facts, TaggedRedistributionPresent) {
  // The §6.1 design: routes are tagged as they enter the IGP.
  bool tagged = false;
  for (const auto& cfg : network_->routers()) {
    for (const auto& rm : cfg.route_maps) {
      for (const auto& clause : rm.clauses) {
        if (clause.set_tag) tagged = true;
      }
    }
  }
  EXPECT_TRUE(tagged);
}

TEST_F(Net5Facts, NoIbgpMeshAcrossCompartments) {
  // The design avoids a network-wide IBGP mesh: IBGP exists only inside
  // small per-region/border groups, far below a full mesh over BGP routers.
  std::set<model::RouterId> bgp_routers;
  std::size_t ibgp = 0;
  for (const auto& session : network_->bgp_sessions()) {
    if (!session.external() && !session.ebgp()) ++ibgp;
  }
  for (const auto& process : network_->processes()) {
    if (process.protocol == config::RoutingProtocol::kBgp) {
      bgp_routers.insert(process.router);
    }
  }
  const std::size_t n = bgp_routers.size();
  EXPECT_LT(ibgp, n * (n - 1) / 8);  // nowhere near a mesh
}

// --- fleet-level calibration (paper §4.2 / §7) ---------------------------------------

class FleetFacts : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fleet_ = new Fleet(generate_fleet(42)); }
  static void TearDownTestSuite() {
    delete fleet_;
    fleet_ = nullptr;
  }
  static Fleet* fleet_;
};

Fleet* FleetFacts::fleet_ = nullptr;

TEST_F(FleetFacts, Has31Networks) { EXPECT_EQ(fleet_->networks.size(), 31u); }

TEST_F(FleetFacts, TotalRoutersNearPaper) {
  // Paper: 8,035 configs. Calibration target: within 15%.
  const auto total = fleet_->total_routers();
  EXPECT_GT(total, 7000u);
  EXPECT_LT(total, 9300u);
}

TEST_F(FleetFacts, FourBackbonesSizedLikePaper) {
  std::vector<std::size_t> sizes;
  for (const auto& net : fleet_->networks) {
    if (net.archetype == "backbone") sizes.push_back(net.configs.size());
  }
  ASSERT_EQ(sizes.size(), 4u);
  for (const auto s : sizes) {
    EXPECT_GE(s, 400u);
    EXPECT_LE(s, 600u);
  }
}

TEST_F(FleetFacts, SevenTextbookEnterprises) {
  std::size_t count = 0;
  for (const auto& net : fleet_->networks) {
    if (net.archetype == "textbook-enterprise") {
      ++count;
      EXPECT_GE(net.configs.size(), 19u);
      EXPECT_LE(net.configs.size(), 101u);
    }
  }
  EXPECT_EQ(count, 7u);
}

TEST_F(FleetFacts, ThreeNetworksWithoutBgp) {
  std::size_t count = 0;
  for (const auto& net : fleet_->networks) {
    bool uses_bgp = false;
    for (const auto& cfg : net.configs) {
      for (const auto& stanza : cfg.router_stanzas) {
        if (stanza.protocol == config::RoutingProtocol::kBgp) {
          uses_bgp = true;
        }
      }
    }
    if (!uses_bgp) ++count;
  }
  EXPECT_EQ(count, 3u);  // paper §5.2: three networks do not use BGP
}

TEST_F(FleetFacts, ThreeNetworksWithoutPacketFilters) {
  std::size_t count = 0;
  for (const auto& net : fleet_->networks) {
    bool has_filters = false;
    for (const auto& cfg : net.configs) {
      for (const auto& itf : cfg.interfaces) {
        if (itf.access_group_in || itf.access_group_out) has_filters = true;
      }
    }
    if (!has_filters) ++count;
  }
  EXPECT_EQ(count, 3u);  // paper §5.3 drops three filterless networks
}

TEST_F(FleetFacts, UniqueNetworkNames) {
  std::set<std::string> names;
  for (const auto& net : fleet_->networks) {
    EXPECT_TRUE(names.insert(net.name).second) << net.name;
  }
}

TEST_F(FleetFacts, FleetIsDeterministic) {
  const auto again = generate_fleet(42);
  ASSERT_EQ(again.networks.size(), fleet_->networks.size());
  for (std::size_t i = 0; i < again.networks.size(); ++i) {
    ASSERT_EQ(again.networks[i].configs.size(),
              fleet_->networks[i].configs.size());
    EXPECT_EQ(config::write_config(again.networks[i].configs[0]),
              config::write_config(fleet_->networks[i].configs[0]));
  }
}

TEST(Repository, SizeDistributionIsHeavyTailed) {
  const auto sizes = repository_network_sizes(7, 2400);
  ASSERT_EQ(sizes.size(), 2400u);
  std::size_t below10 = 0;
  std::size_t above640 = 0;
  for (const auto s : sizes) {
    if (s < 10) ++below10;
    if (s > 640) ++above640;
  }
  // Figure 8's known-network curve: most networks are small, few are huge.
  EXPECT_GT(below10, 2400u * 45 / 100);
  EXPECT_GT(above640, 0u);
  EXPECT_LT(above640, 2400u / 20);
}

// --- emit / load (the paper's config1..configN layout) --------------------------------

TEST(Emit, WritesAndLoadsBack) {
  TextbookEnterpriseParams p;
  p.routers = 8;
  const auto net = make_textbook_enterprise(p);
  const auto dir = std::filesystem::temp_directory_path() /
                   "rd_emit_test_dir";
  std::filesystem::remove_all(dir);
  const auto paths = emit_network(net.configs, dir);
  EXPECT_EQ(paths.size(), net.configs.size());
  EXPECT_TRUE(std::filesystem::exists(dir / "config1"));

  const auto loaded = load_network(dir);
  ASSERT_EQ(loaded.size(), net.configs.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].hostname, net.configs[i].hostname);
    EXPECT_EQ(loaded[i].interfaces, net.configs[i].interfaces);
    EXPECT_EQ(loaded[i].router_stanzas, net.configs[i].router_stanzas);
  }
  std::filesystem::remove_all(dir);
}

TEST(Emit, LoadOrdersNumerically) {
  // config10 must sort after config9.
  const auto dir = std::filesystem::temp_directory_path() /
                   "rd_emit_order_dir";
  std::filesystem::remove_all(dir);
  std::vector<config::RouterConfig> configs(11);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].hostname = "r" + std::to_string(i);
  }
  emit_network(configs, dir);
  const auto loaded = load_network(dir);
  ASSERT_EQ(loaded.size(), 11u);
  EXPECT_EQ(loaded[9].hostname, "r9");
  EXPECT_EQ(loaded[10].hostname, "r10");
  std::filesystem::remove_all(dir);
}

TEST(Emit, ReparseKeepsCount) {
  NoBgpParams p;
  const auto net = make_no_bgp_enterprise(p);
  EXPECT_EQ(reparse(net.configs).size(), net.configs.size());
}

}  // namespace
}  // namespace rd::synth
