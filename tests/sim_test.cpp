// The convergence simulator's two contracts (DESIGN.md §15): determinism —
// one seed produces byte-identical event logs and reports at every thread
// count — and agreement — every scenario's converged RIBs (mid-failure and
// final) equal the static semi-naïve fixpoint on the same masked problem.
// Plus unit coverage for the event queue's total order and the timer
// wheel's lazy-revalidation protocol, which both contracts ride on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/instances.h"
#include "model/network.h"
#include "sim/event_queue.h"
#include "sim/sweep.h"
#include "synth/archetypes.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

// --- EventQueue --------------------------------------------------------------

TEST(SimEventQueue, OrdersByTimeThenInsertionSequence) {
  sim::EventQueue queue;
  const auto push_at = [&](sim::SimTime at, std::uint32_t instance) {
    sim::Event event;
    event.at_ms = at;
    event.instance = instance;
    queue.push(event);
  };
  // Three events at t=50 (tie broken by push order), interleaved with
  // earlier and later times pushed out of order.
  push_at(50, 1);
  push_at(10, 2);
  push_at(50, 3);
  push_at(5, 4);
  push_at(50, 5);
  push_at(100, 6);

  std::vector<std::uint32_t> order;
  while (!queue.empty()) order.push_back(queue.pop().instance);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{4, 2, 1, 3, 5, 6}));
}

TEST(SimEventQueue, SequenceIsStampedAtPushNotByCaller) {
  sim::EventQueue queue;
  sim::Event event;
  event.at_ms = 7;
  event.seq = 999;  // callers cannot pre-claim an ordering slot
  queue.push(event);
  queue.push(event);
  const auto first = queue.pop();
  const auto second = queue.pop();
  EXPECT_LT(first.seq, second.seq);
}

// --- TimerWheel --------------------------------------------------------------

TEST(SimTimerWheel, FiresWithinTheDeadlineGranule) {
  sim::TimerWheel wheel(200'000);
  wheel.insert(5'000, {1, 2, 3});
  std::vector<sim::SimTime> fired_at;
  sim::SimTime now = 0;
  while (!wheel.empty()) {
    now = wheel.next_granule_end();
    wheel.advance_one([&](const sim::TimerWheel::Node& node,
                          sim::SimTime granule_end) {
      EXPECT_EQ(node.instance, 1u);
      EXPECT_EQ(node.pos, 2u);
      fired_at.push_back(granule_end);
    });
  }
  ASSERT_EQ(fired_at.size(), 1u);
  // Quantized expiry: at or after the deadline, within one granule.
  EXPECT_GE(fired_at[0], 5'000u);
  EXPECT_LE(fired_at[0], 5'000u + 2 * sim::TimerWheel::kGranularityMs);
  EXPECT_EQ(now, fired_at[0]);
}

TEST(SimTimerWheel, RefreshedDeadlineReinsertsInsteadOfFiringEarly) {
  // The lazy-revalidation protocol: the simulator's fire callback sees the
  // entry's deadline moved past this granule and reposts instead of
  // expiring. Model that with an external "current deadline" the callback
  // consults — exactly what the simulator's route entries do.
  sim::TimerWheel wheel(200'000);
  sim::SimTime deadline = 3'000;
  wheel.insert(deadline, {1, 1, 1});
  deadline = 9'000;  // refresh: entry rewritten, wheel node left in place
  std::size_t fired = 0;
  sim::SimTime fired_at = 0;
  for (int step = 0; step < 64 && !wheel.empty(); ++step) {
    wheel.advance_one([&](const sim::TimerWheel::Node& node,
                          sim::SimTime granule_end) {
      if (deadline > granule_end) {
        wheel.insert(deadline, node);  // stale node: repost, don't expire
        return;
      }
      ++fired;
      fired_at = granule_end;
    });
  }
  EXPECT_EQ(fired, 1u);
  EXPECT_GE(fired_at, 9'000u);
}

TEST(SimTimerWheel, CatchUpSkipsIdleStretchesOnlyWhenEmpty) {
  sim::TimerWheel wheel(200'000);
  wheel.insert(1'000, {1, 1, 1});
  const auto before = wheel.next_granule_end();
  wheel.catch_up(500'000);  // non-empty: must not jump past pending nodes
  EXPECT_EQ(wheel.next_granule_end(), before);
  while (!wheel.empty()) {
    wheel.advance_one([](const sim::TimerWheel::Node&, sim::SimTime) {});
  }
  wheel.catch_up(500'000);
  EXPECT_GT(wheel.next_granule_end(), 500'000u);
}

// --- Scenario sweeps ---------------------------------------------------------

/// The CLI demo's network: a two-IGP-instance enterprise with a BGP
/// border — redistribution edges, articulation routers, and small enough
/// that a full sweep with event logs runs in milliseconds.
const model::Network& demo_network() {
  static const model::Network* network = [] {
    synth::TextbookEnterpriseParams params;
    params.routers = 24;
    params.border_routers = 2;
    params.igp_instances = 2;
    return new model::Network(
        model::Network::build(synth::make_textbook_enterprise(params).configs));
  }();
  return *network;
}

const graph::InstanceGraph& demo_graph() {
  static const graph::InstanceGraph* graph =
      new graph::InstanceGraph(graph::InstanceGraph::build(demo_network()));
  return *graph;
}

std::vector<sim::ScenarioResult> sweep(const sim::SweepOptions& options,
                                       std::size_t threads) {
  util::ThreadPool pool(threads);
  const auto scenarios =
      sim::flap_scenarios(demo_network(), demo_graph(), options.max_scenarios);
  return sim::sweep_scenarios(demo_network(), demo_graph().set, scenarios,
                              options, pool);
}

TEST(SimSweep, EventLogsAndReportAreByteIdenticalAcrossThreadCounts) {
  sim::SweepOptions options;
  options.record_log = true;

  const auto reference = sweep(options, 1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t threads : {2u, 8u}) {
    const auto results = sweep(options, threads);
    ASSERT_EQ(results.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].name, reference[i].name);
      EXPECT_EQ(results[i].log, reference[i].log)
          << results[i].name << " at " << threads << " threads";
      EXPECT_EQ(results[i].end_ms, reference[i].end_ms) << results[i].name;
      EXPECT_EQ(results[i].route_changes, reference[i].route_changes)
          << results[i].name;
    }
  }

  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);
  const auto report1 =
      sim::simulate_report(demo_network(), demo_graph(), options, pool1);
  const auto report8 =
      sim::simulate_report(demo_network(), demo_graph(), options, pool8);
  EXPECT_EQ(report1, report8);
}

TEST(SimSweep, EveryScenarioMatchesTheStaticFixpoint) {
  const auto results = sweep({}, 4);
  ASSERT_FALSE(results.empty());
  bool any_failure = false;
  for (const auto& result : results) {
    EXPECT_TRUE(result.quiesced) << result.name;
    EXPECT_TRUE(result.degraded_match) << result.name;
    EXPECT_TRUE(result.final_match) << result.name;
    EXPECT_EQ(result.mismatched_routes, 0u) << result.name;
    EXPECT_GT(result.final_route_count, 0u) << result.name;
    if (result.had_failure) {
      any_failure = true;
      // Masking a router invalidates its routes: a flap always moves state.
      EXPECT_GT(result.route_changes, 0u) << result.name;
    }
  }
  EXPECT_TRUE(any_failure) << "flap_scenarios found no failure to inject";
}

TEST(SimSweep, FlapsOpenAndCloseBlackholeWindows) {
  // A flapped articulation router takes routes down and recovery brings
  // them back: at least one (instance, route) loses and regains its valid
  // entry somewhere in the sweep — a closed blackhole window.
  const auto results = sweep({}, 2);
  std::size_t windows = 0;
  for (const auto& result : results) windows += result.blackhole_windows;
  EXPECT_GT(windows, 0u);
}

TEST(SimSweep, DifferentSeedsProduceDifferentEventTimings) {
  sim::SweepOptions a;
  a.record_log = true;
  a.seed = 1;
  sim::SweepOptions b = a;
  b.seed = 2;
  const auto ra = sweep(a, 2);
  const auto rb = sweep(b, 2);
  ASSERT_EQ(ra.size(), rb.size());
  // Jittered link delays and advertisement phases make identical logs
  // across seeds essentially impossible — and both seeds still converge to
  // the same fixpoint.
  bool any_difference = false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].log != rb[i].log) any_difference = true;
    EXPECT_TRUE(rb[i].final_match) << rb[i].name;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimSweep, UntilCapStopsTheRunEarly) {
  sim::SweepOptions options;
  options.until_ms = 60'000;  // before the t=240s failure injection
  options.cross_check = false;
  const auto results = sweep(options, 1);
  for (const auto& result : results) {
    EXPECT_LE(result.end_ms, 60'000u) << result.name;
  }
}

}  // namespace
}  // namespace rd
