// Differential harness for the incremental snapshot-series pipeline: the
// warm, cached path (analyze_snapshot_series) must be byte-identical to the
// cold cache-free serial reference (analyze_snapshot_series_serial) at every
// thread count, across series that add, remove, and modify routers. Cache
// accounting is checked at one thread, where scheduling is deterministic.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/evolution.h"
#include "config/writer.h"
#include "pipeline/parse_cache.h"
#include "pipeline/pipeline.h"
#include "pipeline/series.h"
#include "synth/archetypes.h"
#include "util/thread_pool.h"

namespace rd {
namespace {

std::vector<std::string> texts_of(const synth::SynthNetwork& net) {
  std::vector<std::string> texts;
  texts.reserve(net.configs.size());
  for (const auto& cfg : net.configs) {
    texts.push_back(config::write_config(cfg));
  }
  return texts;
}

/// A three-snapshot series with the churn kinds §8.2 cares about:
///   t0 -> t1: two routers modified (one static route each);
///   t1 -> t2: last router removed, one new router added, one modified.
std::vector<pipeline::SnapshotInput> managed_series(std::uint64_t seed) {
  synth::ManagedEnterpriseParams params;
  params.seed = seed;
  params.regions = 2;
  params.spokes_per_region = 6;
  params.ebgp_spoke_rate = 0.2;
  const auto base = texts_of(synth::make_managed_enterprise(params));

  auto t1 = base;
  t1[0] += "ip route 10.210.0.0 255.255.255.0 10.0.0.1\n";
  t1[t1.size() / 2] += "ip route 10.210.1.0 255.255.255.0 10.0.0.1\n";

  auto t2 = t1;
  t2.pop_back();
  t2[1] += "ip route 10.210.2.0 255.255.255.0 10.0.0.1\n";
  t2.push_back(
      "hostname lab-new-spoke\n"
      "interface Ethernet0\n"
      " ip address 10.210.3.1 255.255.255.0\n"
      "router rip\n"
      " network 10.0.0.0\n");

  return {{"t0", base}, {"t1", t1}, {"t2", t2}};
}

void expect_equal_series(const pipeline::SeriesReport& got,
                         const pipeline::SeriesReport& want,
                         const std::string& label) {
  ASSERT_EQ(got.snapshots.size(), want.snapshots.size()) << label;
  for (std::size_t i = 0; i < want.snapshots.size(); ++i) {
    const auto tag = label + " snapshot " + std::to_string(i);
    EXPECT_EQ(got.snapshots[i].signature, want.snapshots[i].signature) << tag;
    EXPECT_EQ(got.snapshots[i].report.json, want.snapshots[i].report.json)
        << tag;
    EXPECT_EQ(got.snapshots[i].report.name, want.snapshots[i].report.name)
        << tag;
    EXPECT_EQ(got.snapshots[i].report.instance_graph_dot,
              want.snapshots[i].report.instance_graph_dot)
        << tag;
  }
  ASSERT_EQ(got.diffs.size(), want.diffs.size()) << label;
  for (std::size_t i = 0; i < want.diffs.size(); ++i) {
    EXPECT_TRUE(got.diffs[i] == want.diffs[i])
        << label << " diff " << i;
  }
}

class SnapshotSeriesDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotSeriesDifferential, WarmPathMatchesColdAtEveryThreadCount) {
  const auto series = managed_series(GetParam());
  const auto cold = pipeline::analyze_snapshot_series_serial(series);

  ASSERT_EQ(cold.snapshots.size(), 3u);
  ASSERT_EQ(cold.diffs.size(), 2u);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    pipeline::ParseCache cache;
    pipeline::Options options;
    options.threads = threads;
    const auto warm = pipeline::analyze_snapshot_series(series, cache, options);
    expect_equal_series(warm, cold, "threads " + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotSeriesDifferential,
                         ::testing::Values(1u, 7u, 42u));

TEST(SnapshotSeries, DiffChainReportsTheChurn) {
  const auto series = managed_series(7);
  const auto report = pipeline::analyze_snapshot_series_serial(series);
  ASSERT_EQ(report.diffs.size(), 2u);

  // t0 -> t1: modifications only.
  EXPECT_TRUE(report.diffs[0].added_routers.empty());
  EXPECT_TRUE(report.diffs[0].removed_routers.empty());
  EXPECT_EQ(report.diffs[0].routers_with_static_route_changes, 2u);

  // t1 -> t2: one removed, one added, one modified.
  ASSERT_EQ(report.diffs[1].added_routers.size(), 1u);
  EXPECT_EQ(report.diffs[1].added_routers[0], "lab-new-spoke");
  EXPECT_EQ(report.diffs[1].removed_routers.size(), 1u);
  EXPECT_EQ(report.diffs[1].routers_with_static_route_changes, 1u);
}

TEST(SnapshotSeries, SeriesDiffsMatchDiffDesignChain) {
  const auto series = managed_series(42);
  const auto report = pipeline::analyze_snapshot_series_serial(series);

  std::vector<model::Network> snapshots;
  snapshots.reserve(series.size());
  for (const auto& snapshot : series) {
    snapshots.push_back(pipeline::build_network_serial(snapshot.texts));
  }
  const auto chain = analysis::diff_design_chain(snapshots);
  ASSERT_EQ(chain.size(), report.diffs.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_TRUE(chain[i] == report.diffs[i]) << "diff " << i;
  }
}

TEST(SnapshotSeries, DiffDesignChainDegenerateInputs) {
  EXPECT_TRUE(analysis::diff_design_chain({}).empty());
  std::vector<model::Network> one;
  one.push_back(pipeline::build_network_serial({"hostname solo\n"}));
  EXPECT_TRUE(analysis::diff_design_chain(one).empty());
}

TEST(SnapshotSeries, CacheAccountingAtOneThread) {
  const auto series = managed_series(7);
  const std::size_t n = series[0].texts.size();

  pipeline::ParseCache cache;
  pipeline::Options options;
  options.threads = 1;  // deterministic hit/miss split
  const auto report = pipeline::analyze_snapshot_series(series, cache, options);
  ASSERT_EQ(report.snapshots.size(), 3u);

  // t0: every router is new (synth texts are all distinct).
  EXPECT_EQ(report.snapshots[0].cache_misses, n);
  EXPECT_EQ(report.snapshots[0].cache_hits, 0u);

  // t1: only the two modified routers miss.
  EXPECT_EQ(report.snapshots[1].cache_misses, 2u);
  EXPECT_EQ(report.snapshots[1].cache_hits, n - 2);

  // t2: still n texts (one removed, one added); the modified router and the
  // brand-new router miss, the removed router simply isn't requested.
  EXPECT_EQ(report.snapshots[2].cache_misses, 2u);
  EXPECT_EQ(report.snapshots[2].cache_hits, n - 2);
}

TEST(SnapshotSeries, CachePersistsAcrossSeriesCalls) {
  const auto series = managed_series(1);
  pipeline::ParseCache cache;
  util::ThreadPool pool(1);

  const auto first = pipeline::analyze_snapshot_series(series, cache, pool);
  const auto second = pipeline::analyze_snapshot_series(series, cache, pool);

  // Every parse in the second pass is served from the cache.
  for (const auto& snapshot : second.snapshots) {
    EXPECT_EQ(snapshot.cache_misses, 0u);
    EXPECT_EQ(snapshot.cache_hits, snapshot.report.routers);
  }
  // And the output is still byte-identical.
  ASSERT_EQ(first.snapshots.size(), second.snapshots.size());
  for (std::size_t i = 0; i < first.snapshots.size(); ++i) {
    EXPECT_EQ(first.snapshots[i].signature, second.snapshots[i].signature);
    EXPECT_EQ(first.snapshots[i].report.json, second.snapshots[i].report.json);
  }
}

TEST(SnapshotSeries, EmptySeriesYieldsEmptyReport) {
  pipeline::ParseCache cache;
  const auto report = pipeline::analyze_snapshot_series({}, cache);
  EXPECT_TRUE(report.snapshots.empty());
  EXPECT_TRUE(report.diffs.empty());
}

}  // namespace
}  // namespace rd
