#include <gtest/gtest.h>

#include "analysis/policy_style.h"
#include "config/parser.h"
#include "model/policy.h"
#include "config/writer.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;
using rd::test::parse;

// --- as-path dialect ---------------------------------------------------------------

TEST(AsPathList, Parses) {
  const auto cfg = parse(
      "ip as-path access-list 7 permit ^$\n"
      "ip as-path access-list 7 deny _701_\n"
      "ip as-path access-list 9 permit ^65001(_.*)?$\n");
  const auto* list7 = cfg.find_as_path_list("7");
  ASSERT_NE(list7, nullptr);
  ASSERT_EQ(list7->entries.size(), 2u);
  EXPECT_EQ(list7->entries[0].regex, "^$");
  EXPECT_EQ(list7->entries[0].action, config::FilterAction::kPermit);
  EXPECT_EQ(list7->entries[1].regex, "_701_");
  EXPECT_EQ(list7->entries[1].action, config::FilterAction::kDeny);
  ASSERT_NE(cfg.find_as_path_list("9"), nullptr);
  EXPECT_EQ(cfg.find_as_path_list("42"), nullptr);
}

TEST(AsPathList, MatchClauseParses) {
  const auto cfg = parse(
      "route-map RM permit 10\n"
      " match as-path 7 9\n");
  const auto& clause = cfg.route_maps[0].clauses[0];
  EXPECT_EQ(clause.match_as_paths,
            (std::vector<std::string>{"7", "9"}));
}

TEST(AsPathList, RoundTrips) {
  const std::string text =
      "hostname r\n"
      "ip as-path access-list 7 permit ^$\n"
      "route-map RM permit 10\n"
      " match as-path 7\n";
  const auto cfg = parse(text, "r");
  const auto reparsed =
      config::parse_config(config::write_config(cfg), "r").config;
  EXPECT_EQ(reparsed.as_path_lists, cfg.as_path_lists);
  EXPECT_EQ(reparsed.route_maps, cfg.route_maps);
}

TEST(AsPathList, MatchIsPermissiveInRouteEvaluation) {
  // The static model carries no AS-path: an as-path match is an upper
  // bound (treated satisfied), so reachability is never under-reported.
  const auto cfg = parse(
      "ip as-path access-list 7 permit ^$\n"
      "route-map RM permit 10\n"
      " match as-path 7\n");
  EXPECT_TRUE(model::route_map_evaluate(*cfg.find_route_map("RM"), cfg,
                                        {rd::test::pfx("10.0.0.0/8"), {}})
                  .permitted);
}

// --- policy-style census (§6.1) ------------------------------------------------------

TEST(PolicyStyle, CountsByKind) {
  const auto net = network_of(
      {"hostname a\n"
       "access-list 4 permit 10.0.0.0 0.255.255.255\n"
       "ip as-path access-list 7 permit ^$\n"
       "route-map A permit 10\n"
       " match ip address 4\n"
       "route-map B permit 10\n"
       " match tag 9\n"
       "route-map C permit 10\n"
       " match as-path 7\n"
       "route-map D permit 10\n"
       "router bgp 65000\n"
       " neighbor 10.0.0.2 remote-as 701\n"
       " neighbor 10.0.0.2 distribute-list 4 in\n"});
  const auto style = analyze_policy_style(net);
  EXPECT_EQ(style.route_map_clauses, 4u);
  EXPECT_EQ(style.address_based_clauses, 1u);
  EXPECT_EQ(style.tag_based_clauses, 1u);
  EXPECT_EQ(style.attribute_based_clauses, 1u);
  EXPECT_EQ(style.unconditional_clauses, 1u);
  EXPECT_EQ(style.session_address_filters, 1u);
  EXPECT_EQ(style.as_path_list_entries, 1u);
  EXPECT_TRUE(style.needs_bgp_attributes());
}

TEST(PolicyStyle, BackboneNeedsAttributes) {
  synth::BackboneParams p;
  p.access_routers = 20;
  p.external_peers = 30;
  const auto net = model::Network::build(
      synth::reparse(synth::make_backbone(p).configs));
  const auto style = analyze_policy_style(net);
  EXPECT_TRUE(style.needs_bgp_attributes());
  EXPECT_GT(style.as_path_list_entries, 0u);
}

TEST(PolicyStyle, Net5IsPurelyAddressAndTagBased) {
  // The §6.1 claim: net5's structured address plan carries the policy;
  // no BGP attributes needed anywhere.
  const auto net5 = synth::make_net5();
  const auto net = model::Network::build(synth::reparse(net5.configs));
  const auto style = analyze_policy_style(net);
  EXPECT_FALSE(style.needs_bgp_attributes());
  EXPECT_TRUE(style.purely_address_and_tag_based());
  EXPECT_GT(style.tag_based_clauses, 0u);
  EXPECT_GT(style.address_based_clauses, 0u);
}

TEST(PolicyStyle, EmptyNetwork) {
  const auto net = network_of({"hostname a\n"});
  const auto style = analyze_policy_style(net);
  EXPECT_EQ(style.route_map_clauses, 0u);
  EXPECT_FALSE(style.needs_bgp_attributes());
  EXPECT_FALSE(style.purely_address_and_tag_based());
}

}  // namespace
}  // namespace rd::analysis
