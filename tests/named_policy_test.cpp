// Tests for the named-ACL and prefix-list surface of the configuration
// dialect, their policy semantics, and their integration with pathway
// policy location (§3.3) and reachability.

#include <gtest/gtest.h>

#include "analysis/reachability.h"
#include "config/parser.h"
#include "config/writer.h"
#include "graph/instances.h"
#include "graph/pathway.h"
#include "model/policy.h"
#include "testutil.h"

namespace rd {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::parse;
using rd::test::pfx;

// --- named ACLs -----------------------------------------------------------------

TEST(NamedAcl, ParsesStandardBlock) {
  const auto cfg = parse(
      "ip access-list standard MGMT\n"
      " permit 10.0.0.0 0.255.255.255\n"
      " deny any\n");
  const auto* acl = cfg.find_access_list("MGMT");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->named);
  EXPECT_FALSE(acl->extended_block);
  ASSERT_EQ(acl->rules.size(), 2u);
  EXPECT_EQ(acl->rules[0].source.to_string(), "10.0.0.0/8");
}

TEST(NamedAcl, ParsesExtendedBlock) {
  const auto cfg = parse(
      "ip access-list extended EDGE-IN\n"
      " remark block worms\n"
      " deny udp any any eq 1434\n"
      " permit tcp any host 10.0.0.5 eq 443\n"
      " permit ip any any\n");
  const auto* acl = cfg.find_access_list("EDGE-IN");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(acl->extended_block);
  ASSERT_EQ(acl->rules.size(), 3u);  // remark dropped
  EXPECT_EQ(acl->rules[0].destination_port, 1434u);
}

TEST(NamedAcl, RoundTrips) {
  const std::string text =
      "hostname r\n"
      "ip access-list extended EDGE-IN\n"
      " deny udp any any eq 1434\n"
      " permit ip any any\n"
      "ip access-list standard MGMT\n"
      " permit host 10.0.0.9\n";
  const auto cfg = parse(text, "r");
  const auto reparsed =
      config::parse_config(config::write_config(cfg), "r").config;
  EXPECT_EQ(reparsed.access_lists, cfg.access_lists);
}

TEST(NamedAcl, UsableAsPacketFilter) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group EDGE-IN in\n"
       "ip access-list extended EDGE-IN\n"
       " permit ip any any\n"});
  const auto& cfg = net.routers()[0];
  const auto* acl = cfg.find_access_list("EDGE-IN");
  ASSERT_NE(acl, nullptr);
  EXPECT_TRUE(
      model::acl_permits_packet(*acl, addr("1.1.1.1"), addr("2.2.2.2")));
}

TEST(NamedAcl, EmptyBlockStillRegisters) {
  const auto cfg = parse("ip access-list standard EMPTY\n");
  ASSERT_NE(cfg.find_access_list("EMPTY"), nullptr);
  EXPECT_TRUE(cfg.find_access_list("EMPTY")->rules.empty());
}

// --- prefix lists ------------------------------------------------------------------

TEST(PrefixList, ParsesEntries) {
  const auto cfg = parse(
      "ip prefix-list CUST seq 5 permit 171.10.0.0/16 le 24\n"
      "ip prefix-list CUST seq 10 deny 0.0.0.0/0\n"
      "ip prefix-list CUST description customer blocks\n");
  const auto* pl = cfg.find_prefix_list("CUST");
  ASSERT_NE(pl, nullptr);
  ASSERT_EQ(pl->entries.size(), 2u);
  EXPECT_EQ(pl->entries[0].sequence, 5u);
  EXPECT_EQ(pl->entries[0].prefix, pfx("171.10.0.0/16"));
  EXPECT_EQ(pl->entries[0].le, 24);
  EXPECT_FALSE(pl->entries[0].ge.has_value());
  EXPECT_EQ(pl->entries[1].action, config::FilterAction::kDeny);
}

TEST(PrefixList, RoundTrips) {
  const std::string text =
      "hostname r\n"
      "ip prefix-list CUST seq 5 permit 171.10.0.0/16 ge 18 le 24\n"
      "ip prefix-list CUST seq 10 permit 171.12.0.0/16\n";
  const auto cfg = parse(text, "r");
  const auto reparsed =
      config::parse_config(config::write_config(cfg), "r").config;
  EXPECT_EQ(reparsed.prefix_lists, cfg.prefix_lists);
}

TEST(PrefixList, ExactMatchWithoutBounds) {
  const auto cfg =
      parse("ip prefix-list P seq 5 permit 10.0.0.0/8\n");
  const auto* pl = cfg.find_prefix_list("P");
  EXPECT_TRUE(model::prefix_list_permits_route(*pl, {pfx("10.0.0.0/8"), {}}));
  EXPECT_FALSE(
      model::prefix_list_permits_route(*pl, {pfx("10.1.0.0/16"), {}}));
}

TEST(PrefixList, LeBoundAllowsMoreSpecifics) {
  const auto cfg =
      parse("ip prefix-list P seq 5 permit 10.0.0.0/8 le 24\n");
  const auto* pl = cfg.find_prefix_list("P");
  EXPECT_TRUE(model::prefix_list_permits_route(*pl, {pfx("10.0.0.0/8"), {}}));
  EXPECT_TRUE(
      model::prefix_list_permits_route(*pl, {pfx("10.1.0.0/16"), {}}));
  EXPECT_TRUE(
      model::prefix_list_permits_route(*pl, {pfx("10.1.2.0/24"), {}}));
  EXPECT_FALSE(
      model::prefix_list_permits_route(*pl, {pfx("10.1.2.0/30"), {}}));
}

TEST(PrefixList, GeBoundExcludesAggregate) {
  const auto cfg =
      parse("ip prefix-list P seq 5 permit 10.0.0.0/8 ge 16 le 24\n");
  const auto* pl = cfg.find_prefix_list("P");
  EXPECT_FALSE(model::prefix_list_permits_route(*pl, {pfx("10.0.0.0/8"), {}}));
  EXPECT_TRUE(model::prefix_list_permits_route(*pl, {pfx("10.1.0.0/16"), {}}));
  EXPECT_FALSE(
      model::prefix_list_permits_route(*pl, {pfx("10.1.2.0/30"), {}}));
}

TEST(PrefixList, FirstMatchWinsAndImplicitDeny) {
  const auto cfg = parse(
      "ip prefix-list P seq 5 deny 10.5.0.0/16 le 32\n"
      "ip prefix-list P seq 10 permit 10.0.0.0/8 le 32\n");
  const auto* pl = cfg.find_prefix_list("P");
  EXPECT_FALSE(
      model::prefix_list_permits_route(*pl, {pfx("10.5.1.0/24"), {}}));
  EXPECT_TRUE(
      model::prefix_list_permits_route(*pl, {pfx("10.6.0.0/16"), {}}));
  EXPECT_FALSE(
      model::prefix_list_permits_route(*pl, {pfx("192.168.0.0/16"), {}}));
}

TEST(PrefixList, NeighborApplication) {
  const auto cfg = parse(
      "router bgp 65000\n"
      " neighbor 10.0.0.2 remote-as 701\n"
      " neighbor 10.0.0.2 prefix-list CUST in\n"
      " neighbor 10.0.0.2 prefix-list MINE out\n");
  const auto& nbr = cfg.router_stanzas[0].neighbors[0];
  EXPECT_EQ(nbr.prefix_list_in, "CUST");
  EXPECT_EQ(nbr.prefix_list_out, "MINE");
}

TEST(PrefixList, RouteMapMatch) {
  const auto cfg = parse(
      "ip prefix-list P seq 5 permit 10.0.0.0/8 le 24\n"
      "route-map RM permit 10\n"
      " match ip address prefix-list P\n");
  const auto* rm = cfg.find_route_map("RM");
  ASSERT_EQ(rm->clauses[0].match_prefix_lists,
            std::vector<std::string>{"P"});
  EXPECT_TRUE(model::route_map_evaluate(*rm, cfg, {pfx("10.1.0.0/16"), {}})
                  .permitted);
  EXPECT_FALSE(
      model::route_map_evaluate(*rm, cfg, {pfx("192.168.0.0/16"), {}})
          .permitted);
}

TEST(PrefixList, FiltersExternalRoutesInReachability) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n"
       " neighbor 10.9.0.2 remote-as 701\n"
       " neighbor 10.9.0.2 prefix-list CUST in\n"
       "ip prefix-list CUST seq 5 permit 171.5.0.0/16 le 24\n"});
  const auto instances = graph::compute_instances(net);
  analysis::ReachabilityAnalysis::Options options;
  options.external_prefixes = {pfx("171.5.0.0/16"), pfx("8.8.0.0/16")};
  const auto reach =
      analysis::ReachabilityAnalysis::run(net, instances, options);
  EXPECT_TRUE(reach.instance_has_route_to(0, addr("171.5.1.1")));
  EXPECT_FALSE(reach.instance_has_route_to(0, addr("8.8.8.8")));
  EXPECT_FALSE(reach.instance_reaches_internet(0));  // default denied
}

// --- pathway policy location (§3.3) -------------------------------------------------

TEST(PathwayPolicies, LocatesRedistributionAndSessionPolicies) {
  const auto net = network_of(
      {"hostname border\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.1 255.255.255.252\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n"
       " network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001 route-map INJECT\n"
       "router bgp 65001\n"
       " neighbor 10.9.0.2 remote-as 65002\n"
       " neighbor 10.9.0.2 distribute-list 44 in\n"
       "route-map INJECT permit 10\n"
       "access-list 44 permit any\n",
       "hostname peer\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.2 255.255.255.252\n"
       "router bgp 65002\n"
       " neighbor 10.9.0.1 remote-as 65001\n"
       " neighbor 10.9.0.1 route-map TOWARD-65001 out\n"
       "route-map TOWARD-65001 permit 10\n",
       "hostname inner\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.2 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"});
  const auto ig = graph::InstanceGraph::build(net);
  // Pathway of the inner router: ospf <- bgp65001 <- bgp65002.
  std::uint32_t inner = 2;
  const auto pathway = graph::compute_pathway(net, ig, inner);
  const auto policies = graph::locate_pathway_policies(net, ig, pathway);

  bool found_inject = false;
  bool found_dl44 = false;
  bool found_rm_out = false;
  for (const auto& policy : policies) {
    if (policy.name == "INJECT") {
      found_inject = true;
      EXPECT_EQ(net.routers()[policy.router].hostname, "border");
      EXPECT_EQ(policy.kind,
                graph::PathwayPolicy::Kind::kRedistributionRouteMap);
    }
    if (policy.name == "44") {
      found_dl44 = true;
      EXPECT_TRUE(policy.inbound);
      EXPECT_EQ(policy.kind,
                graph::PathwayPolicy::Kind::kSessionDistributeList);
    }
    if (policy.name == "TOWARD-65001") {
      found_rm_out = true;
      EXPECT_FALSE(policy.inbound);
      EXPECT_EQ(net.routers()[policy.router].hostname, "peer");
    }
  }
  EXPECT_TRUE(found_inject);
  EXPECT_TRUE(found_dl44);
  EXPECT_TRUE(found_rm_out);
}

TEST(PathwayPolicies, EmptyWhenNoPolicies) {
  const auto net = network_of({"hostname a\nrouter ospf 1\n"});
  const auto ig = graph::InstanceGraph::build(net);
  const auto pathway = graph::compute_pathway(net, ig, 0);
  EXPECT_TRUE(graph::locate_pathway_policies(net, ig, pathway).empty());
}

}  // namespace
}  // namespace rd
