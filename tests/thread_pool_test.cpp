// Unit tests for rd::util::ThreadPool and the parallel_map / parallel_for
// primitives: result ordering, exception propagation, nested fan-out, the
// degenerate (zero-item, single-thread) cases, and RD_THREADS parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace rd::util {
namespace {

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  const auto out =
      parallel_map(pool, items, [](const int& v) { return v * v + 1; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i + 1)) << i;
  }
}

TEST(ThreadPool, ParallelMapOfStringsMatchesSerialLoop) {
  ThreadPool pool(4);
  std::vector<std::string> items;
  for (int i = 0; i < 257; ++i) items.push_back("item" + std::to_string(i));
  const auto fn = [](const std::string& s) { return s + "/mapped"; };
  const auto parallel = parallel_map(pool, items, fn);
  std::vector<std::string> serial;
  for (const auto& s : items) serial.push_back(fn(s));
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPool, ExceptionFromWorkerReachesCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("task 17 failed");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, LowestThrowingIndexWinsDeterministically) {
  ThreadPool pool(8);
  for (int round = 0; round < 10; ++round) {
    std::string message;
    try {
      parallel_for(pool, 100, [](std::size_t i) {
        if (i == 5 || i == 50 || i == 99) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      message = e.what();
    }
    EXPECT_EQ(message, "index 5") << "round " << round;
  }
}

TEST(ThreadPool, EveryIndexStillRunsWhenSomeThrow) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    parallel_for(pool, 50, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i % 7 == 0) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const auto out = parallel_map(pool, std::vector<int>{},
                                [](const int& v) { return v; });
  EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, SingleThreadPoolRunsSeriallyInIndexOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  // With concurrency 1 there are no background workers: the caller executes
  // every index itself, in order, so plain (unsynchronized) writes are safe.
  std::vector<std::size_t> order;
  parallel_for(pool, 20, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(pool, 6, [&](std::size_t) {
    parallel_for(pool, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 6 * 8);
}

TEST(ThreadPool, ManyMoreTasksThanThreadsAllRun) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 10'000, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10'000);
}

class RdThreadsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("RD_THREADS");
    if (prior != nullptr) saved_ = prior;
  }
  void TearDown() override {
    if (saved_) {
      setenv("RD_THREADS", saved_->c_str(), 1);
    } else {
      unsetenv("RD_THREADS");
    }
  }
  static std::size_t hardware_fallback() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

 private:
  std::optional<std::string> saved_;
};

TEST_F(RdThreadsEnv, ValidValueIsUsed) {
  setenv("RD_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 7u);
  setenv("RD_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1u);
  setenv("RD_THREADS", " 16 ", 1);  // surrounding whitespace tolerated
  EXPECT_EQ(ThreadPool::default_thread_count(), 16u);
}

TEST_F(RdThreadsEnv, BadValuesFallBackToHardwareConcurrency) {
  const auto fallback = hardware_fallback();
  for (const char* bad :
       {"", "0", "-3", "abc", "4x", "3.5", "99999999999999999999", "4096"}) {
    setenv("RD_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::default_thread_count(), fallback)
        << "RD_THREADS='" << bad << "'";
  }
}

TEST_F(RdThreadsEnv, UnsetFallsBackToHardwareConcurrency) {
  unsetenv("RD_THREADS");
  EXPECT_EQ(ThreadPool::default_thread_count(), hardware_fallback());
}

TEST_F(RdThreadsEnv, DefaultConstructedPoolHonorsEnv) {
  setenv("RD_THREADS", "3", 1);
  ThreadPool pool;
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace rd::util
