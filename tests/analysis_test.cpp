#include <gtest/gtest.h>

#include "analysis/archetype.h"
#include "analysis/census.h"
#include "analysis/filters.h"
#include "analysis/roles.h"
#include "analysis/vulnerability.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;

// --- roles (Table 1 semantics) ------------------------------------------------

TEST(Roles, InternalIgpInstanceIsIntra) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"});
  const auto counts = classify_roles(net, graph::compute_instances(net));
  const auto& [intra, inter] =
      counts.igp_instances.at(config::RoutingProtocol::kOspf);
  EXPECT_EQ(intra, 1u);
  EXPECT_EQ(inter, 0u);
  EXPECT_FALSE(counts.uses_bgp);
}

TEST(Roles, ExternallyAdjacentIgpInstanceIsInter) {
  // A half-empty /30 covered by OSPF: the IGP serves as an EGP (§5.2).
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.0.0.0 0.0.0.3 area 0\n"});
  const auto counts = classify_roles(net, graph::compute_instances(net));
  const auto& [intra, inter] =
      counts.igp_instances.at(config::RoutingProtocol::kOspf);
  EXPECT_EQ(intra, 0u);
  EXPECT_EQ(inter, 1u);
}

TEST(Roles, ExternalEbgpSessionIsInter) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65000\n neighbor 10.0.0.2 remote-as 701\n"});
  const auto counts = classify_roles(net, graph::compute_instances(net));
  EXPECT_EQ(counts.ebgp_inter_sessions, 1u);
  EXPECT_EQ(counts.ebgp_intra_sessions, 0u);
  EXPECT_TRUE(counts.uses_bgp);
}

TEST(Roles, InternalEbgpSessionIsIntraAndCountedOnce) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.2 remote-as 65002\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router bgp 65002\n neighbor 10.0.0.1 remote-as 65001\n"});
  const auto counts = classify_roles(net, graph::compute_instances(net));
  EXPECT_EQ(counts.ebgp_intra_sessions, 1u);
  EXPECT_EQ(counts.ebgp_inter_sessions, 0u);
}

TEST(Roles, IbgpCountedSeparately) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.1 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.2 remote-as 65001\n",
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router bgp 65001\n neighbor 10.0.0.1 remote-as 65001\n"});
  const auto counts = classify_roles(net, graph::compute_instances(net));
  EXPECT_EQ(counts.ibgp_sessions, 1u);
  EXPECT_EQ(counts.ebgp_intra_sessions, 0u);
}

TEST(Roles, AccumulationOperator) {
  RoleCounts a;
  a.igp_instances[config::RoutingProtocol::kOspf] = {3, 1};
  a.ebgp_inter_sessions = 5;
  RoleCounts b;
  b.igp_instances[config::RoutingProtocol::kOspf] = {2, 2};
  b.igp_instances[config::RoutingProtocol::kRip] = {1, 0};
  b.uses_bgp = true;
  a += b;
  EXPECT_EQ(a.igp_instances[config::RoutingProtocol::kOspf],
            (std::pair<std::size_t, std::size_t>{5, 3}));
  EXPECT_EQ(a.igp_instances[config::RoutingProtocol::kRip].first, 1u);
  EXPECT_EQ(a.ebgp_inter_sessions, 5u);
  EXPECT_TRUE(a.uses_bgp);
}

// --- filters (Figure 11 semantics) ----------------------------------------------

TEST(Filters, CountsAppliedRulesPerInterface) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 101 in\n"
       "interface FastEthernet0/1\n"
       " ip address 10.0.1.1 255.255.255.0\n"
       " ip access-group 101 out\n"
       "access-list 101 deny udp any any eq 1434\n"
       "access-list 101 permit ip any any\n"});
  const auto stats = gather_filter_stats(net);
  EXPECT_EQ(stats.defined_rules, 2u);
  EXPECT_EQ(stats.total_applied_rules, 4u);  // 2 rules x 2 applications
  EXPECT_EQ(stats.interfaces_with_filters, 2u);
  EXPECT_EQ(stats.internal_applied_rules, 4u);
  EXPECT_DOUBLE_EQ(stats.internal_fraction(), 1.0);
}

TEST(Filters, SplitsInternalVsExternal) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 7 in\n"
       "interface Serial0/0 point-to-point\n"  // half-empty /30: external
       " ip address 10.9.0.1 255.255.255.252\n"
       " ip access-group 7 in\n"
       "access-list 7 permit any\n"});
  const auto stats = gather_filter_stats(net);
  EXPECT_EQ(stats.internal_applied_rules, 1u);
  EXPECT_EQ(stats.external_applied_rules, 1u);
  EXPECT_DOUBLE_EQ(stats.internal_fraction(), 0.5);
}

TEST(Filters, NoFiltersNetwork) {
  const auto net = network_of({"hostname a\n"});
  const auto stats = gather_filter_stats(net);
  EXPECT_FALSE(stats.has_filters());
  EXPECT_DOUBLE_EQ(stats.internal_fraction(), 0.0);
}

TEST(Filters, LargestFilterTracked) {
  std::string text = "hostname a\n";
  for (int i = 0; i < 47; ++i) {
    text += "access-list 150 deny 10.5." + std::to_string(i) +
            ".0 0.0.0.255\n";
  }
  text += "access-list 151 permit any\n";
  const auto net = network_of({text});
  const auto stats = gather_filter_stats(net);
  EXPECT_EQ(stats.largest_filter_rules, 47u);  // the paper's 47-clause filter
  EXPECT_EQ(stats.largest_filter_id, "150");
}

TEST(Filters, InternalTargetsBreakdown) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 101 in\n"
       "access-list 101 deny pim any any\n"
       "access-list 101 deny udp any any eq 1434\n"
       "access-list 101 permit 10.0.0.0 0.255.255.255\n"});
  const auto targets = internal_filter_targets(net);
  EXPECT_EQ(targets.at("pim"), 1u);
  EXPECT_EQ(targets.at("udp"), 1u);
  EXPECT_EQ(targets.at("ip"), 1u);  // the standard clause
}

// --- census (Table 3) ------------------------------------------------------------

TEST(Census, CountsHardwareTypes) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Serial0/0\n"
       "interface Serial0/1\n"
       "interface FastEthernet0/0\n"
       "interface Hssi2/0\n"
       "interface BRI0\n"});
  const auto census = interface_census(net);
  EXPECT_EQ(census.at("Serial"), 2u);
  EXPECT_EQ(census.at("FastEthernet"), 1u);
  EXPECT_EQ(census.at("Hssi"), 1u);
  EXPECT_EQ(census.at("BRI"), 1u);
}

TEST(Census, MergeAcrossNetworks) {
  const auto merged = merge_census({{{"Serial", 2}, {"ATM", 1}},
                                    {{"Serial", 3}, {"POS", 4}}});
  EXPECT_EQ(merged.at("Serial"), 5u);
  EXPECT_EQ(merged.at("ATM"), 1u);
  EXPECT_EQ(merged.at("POS"), 4u);
}

TEST(Census, UnnumberedCount) {
  const auto net = network_of(
      {"hostname a\ninterface BRI0\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"});
  EXPECT_EQ(unnumbered_interface_count(net), 1u);
}

// --- archetype classification (§7.1) ----------------------------------------------

TEST(Archetype, ClassifiesSynthBackbone) {
  synth::BackboneParams p;
  p.access_routers = 40;
  p.external_peers = 60;
  const auto net = model::Network::build(
      synth::reparse(synth::make_backbone(p).configs));
  const auto instances = graph::compute_instances(net);
  const auto result = classify_design(net, instances);
  EXPECT_EQ(result.archetype, DesignArchetype::kBackbone);
  EXPECT_FALSE(result.features.bgp_redistributed_into_igp);
  EXPECT_GE(result.features.external_ebgp_sessions, 8u);
}

TEST(Archetype, ClassifiesSynthTextbookEnterprise) {
  synth::TextbookEnterpriseParams p;
  p.routers = 30;
  const auto net = model::Network::build(
      synth::reparse(synth::make_textbook_enterprise(p).configs));
  const auto result = classify_design(net, graph::compute_instances(net));
  EXPECT_EQ(result.archetype, DesignArchetype::kTextbookEnterprise);
  EXPECT_TRUE(result.features.bgp_redistributed_into_igp);
  EXPECT_LE(result.features.bgp_router_count, 2u);
}

TEST(Archetype, Tier2IsUnclassifiableWithStagingInstances) {
  synth::Tier2Params p;
  p.edge_routers = 30;
  const auto net = model::Network::build(
      synth::reparse(synth::make_tier2_isp(p).configs));
  const auto result = classify_design(net, graph::compute_instances(net));
  EXPECT_EQ(result.archetype, DesignArchetype::kUnclassifiable);
  EXPECT_GE(result.features.staging_igp_instances, 10u);
}

TEST(Archetype, NoBgpIsUnclassifiable) {
  synth::NoBgpParams p;
  const auto net = model::Network::build(
      synth::reparse(synth::make_no_bgp_enterprise(p).configs));
  const auto result = classify_design(net, graph::compute_instances(net));
  EXPECT_EQ(result.archetype, DesignArchetype::kUnclassifiable);
  EXPECT_FALSE(result.features.uses_bgp);
}

TEST(Archetype, MergedHybridHasInternalEbgp) {
  synth::MergedHybridParams p;
  const auto net = model::Network::build(
      synth::reparse(synth::make_merged_hybrid(p).configs));
  const auto result = classify_design(net, graph::compute_instances(net));
  EXPECT_EQ(result.archetype, DesignArchetype::kUnclassifiable);
  EXPECT_GE(result.features.internal_ebgp_sessions, 1u);
  EXPECT_EQ(result.features.internal_as_count, 2u);
  EXPECT_TRUE(result.features.bgp_redistributed_into_igp);
}

TEST(Archetype, ToString) {
  EXPECT_EQ(to_string(DesignArchetype::kBackbone), "backbone");
  EXPECT_EQ(to_string(DesignArchetype::kTextbookEnterprise),
            "textbook-enterprise");
  EXPECT_EQ(to_string(DesignArchetype::kUnclassifiable), "unclassifiable");
}

// --- vulnerability assessment (§8.1) -----------------------------------------------

TEST(Vulnerability, RedundancyGroupsOfNet5Borders) {
  const auto net5 = synth::make_net5();
  const auto net = model::Network::build(synth::reparse(net5.configs));
  const auto graph = graph::InstanceGraph::build(net);
  const auto redundancy = redistribution_redundancy(net, graph);
  // The 445-router region reaches its BGP instance through 6 redundant
  // redistribution routers (the paper's §5.1 observation).
  bool found_six = false;
  for (const auto& entry : redundancy) {
    if (entry.connecting_routers.size() == 6) found_six = true;
  }
  EXPECT_TRUE(found_six);
}

TEST(Vulnerability, SinglePointOfFailureFlagged) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.1.0.1 255.255.255.0\n"
       "router ospf 1\n network 10.0.0.0 0.0.255.255 area 0\n"
       "router eigrp 9\n network 10.1.0.0 0.0.255.255\n"
       " redistribute ospf 1\n"});
  const auto graph = graph::InstanceGraph::build(net);
  const auto redundancy = redistribution_redundancy(net, graph);
  ASSERT_EQ(redundancy.size(), 1u);
  EXPECT_TRUE(redundancy[0].single_point_of_failure());
}

TEST(Vulnerability, UnfilteredExternalBgpSessionFlagged) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router bgp 65000\n neighbor 10.9.0.2 remote-as 701\n"});
  const auto findings = find_unfiltered_external_connections(net);
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(findings[0].missing_route_filter);
  EXPECT_TRUE(findings[0].missing_packet_filter);
}

TEST(Vulnerability, FilteredExternalSessionNotFlagged) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       " ip access-group 120 in\n"
       "router bgp 65000\n"
       " neighbor 10.9.0.2 remote-as 701\n"
       " neighbor 10.9.0.2 distribute-list 44 in\n"
       "access-list 120 permit ip any any\n"
       "access-list 44 permit any\n"});
  EXPECT_TRUE(find_unfiltered_external_connections(net).empty());
}

TEST(Vulnerability, BackdoorCandidatesFound) {
  // Two OSPF islands, each with its own external BGP exit, never exchanging
  // routes internally: the §8.2 backdoor scenario (net15 is exactly this —
  // but there the policies close the backdoor too).
  const auto net = network_of(
      {"hostname L\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n",
       "hostname R\n"
       "interface FastEthernet0/0\n ip address 10.2.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.5 255.255.255.252\n"
       "router ospf 1\n network 10.2.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65002\n"
       "router bgp 65002\n neighbor 10.9.0.6 remote-as 702\n"});
  const auto graph = graph::InstanceGraph::build(net);
  const auto backdoors = detect_backdoor_candidates(net, graph);
  EXPECT_EQ(backdoors.groups, 2u);
  EXPECT_EQ(backdoors.group_representatives.size(), 2u);
}

TEST(Vulnerability, NoBackdoorWhenInternallyConnected) {
  // Same two islands glued by internal redistribution: one group.
  const auto net = network_of(
      {"hostname L\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface FastEthernet0/1\n ip address 10.2.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute eigrp 9\n"
       " redistribute bgp 65001\n"
       "router eigrp 9\n network 10.2.0.0 0.0.255.255\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n"});
  const auto graph = graph::InstanceGraph::build(net);
  const auto backdoors = detect_backdoor_candidates(net, graph);
  EXPECT_LE(backdoors.groups, 1u);
  EXPECT_TRUE(backdoors.group_representatives.empty());
}

TEST(Vulnerability, Net15IsABackdoorCandidate) {
  // net15's two sites share nothing internally yet both exit to public
  // ASs — the textbook §8.2 candidate (its policies then close the door,
  // which only dynamic data could confirm, as the paper notes).
  const auto net15 = synth::make_net15();
  const auto net = model::Network::build(synth::reparse(net15.configs));
  const auto graph = graph::InstanceGraph::build(net);
  const auto backdoors = detect_backdoor_candidates(net, graph);
  EXPECT_EQ(backdoors.groups, 2u);
}

TEST(Vulnerability, SharedStaticDestinations) {
  const auto net = network_of(
      {"hostname a\nip route 171.5.0.0 255.255.0.0 10.0.0.9\n",
       "hostname b\nip route 171.5.0.0 255.255.0.0 10.0.1.9\n",
       "hostname c\nip route 171.6.0.0 255.255.0.0 10.0.2.9\n"});
  const auto shared = shared_static_destinations(net);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0].destination.to_string(), "171.5.0.0/16");
  EXPECT_EQ(shared[0].routers.size(), 2u);
}

}  // namespace
}  // namespace rd::analysis
