#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/egress.h"
#include "analysis/lint.h"
#include "graph/instances.h"
#include "synth/archetypes.h"
#include "synth/emit.h"
#include "testutil.h"

namespace rd::analysis {
namespace {

using rd::test::network_of;
using rd::test::pfx;

bool has_finding(const std::vector<LintFinding>& findings, LintKind kind,
                 std::string_view subject = {}) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const LintFinding& f) {
                       return f.kind == kind &&
                              (subject.empty() || f.subject == subject);
                     });
}

// --- lint ------------------------------------------------------------------------

TEST(Lint, CleanConfigNoFindings) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 101 in\n"
       "access-list 101 deny udp any any eq 1434\n"
       "access-list 101 permit ip any any\n"});
  EXPECT_TRUE(lint_network(net).empty());
}

TEST(Lint, UnusedAccessList) {
  const auto net = network_of(
      {"hostname a\naccess-list 10 permit any\n"});
  const auto findings = lint_network(net);
  EXPECT_TRUE(has_finding(findings, LintKind::kUnusedAccessList, "10"));
}

TEST(Lint, UnusedRouteMap) {
  const auto net = network_of({"hostname a\nroute-map ORPHAN permit 10\n"});
  EXPECT_TRUE(has_finding(lint_network(net), LintKind::kUnusedRouteMap,
                          "ORPHAN"));
}

TEST(Lint, UndefinedReferences) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 120 in\n"
       "router ospf 1\n"
       " network 10.0.0.0 0.255.255.255 area 0\n"
       " redistribute connected route-map MISSING\n"
       "router bgp 65000\n"
       " neighbor 10.0.0.9 remote-as 701\n"
       " neighbor 10.0.0.9 prefix-list NOPL in\n"});
  const auto findings = lint_network(net);
  EXPECT_TRUE(
      has_finding(findings, LintKind::kUndefinedAclReference, "120"));
  EXPECT_TRUE(
      has_finding(findings, LintKind::kUndefinedRouteMapRef, "MISSING"));
  EXPECT_TRUE(
      has_finding(findings, LintKind::kUndefinedPrefixListRef, "NOPL"));
}

TEST(Lint, DuplicateClause) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 10 in\n"
       "access-list 10 permit 10.1.0.0 0.0.255.255\n"
       "access-list 10 permit 10.1.0.0 0.0.255.255\n"});
  EXPECT_TRUE(
      has_finding(lint_network(net), LintKind::kDuplicateAclClause, "10"));
}

TEST(Lint, ShadowedClause) {
  const auto net = network_of(
      {"hostname a\n"
       "interface FastEthernet0/0\n ip address 10.0.0.1 255.255.255.0\n"
       " ip access-group 10 in\n"
       "access-list 10 deny 10.0.0.0 0.255.255.255\n"
       "access-list 10 permit 10.5.0.0 0.0.255.255\n"  // inside 10/8: dead
       "access-list 10 permit any\n"});
  EXPECT_TRUE(
      has_finding(lint_network(net), LintKind::kShadowedAclClause, "10"));
}

TEST(Lint, MultiPolicyFilterFlagged) {
  // A 47-clause filter mixing tcp/udp/pim and address clauses — the
  // paper's §5.3 example.
  std::string text =
      "hostname a\ninterface FastEthernet0/0\n"
      " ip address 10.0.0.1 255.255.255.0\n ip access-group 150 in\n";
  for (int i = 0; i < 15; ++i) {
    text += "access-list 150 deny udp any any eq " +
            std::to_string(1000 + i) + "\n";
    text += "access-list 150 deny tcp any any eq " +
            std::to_string(2000 + i) + "\n";
    text += "access-list 150 deny 10.5." + std::to_string(i) +
            ".0 0.0.0.255\n";
  }
  text += "access-list 150 deny pim any any\n";
  text += "access-list 150 permit ip any any\n";
  const auto net = network_of({text});
  const auto findings = lint_network(net);
  EXPECT_TRUE(
      has_finding(findings, LintKind::kMultiPolicyFilter, "150"));
}

TEST(Lint, NoncanonicalNetworkStatement) {
  // The OSPF network statement covers 10.1.2.0/24 but is written with host
  // bits set — Prefix's silent canonicalization used to hide this entirely.
  const auto net = network_of(
      {"hostname a\n"
       "interface Ethernet0\n"
       " ip address 10.1.2.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.2.5 0.0.0.255 area 0\n"});
  const auto findings = lint_network(net);
  EXPECT_TRUE(
      has_finding(findings, LintKind::kNoncanonicalNetwork, "10.1.2.5/24"));
}

TEST(Lint, CanonicalNetworkStatementNotFlagged) {
  const auto net = network_of(
      {"hostname a\n"
       "interface Ethernet0\n"
       " ip address 10.1.2.1 255.255.255.0\n"
       "router ospf 1\n"
       " network 10.1.2.0 0.0.0.255 area 0\n"});
  EXPECT_FALSE(
      has_finding(lint_network(net), LintKind::kNoncanonicalNetwork));
}

TEST(Lint, RedundantStaticRoute) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.1.0.1 255.255.255.0\n"
       "ip route 10.1.0.0 255.255.255.0 10.1.0.254\n"});
  EXPECT_TRUE(has_finding(lint_network(net),
                          LintKind::kRedundantStaticRoute, "10.1.0.0/24"));
}

TEST(Lint, KindNames) {
  EXPECT_EQ(to_string(LintKind::kMultiPolicyFilter), "multi-policy-filter");
  EXPECT_EQ(to_string(LintKind::kRedundantStaticRoute),
            "redundant-static-route");
  EXPECT_EQ(to_string(LintKind::kNoncanonicalNetwork),
            "noncanonical-network-statement");
}

// --- egress ---------------------------------------------------------------------

TEST(Egress, TwoEgressPointsAttributedCorrectly) {
  // Left OSPF island fed by border L (external session 0); right OSPF
  // island fed by border R (external session 1). Routers in each island
  // can only use their own egress.
  const auto net = network_of(
      {"hostname L\n"
       "interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n",
       "hostname R\n"
       "interface FastEthernet0/0\n ip address 10.2.0.1 255.255.255.0\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.5 255.255.255.252\n"
       "router ospf 1\n network 10.2.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65002\n"
       "router bgp 65002\n neighbor 10.9.0.6 remote-as 702\n"});
  const auto instances = graph::compute_instances(net);
  const auto egress = EgressAnalysis::run(net, instances);
  ASSERT_EQ(egress.points().size(), 2u);

  const auto left = egress.router_egress(net, instances, 0);
  const auto right = egress.router_egress(net, instances, 1);
  ASSERT_EQ(left.size(), 1u);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_NE(left[0], right[0]);
  EXPECT_EQ(egress.points()[left[0]].router, 0u);
  EXPECT_EQ(egress.points()[right[0]].router, 1u);
}

TEST(Egress, SharedCoreSeesBothEgresses) {
  // One OSPF instance with two borders: every router can use both.
  const auto net = network_of(
      {"hostname L\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.1.0.1 255.255.255.252\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n",
       "hostname mid\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.2 255.255.255.252\n"
       "interface Serial0/1 point-to-point\n"
       " ip address 10.1.0.5 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n",
       "hostname R\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.6 255.255.255.252\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.9.0.5 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65002\n"
       "router bgp 65002\n neighbor 10.9.0.6 remote-as 702\n"});
  const auto instances = graph::compute_instances(net);
  const auto egress = EgressAnalysis::run(net, instances);
  ASSERT_EQ(egress.points().size(), 2u);
  const auto mid = egress.router_egress(net, instances, 1);
  EXPECT_EQ(mid.size(), 2u);
}

TEST(Egress, FilterBlocksAnEgress) {
  // The second border's inbound filter denies everything: its point is not
  // a usable egress for the core.
  const auto net = network_of(
      {"hostname L\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.1.0.1 255.255.255.252\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.9.0.1 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65001\n"
       "router bgp 65001\n neighbor 10.9.0.2 remote-as 701\n",
       "hostname R\n"
       "interface Serial0/0 point-to-point\n"
       " ip address 10.1.0.2 255.255.255.252\n"
       "interface Serial1/0 point-to-point\n"
       " ip address 10.9.0.5 255.255.255.252\n"
       "router ospf 1\n network 10.1.0.0 0.0.255.255 area 0\n"
       " redistribute bgp 65002\n"
       "router bgp 65002\n"
       " neighbor 10.9.0.6 remote-as 702\n"
       " neighbor 10.9.0.6 distribute-list 66 in\n"
       "access-list 66 deny any\n"});
  const auto instances = graph::compute_instances(net);
  const auto egress = EgressAnalysis::run(net, instances);
  const auto usable = egress.router_egress(net, instances, 0);
  ASSERT_EQ(usable.size(), 1u);
  EXPECT_EQ(egress.points()[usable[0]].router, 0u);  // only L's point
}

TEST(Egress, Net15SitesUseOnlyTheirOwnSide) {
  const auto net15 = synth::make_net15();
  const auto network = model::Network::build(synth::reparse(net15.configs));
  const auto instances = graph::compute_instances(network);
  ReachabilityAnalysis::Options base;
  const auto plan = synth::net15_plan();
  base.external_prefixes = {plan.ab0};
  const auto egress = EgressAnalysis::run(network, instances, base);
  ASSERT_EQ(egress.points().size(), 4u);  // two borders per site

  // Find one spoke per site via the OSPF coverage.
  auto spoke_of_block = [&](const ip::Prefix& block) -> model::RouterId {
    for (const auto& itf : network.interfaces()) {
      if (itf.subnet && block.contains(*itf.subnet)) return itf.router;
    }
    return model::kInvalidId;
  };
  const auto left_router = spoke_of_block(plan.ab2);
  const auto right_router = spoke_of_block(plan.ab4);
  ASSERT_NE(left_router, model::kInvalidId);
  ASSERT_NE(right_router, model::kInvalidId);

  const auto left = egress.router_egress(network, instances, left_router);
  const auto right = egress.router_egress(network, instances, right_router);
  EXPECT_FALSE(left.empty());
  EXPECT_FALSE(right.empty());
  for (const auto l : left) {
    for (const auto r : right) EXPECT_NE(l, r);
  }
}

}  // namespace
}  // namespace rd::analysis
