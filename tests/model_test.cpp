#include <gtest/gtest.h>

#include "model/network.h"
#include "testutil.h"

namespace rd::model {
namespace {

using rd::test::addr;
using rd::test::network_of;
using rd::test::pfx;

std::string p2p_router(const std::string& host, const std::string& address) {
  return "hostname " + host +
         "\n"
         "interface Serial0/0 point-to-point\n"
         " ip address " +
         address +
         " 255.255.255.252\n";
}

// --- link inference (paper §2.1) ---------------------------------------------

TEST(LinkInference, MatchesSameSubnet) {
  const auto net = network_of(
      {p2p_router("a", "10.0.0.1"), p2p_router("b", "10.0.0.2")});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_EQ(net.links()[0].subnet, pfx("10.0.0.0/30"));
  EXPECT_EQ(net.links()[0].interfaces.size(), 2u);
  EXPECT_FALSE(net.links()[0].external_facing);
}

TEST(LinkInference, DifferentSubnetsDoNotMatch) {
  const auto net = network_of(
      {p2p_router("a", "10.0.0.1"), p2p_router("b", "10.0.0.5")});
  EXPECT_EQ(net.links().size(), 2u);
}

TEST(LinkInference, LoopbacksAreNotLinks) {
  const auto net = network_of({"hostname a\ninterface Loopback0\n"
                               " ip address 10.0.0.1 255.255.255.255\n"});
  EXPECT_TRUE(net.links().empty());
  EXPECT_EQ(net.interfaces().size(), 1u);
}

TEST(LinkInference, ShutdownInterfacesExcluded) {
  const auto net = network_of(
      {"hostname a\ninterface Serial0/0\n"
       " ip address 10.0.0.1 255.255.255.252\n shutdown\n",
       p2p_router("b", "10.0.0.2")});
  // Only b's side forms a (half-populated) link.
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_EQ(net.links()[0].interfaces.size(), 1u);
}

TEST(LinkInference, MultipointLanGroupsAllMembers) {
  std::vector<std::string> texts;
  for (int i = 1; i <= 4; ++i) {
    texts.push_back("hostname r" + std::to_string(i) +
                    "\ninterface FastEthernet0/0\n ip address 10.0.0." +
                    std::to_string(i) + " 255.255.255.0\n");
  }
  const auto net = network_of(texts);
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_EQ(net.links()[0].interfaces.size(), 4u);
}

TEST(LinkInference, UnnumberedInterfacesIgnored) {
  const auto net = network_of({"hostname a\ninterface BRI0\n"});
  EXPECT_TRUE(net.links().empty());
  EXPECT_FALSE(net.interfaces()[0].numbered());
}

// --- external-facing rules (paper §5.2) ---------------------------------------

TEST(ExternalFacing, HalfEmptySlash30IsExternal) {
  const auto net = network_of({p2p_router("a", "10.0.0.1")});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_TRUE(net.links()[0].external_facing);
  EXPECT_TRUE(net.interfaces()[0].external_facing);
}

TEST(ExternalFacing, FullSlash30IsInternal) {
  const auto net = network_of(
      {p2p_router("a", "10.0.0.1"), p2p_router("b", "10.0.0.2")});
  EXPECT_FALSE(net.links()[0].external_facing);
}

TEST(ExternalFacing, LanIsInternalByDefault) {
  const auto net = network_of({"hostname a\ninterface FastEthernet0/0\n"
                               " ip address 10.0.0.1 255.255.255.0\n"});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_FALSE(net.links()[0].external_facing);
}

TEST(ExternalFacing, LanWithForeignNextHopIsExternal) {
  // The paper's rule: a multipoint link used as next hop for addresses not
  // in the data set implies an external router on the link.
  const auto net = network_of({"hostname a\ninterface FastEthernet0/0\n"
                               " ip address 10.0.0.1 255.255.255.0\n"
                               "ip route 171.5.0.0 255.255.0.0 10.0.0.200\n"});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_TRUE(net.links()[0].external_facing);
}

TEST(ExternalFacing, LanWithInternalNextHopStaysInternal) {
  const auto net = network_of(
      {"hostname a\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.1 255.255.255.0\n"
       "ip route 171.5.0.0 255.255.0.0 10.0.0.2\n",
       "hostname b\ninterface FastEthernet0/0\n"
       " ip address 10.0.0.2 255.255.255.0\n"});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_FALSE(net.links()[0].external_facing);
}

TEST(ExternalFacing, BgpNeighborOnLanMarksExternal) {
  const auto net = network_of({"hostname a\ninterface FastEthernet0/0\n"
                               " ip address 10.0.0.1 255.255.255.0\n"
                               "router bgp 65000\n"
                               " neighbor 10.0.0.77 remote-as 701\n"});
  ASSERT_EQ(net.links().size(), 1u);
  EXPECT_TRUE(net.links()[0].external_facing);
}

// --- processes and coverage ---------------------------------------------------

TEST(Processes, NetworkStatementCoversInterfaces) {
  const auto net = network_of({"hostname a\n"
                               "interface FastEthernet0/0\n"
                               " ip address 10.1.0.1 255.255.255.0\n"
                               "interface FastEthernet0/1\n"
                               " ip address 192.168.0.1 255.255.255.0\n"
                               "router ospf 1\n"
                               " network 10.0.0.0 0.255.255.255 area 0\n"});
  ASSERT_EQ(net.processes().size(), 1u);
  EXPECT_EQ(net.processes()[0].covered_interfaces.size(), 1u);
  EXPECT_EQ(net.interfaces()[net.processes()[0].covered_interfaces[0]].name,
            "FastEthernet0/0");
}

TEST(Processes, BgpHasNoCoverage) {
  const auto net = network_of({"hostname a\n"
                               "interface FastEthernet0/0\n"
                               " ip address 10.1.0.1 255.255.255.0\n"
                               "router bgp 65000\n"
                               " network 10.1.0.0 mask 255.255.255.0\n"});
  ASSERT_EQ(net.processes().size(), 1u);
  EXPECT_TRUE(net.processes()[0].covered_interfaces.empty());
}

TEST(Processes, MultipleProcessesPerRouter) {
  const auto net = network_of({std::string(rd::test::kFigure2Config)});
  EXPECT_EQ(net.processes().size(), 3u);
  EXPECT_EQ(net.router_processes(0).size(), 3u);
}

// --- IGP adjacency (paper §2.2) ------------------------------------------------

std::string ospf_router(const std::string& host, const std::string& address,
                        int pid = 1) {
  return "hostname " + host +
         "\ninterface Serial0/0 point-to-point\n ip address " + address +
         " 255.255.255.252\nrouter ospf " + std::to_string(pid) +
         "\n network 10.0.0.0 0.255.255.255 area 0\n";
}

TEST(Adjacency, FormsAcrossCoveredLink) {
  const auto net = network_of(
      {ospf_router("a", "10.0.0.1"), ospf_router("b", "10.0.0.2")});
  ASSERT_EQ(net.igp_adjacencies().size(), 1u);
}

TEST(Adjacency, ProcessIdsNeedNotMatch) {
  // Process ids have no network-wide semantics (paper §3.2).
  const auto net = network_of(
      {ospf_router("a", "10.0.0.1", 64), ospf_router("b", "10.0.0.2", 128)});
  EXPECT_EQ(net.igp_adjacencies().size(), 1u);
}

TEST(Adjacency, RequiresSameProtocol) {
  const auto net = network_of(
      {ospf_router("a", "10.0.0.1"),
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router eigrp 1\n network 10.0.0.0 0.255.255.255\n"});
  EXPECT_TRUE(net.igp_adjacencies().empty());
}

TEST(Adjacency, RequiresCoverageOnBothEnds) {
  const auto net = network_of(
      {ospf_router("a", "10.0.0.1"),
       "hostname b\ninterface Serial0/0 point-to-point\n"
       " ip address 10.0.0.2 255.255.255.252\n"
       "router ospf 1\n network 192.168.0.0 0.0.255.255 area 0\n"});
  EXPECT_TRUE(net.igp_adjacencies().empty());
}

TEST(Adjacency, PassiveInterfaceBlocks) {
  auto b_text = ospf_router("b", "10.0.0.2");
  b_text += " passive-interface Serial0/0\n";
  const auto net = network_of({ospf_router("a", "10.0.0.1"), b_text});
  EXPECT_TRUE(net.igp_adjacencies().empty());
}

TEST(Adjacency, ExternalFacingCoverageIsPotentialExternalAdjacency) {
  const auto net = network_of({ospf_router("a", "10.0.0.1")});  // half /30
  ASSERT_EQ(net.external_igp_adjacencies().size(), 1u);
  EXPECT_EQ(net.external_igp_adjacencies()[0].process, 0u);
}

TEST(Adjacency, PassiveExternalCoverageIsNotExternalAdjacency) {
  auto text = ospf_router("a", "10.0.0.1");
  text += " passive-interface Serial0/0\n";
  const auto net = network_of({text});
  EXPECT_TRUE(net.external_igp_adjacencies().empty());
}

// --- BGP sessions ---------------------------------------------------------------

std::string bgp_router(const std::string& host, const std::string& address,
                       std::uint32_t local_as, const std::string& peer,
                       std::uint32_t peer_as) {
  return "hostname " + host +
         "\ninterface Serial0/0 point-to-point\n ip address " + address +
         " 255.255.255.252\nrouter bgp " + std::to_string(local_as) +
         "\n neighbor " + peer + " remote-as " + std::to_string(peer_as) +
         "\n";
}

TEST(BgpSessions, ResolvesInternalPeer) {
  const auto net = network_of(
      {bgp_router("a", "10.0.0.1", 65001, "10.0.0.2", 65002),
       bgp_router("b", "10.0.0.2", 65002, "10.0.0.1", 65001)});
  ASSERT_EQ(net.bgp_sessions().size(), 2u);
  for (const auto& session : net.bgp_sessions()) {
    EXPECT_FALSE(session.external());
    EXPECT_TRUE(session.ebgp());
  }
}

TEST(BgpSessions, IbgpDetected) {
  const auto net = network_of(
      {bgp_router("a", "10.0.0.1", 65001, "10.0.0.2", 65001),
       bgp_router("b", "10.0.0.2", 65001, "10.0.0.1", 65001)});
  for (const auto& session : net.bgp_sessions()) {
    EXPECT_FALSE(session.ebgp());
  }
}

TEST(BgpSessions, UnresolvedPeerIsExternal) {
  const auto net = network_of(
      {bgp_router("a", "10.0.0.1", 65001, "10.0.0.2", 701)});
  ASSERT_EQ(net.bgp_sessions().size(), 1u);
  EXPECT_TRUE(net.bgp_sessions()[0].external());
}

TEST(BgpSessions, WrongAsDoesNotResolve) {
  // b exists but has AS 65003, while a expects 65002 at that address.
  const auto net = network_of(
      {bgp_router("a", "10.0.0.1", 65001, "10.0.0.2", 65002),
       bgp_router("b", "10.0.0.2", 65003, "10.0.0.1", 65001)});
  EXPECT_TRUE(net.bgp_sessions()[0].external());
}

// --- redistribution edges -------------------------------------------------------

TEST(Redistribution, BuildsEdgesFromFigure2) {
  const auto net = network_of({std::string(rd::test::kFigure2Config)});
  // ospf64: connected + bgp; ospf128: connected; bgp: ospf64 -> 4 edges.
  ASSERT_EQ(net.redistribution_edges().size(), 4u);
  std::size_t local_edges = 0;
  std::size_t process_edges = 0;
  for (const auto& edge : net.redistribution_edges()) {
    if (edge.source_kind == RibKind::kLocal) {
      ++local_edges;
    } else {
      ++process_edges;
    }
  }
  EXPECT_EQ(local_edges, 2u);    // two "redistribute connected"
  EXPECT_EQ(process_edges, 2u);  // bgp->ospf64 and ospf64->bgp
}

TEST(Redistribution, RouteMapAnnotationKept) {
  const auto net = network_of({std::string(rd::test::kFigure2Config)});
  bool found = false;
  for (const auto& edge : net.redistribution_edges()) {
    if (edge.route_map == "8aTzlvBrbaW") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Redistribution, UnspecifiedProcessIdMatchesAll) {
  const auto net = network_of({"hostname a\n"
                               "router ospf 1\n"
                               "router ospf 2\n"
                               "router bgp 65000\n"
                               " redistribute ospf\n"});
  // "redistribute ospf" with no id: both OSPF processes match.
  std::size_t count = 0;
  for (const auto& edge : net.redistribution_edges()) {
    if (edge.source_kind == RibKind::kProcess) ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Redistribution, DanglingSourceFallsBackToLocal) {
  const auto net = network_of({"hostname a\n"
                               "router ospf 1\n"
                               " redistribute eigrp 7\n"});
  ASSERT_EQ(net.redistribution_edges().size(), 1u);
  EXPECT_EQ(net.redistribution_edges()[0].source_kind, RibKind::kLocal);
}

// --- misc accessors -------------------------------------------------------------

TEST(Network, InterfaceWithAddress) {
  const auto net = network_of({p2p_router("a", "10.0.0.1")});
  EXPECT_TRUE(net.interface_with_address(addr("10.0.0.1")).has_value());
  EXPECT_FALSE(net.interface_with_address(addr("10.0.0.2")).has_value());
}

TEST(Network, AddressIsInternal) {
  const auto net = network_of({p2p_router("a", "10.0.0.1")});
  EXPECT_TRUE(net.address_is_internal(addr("10.0.0.2")));  // same /30
  EXPECT_FALSE(net.address_is_internal(addr("10.0.0.5")));
}

TEST(Network, InterfaceSubnetsDeduplicated) {
  const auto net = network_of(
      {p2p_router("a", "10.0.0.1"), p2p_router("b", "10.0.0.2")});
  EXPECT_EQ(net.interface_subnets().size(), 1u);
}

}  // namespace
}  // namespace rd::model
