#include <gtest/gtest.h>

#include "config/parser.h"
#include "config/writer.h"
#include "synth/archetypes.h"
#include "testutil.h"

namespace rd::config {
namespace {

using rd::test::kFigure2Config;

/// The round-trip property: parsing the writer's output yields the same
/// modeled configuration. (write is not byte-identical to arbitrary input —
/// it normalizes layout — but parse∘write must be the identity on the
/// model.)
void expect_round_trip(const RouterConfig& config) {
  const std::string text = write_config(config);
  const auto result = parse_config(text, config.hostname);
  EXPECT_TRUE(result.diagnostics.empty())
      << "first diagnostic: "
      << (result.diagnostics.empty() ? "" : result.diagnostics[0].message);
  const RouterConfig& reparsed = result.config;
  EXPECT_EQ(reparsed.hostname, config.hostname);
  EXPECT_EQ(reparsed.interfaces, config.interfaces);
  EXPECT_EQ(reparsed.router_stanzas, config.router_stanzas);
  EXPECT_EQ(reparsed.access_lists, config.access_lists);
  EXPECT_EQ(reparsed.route_maps, config.route_maps);
  EXPECT_EQ(reparsed.static_routes, config.static_routes);
}

TEST(Writer, RoundTripsFigure2) {
  auto cfg = rd::test::parse(kFigure2Config, "R2");
  cfg.hostname = "R2";
  expect_round_trip(cfg);
}

TEST(Writer, WriteIsIdempotent) {
  const auto cfg = rd::test::parse(kFigure2Config, "R2");
  const std::string once = write_config(cfg);
  const std::string twice = write_config(parse_config(once, "R2").config);
  EXPECT_EQ(once, twice);
}

TEST(Writer, EmitsWildcardFormForIgp) {
  RouterConfig cfg;
  cfg.hostname = "r";
  RouterStanza ospf;
  ospf.protocol = RoutingProtocol::kOspf;
  ospf.process_id = 1;
  NetworkStatement ns;
  ns.address = *ip::Ipv4Address::parse("10.0.0.0");
  ns.mask = ip::Netmask::from_length(12);
  ns.area = 0;
  ospf.networks.push_back(ns);
  cfg.router_stanzas.push_back(ospf);
  const auto text = write_config(cfg);
  EXPECT_NE(text.find("network 10.0.0.0 0.15.255.255 area 0"),
            std::string::npos);
}

TEST(Writer, EmitsMaskFormForBgp) {
  RouterConfig cfg;
  cfg.hostname = "r";
  RouterStanza bgp;
  bgp.protocol = RoutingProtocol::kBgp;
  bgp.process_id = 65000;
  NetworkStatement ns;
  ns.address = *ip::Ipv4Address::parse("10.64.0.0");
  ns.mask = ip::Netmask::from_length(10);
  bgp.networks.push_back(ns);
  cfg.router_stanzas.push_back(bgp);
  const auto text = write_config(cfg);
  EXPECT_NE(text.find("network 10.64.0.0 mask 255.192.0.0"),
            std::string::npos);
}

TEST(Writer, EmitsHousekeepingPreamble) {
  RouterConfig cfg;
  cfg.hostname = "r";
  const auto text = write_config(cfg);
  EXPECT_NE(text.find("version"), std::string::npos);
  EXPECT_NE(text.find("hostname r"), std::string::npos);
  EXPECT_NE(text.find("line vty"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

// Round-trip the generators' output: every synthetic archetype must survive
// write -> parse unchanged. This is what guarantees the whole pipeline can
// run from configuration text alone.
class ArchetypeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ArchetypeRoundTrip, AllConfigsRoundTrip) {
  synth::SynthNetwork net;
  switch (GetParam()) {
    case 0: {
      synth::TextbookEnterpriseParams p;
      p.routers = 25;
      net = synth::make_textbook_enterprise(p);
      break;
    }
    case 1: {
      synth::BackboneParams p;
      p.access_routers = 30;
      p.external_peers = 40;
      net = synth::make_backbone(p);
      break;
    }
    case 2: {
      synth::Tier2Params p;
      p.edge_routers = 20;
      net = synth::make_tier2_isp(p);
      break;
    }
    case 3: {
      synth::ManagedEnterpriseParams p;
      p.regions = 2;
      p.spokes_per_region = 10;
      p.ebgp_spoke_rate = 0.3;
      net = synth::make_managed_enterprise(p);
      break;
    }
    case 4: {
      synth::NoBgpParams p;
      p.edge = synth::NoBgpParams::Edge::kRip;
      net = synth::make_no_bgp_enterprise(p);
      break;
    }
    case 5: {
      synth::MergedHybridParams p;
      net = synth::make_merged_hybrid(p);
      break;
    }
    case 6:
      net = synth::make_net15();
      break;
    default:
      GTEST_FAIL();
  }
  ASSERT_FALSE(net.configs.empty());
  for (const auto& cfg : net.configs) expect_round_trip(cfg);
}

INSTANTIATE_TEST_SUITE_P(AllArchetypes, ArchetypeRoundTrip,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace rd::config
