// Differential fuzz suite for the symbolic header-space engine: on random
// (ingress, egress, header) samples across the synthetic fleet, the concrete
// one-probe verdict (`PacketReachability::evaluate == kPossiblyReachable`)
// must equal symbolic membership (`HeaderSpace::passes`). The concrete
// engine is the oracle; any disagreement is a bug in one of them.
//
// Also here: ACL self-equivalence over every packet filter in the fleet
// (the lowering must be stable and the equivalence decision reflexive), and
// byte-identical rule reports at 1/2/8 threads on an intent-bearing network.
//
// Stress volume is dialable: RD_FUZZ_SEEDS (default 2) networks-orderings,
// RD_FUZZ_ITERS (default 1400) header samples per network.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/header_space.h"
#include "analysis/packet_reachability.h"
#include "analysis/rules.h"
#include "graph/instances.h"
#include "model/policy.h"
#include "synth/emit.h"
#include "synth/fleet.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace rd::analysis {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  std::uint64_t parsed = 0;
  if (!util::parse_u64(util::trim(raw), parsed) || parsed == 0) {
    return fallback;
  }
  return parsed;
}

struct Case {
  std::string name;
  model::Network network;
  graph::InstanceSet instances;
  ReachabilityAnalysis routes;
};

/// Fleet networks small enough to fuzz densely (the big backbones and
/// managed networks exercise the same code through fewer, targeted suites).
std::vector<Case> fuzz_cases(std::size_t max_routers = 120) {
  const auto fleet = synth::generate_fleet(1);
  std::vector<Case> cases;
  for (const auto& net : fleet.networks) {
    if (net.configs.size() > max_routers) continue;
    auto network = model::Network::build(synth::reparse(net.configs));
    auto instances = graph::compute_instances(network);
    auto routes = ReachabilityAnalysis::run(network, instances);
    cases.push_back({net.name, std::move(network), std::move(instances),
                     std::move(routes)});
    if (cases.size() == 8) break;
  }
  return cases;
}

/// A random header biased toward the network's own address space: most
/// samples land inside interface subnets (where filters and routes act),
/// the rest probe arbitrary addresses (unattached / no-route paths).
FlowQuery random_query(util::Rng& rng, const model::Network& network) {
  static const char* kProtocols[] = {"ip",  "tcp", "udp", "icmp",
                                     "pim", "gre", ""};
  static const std::uint16_t kPorts[] = {0,   23,  53,   80,  161,
                                         443, 1433, 8080, 65535};
  const auto& itfs = network.interfaces();
  const auto pick_addr = [&]() -> ip::Ipv4Address {
    if (!itfs.empty() && rng.chance(0.8)) {
      const auto& itf = itfs[rng.below(itfs.size())];
      if (itf.subnet) {
        const auto span = itf.subnet->size();
        return ip::Ipv4Address(
            itf.subnet->network().value() +
            static_cast<std::uint32_t>(rng.below(span)));
      }
    }
    return ip::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  };
  FlowQuery query;
  query.source = pick_addr();
  query.destination = pick_addr();
  query.protocol = kProtocols[rng.below(std::size(kProtocols))];
  if (rng.chance(0.7)) {
    query.destination_port = kPorts[rng.below(std::size(kPorts))];
  }
  return query;
}

TEST(SymbolicDifferential, ConcreteVerdictEqualsSymbolicMembership) {
  const auto seeds = env_u64("RD_FUZZ_SEEDS", 2);
  const auto iters = env_u64("RD_FUZZ_ITERS", 1400);
  const auto cases = fuzz_cases();
  ASSERT_GE(cases.size(), 4u);
  std::size_t samples = 0;
  for (const auto& c : cases) {
    const PacketReachability concrete(c.network, c.instances, c.routes);
    HeaderSpace symbolic(c.network, c.instances, c.routes);
    for (std::uint64_t seed = 0; seed < seeds; ++seed) {
      util::Rng rng(0x5eedULL * (seed + 1) + samples);
      for (std::uint64_t i = 0; i < iters; ++i) {
        const auto query = random_query(rng, c.network);
        const bool concrete_pass =
            concrete.evaluate(query) == FlowVerdict::kPossiblyReachable;
        const bool symbolic_pass = symbolic.passes(query);
        ASSERT_EQ(concrete_pass, symbolic_pass)
            << c.name << ": " << query.source.to_string() << " -> "
            << query.destination.to_string() << " proto '" << query.protocol
            << "' port "
            << (query.destination_port
                    ? std::to_string(*query.destination_port)
                    : "none")
            << " (concrete verdict: "
            << to_string(concrete.evaluate(query)) << ")";
        ++samples;
      }
    }
  }
  // The acceptance floor: at least 10k (pair, header) samples.
  EXPECT_GE(samples, 10000u);
}

TEST(SymbolicDifferential, AclSelfEquivalenceAcrossFleet) {
  // Every packet filter in the fleet lowers to the same predicate twice,
  // and the equivalence decision recognizes it. Exercises the subtract /
  // emptiness path on every real ACL shape the generators emit.
  const auto fleet = synth::generate_fleet(1);
  std::size_t checked = 0;
  for (const auto& net : fleet.networks) {
    for (const auto& cfg : net.configs) {
      for (const auto& acl : cfg.access_lists) {
        model::ProtocolDomain domain_a;
        const model::SymbolicPacketFilter a(acl, domain_a);
        model::ProtocolDomain domain_b;
        const model::SymbolicPacketFilter b(acl, domain_b);
        ASSERT_TRUE(a.permitted().equivalent(b.permitted()))
            << net.name << " acl " << acl.id;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(SymbolicDifferential, MutatedAclIsNotEquivalent) {
  // Sanity check that equivalence is not trivially true: flipping one
  // clause's action, or deleting a live clause, must change the predicate.
  const auto fleet = synth::generate_fleet(1);
  std::size_t mutated = 0;
  for (const auto& net : fleet.networks) {
    if (mutated >= 25) break;
    for (const auto& cfg : net.configs) {
      if (mutated >= 25) break;
      for (const auto& acl : cfg.access_lists) {
        if (acl.rules.size() < 2) continue;
        model::ProtocolDomain domain;
        const model::SymbolicPacketFilter original(acl, domain);
        auto flipped = acl;
        flipped.rules[0].action =
            flipped.rules[0].action == config::FilterAction::kPermit
                ? config::FilterAction::kDeny
                : config::FilterAction::kPermit;
        model::ProtocolDomain domain_flipped;
        const model::SymbolicPacketFilter mutant(flipped, domain_flipped);
        // The first clause always has a nonempty effective region, so the
        // flip must move that region across the permit/deny divide.
        ASSERT_FALSE(original.permitted().equivalent(mutant.permitted()))
            << net.name << " acl " << acl.id;
        ++mutated;
        break;
      }
    }
  }
  EXPECT_GT(mutated, 0u);
}

TEST(SymbolicDifferential, IntentReportsByteIdenticalAcrossThreadCounts) {
  // An intent-bearing network runs RD052 (plus everything else) at 1, 2 and
  // 8 threads; the serialized reports must be byte-identical.
  const std::vector<std::string> texts{
      "hostname edge\n"
      "! rd-intent deny 10.1.0.0/24 10.3.0.0/24\n"
      "! rd-intent deny 10.1.0.0/24 10.2.0.0/24\n"
      "! rd-intent allow 10.1.0.0/24 10.2.0.0/24 udp 53\n"
      "interface FastEthernet0/0\n"
      " ip address 10.1.0.1 255.255.255.0\n"
      " ip access-group 101 in\n"
      "interface FastEthernet0/1\n"
      " ip address 10.2.0.1 255.255.255.0\n"
      "interface FastEthernet0/2\n"
      " ip address 10.3.0.1 255.255.255.0\n"
      "router ospf 1\n"
      " network 10.0.0.0 0.255.255.255 area 0\n"
      "access-list 101 deny ip any 10.3.0.0 0.0.0.255\n"
      "access-list 101 deny tcp any any eq 1433\n"
      "access-list 101 permit ip any any\n"};
  std::vector<config::RouterConfig> configs;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    configs.push_back(config::parse_config(texts[i], "edge.cfg").config);
  }
  const auto network = model::Network::build(std::move(configs));
  const auto engine = RuleEngine::with_default_rules();

  const auto serial = engine.run(network);
  const auto serial_json = findings_to_json(engine, serial, "intent-net");
  // RD052 fired: the second intent is violated (10.2/24 is mostly open).
  bool saw_intent_violation = false;
  for (const auto& f : serial.findings) {
    if (f.rule_id == "RD052") saw_intent_violation = true;
  }
  EXPECT_TRUE(saw_intent_violation);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    const auto parallel = engine.run(network, pool);
    EXPECT_EQ(findings_to_json(engine, parallel, "intent-net"), serial_json)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace rd::analysis
